//! Eager fork controller.
//!
//! An eager fork replicates each input token to every output branch. Each
//! branch receives its copy as soon as it is ready; the input token is
//! consumed once *all* branches have received (or had their copy cancelled by
//! an anti-token). A lazy fork is the degenerate configuration in which
//! delivery only happens when every branch is simultaneously ready.
//!
//! Anti-tokens arriving on a branch cancel that branch's copy of the current
//! input token; anti-tokens arriving when no input token is present are
//! stopped (this fork does not implement counterflow storage — recovery
//! paths that need it place an elastic buffer behind the fork, as the paper's
//! designs do).

use elastic_core::ForkSpec;

use crate::controller::{Controller, NodeIo, NodeStats};

const IN: usize = 0;

/// Controller for a token-replicating fork.
#[derive(Debug)]
pub struct EagerFork {
    spec: ForkSpec,
    /// `pending[i]` is true while branch `i` still needs the current token.
    pending: Vec<bool>,
    /// Whether a token is currently being served (i.e. `pending` is meaningful).
    serving: bool,
    stats: NodeStats,
}

impl EagerFork {
    /// Creates the controller.
    pub fn new(spec: ForkSpec) -> Self {
        let outputs = spec.outputs;
        EagerFork {
            spec,
            pending: vec![true; outputs],
            serving: false,
            stats: NodeStats::default(),
        }
    }

    fn effective_pending(&self, branch: usize) -> bool {
        if self.serving {
            self.pending[branch]
        } else {
            true
        }
    }

    /// Bitmask of the per-branch effective pending state for the first 64
    /// branches:
    /// bit `b` is set when branch `b` still needs its copy this cycle. The
    /// compiled settle backend snapshots this once per cycle (it is pure
    /// sequential state) and replays the eager-fork equations against it.
    pub fn pending_mask(&self) -> u64 {
        let mut mask = 0u64;
        for branch in 0..self.spec.outputs.min(64) {
            if self.effective_pending(branch) {
                mask |= 1u64 << branch;
            }
        }
        mask
    }

    /// Which branches complete their delivery this cycle, given the settled
    /// signals. A branch delivers when its (actually asserted) copy
    /// transfers, or when the copy is cancelled by a branch anti-token —
    /// judging by the driven `V+` matters for lazy forks, whose withheld
    /// branches must not be marked served.
    fn deliveries(&self, io: &NodeIo<'_>) -> Vec<bool> {
        let input = io.input(IN);
        (0..self.spec.outputs)
            .map(|branch| {
                if !input.forward_valid || !self.effective_pending(branch) {
                    return false;
                }
                let out = io.output(branch);
                let killed = out.backward_valid && !out.backward_stop;
                let transferred = out.forward_valid && !out.forward_stop;
                killed || transferred
            })
            .collect()
    }
}

impl EagerFork {
    fn eval_inner(&self, io: &mut NodeIo<'_>, optimistic: bool) {
        let input = io.input(IN);
        let outputs = self.spec.outputs;

        // Per-branch readiness, derived from the consumer-owned signals
        // *before* any producer-owned signal is driven: `eval` must write
        // each signal at most once per call, because the full-sweep engine's
        // convergence test counts every write — a transient
        // write-then-overwrite makes it oscillate forever on a settled state
        // (found by the elastic-gen differential fuzzer as a false
        // CombinationalLoop report on lazy forks). A branch whose copy is
        // being cancelled counts as ready; the kill is only accepted while
        // the branch holds a pending copy of a real token, which is exactly
        // `input.forward_valid` here.
        // Eager forks never consult readiness — compute it only for lazy
        // forks, allocation-free (this is the engine's hot path). A branch's
        // `others_ready` holds exactly when the not-ready set is empty or is
        // the branch itself.
        let (not_ready_count, not_ready_branch) = if self.spec.eager {
            (0usize, usize::MAX)
        } else {
            let mut count = 0usize;
            let mut last = usize::MAX;
            for branch in 0..outputs {
                let ready = !self.effective_pending(branch) || {
                    let out = io.output(branch);
                    !out.forward_stop || (out.backward_valid && input.forward_valid)
                };
                if !ready {
                    count += 1;
                    last = branch;
                }
            }
            (count, last)
        };
        let all_ready = not_ready_count == 0;

        // Offer the token to every branch that still needs it. A lazy fork
        // withholds a branch's copy while any *other* branch is not ready —
        // gating a branch on its own stop would give the settle equations a
        // second, deadlocked fixpoint (the branch waits for a stop that only
        // clears once the branch is valid), which is also the classical
        // combinational structure of a lazy fork.
        for branch in 0..outputs {
            let needs = input.forward_valid && self.effective_pending(branch);
            // The optimistic seeding pass offers every copy as if all
            // branches were ready, so reconverging consumers compute their
            // real stops instead of settling into the dead circular-wait
            // fixpoint; the honest pass re-evaluates with those stops.
            let others_ready =
                optimistic || all_ready || (not_ready_count == 1 && not_ready_branch == branch);
            io.set_output_valid(branch, needs && others_ready);
            io.set_output_data(branch, input.data);
            // A branch kill can only be absorbed while its copy is outstanding.
            io.set_output_anti_stop(branch, !needs);
        }

        // The input transfers when every branch has been (or is being) served.
        let deliveries = self.deliveries(io);
        let done = (0..outputs).all(|branch| !self.effective_pending(branch) || deliveries[branch]);
        let input_fires = input.forward_valid && done && (self.spec.eager || all_ready);
        io.set_input_stop(IN, !input_fires);
        io.set_input_kill(IN, false);
    }
}

impl Controller for EagerFork {
    fn eval(&self, io: &mut NodeIo<'_>) {
        self.eval_inner(io, false);
    }

    fn is_optimistic(&self) -> bool {
        !self.spec.eager
    }

    fn eval_optimistic(&self, io: &mut NodeIo<'_>) {
        self.eval_inner(io, true);
    }

    fn commit(&mut self, io: &NodeIo<'_>) {
        let input = io.input(IN);
        if !input.forward_valid {
            // Nothing in flight; reset the bookkeeping.
            self.serving = false;
            self.pending.iter_mut().for_each(|p| *p = true);
            return;
        }
        let deliveries = self.deliveries(io);
        let done = (0..self.spec.outputs)
            .all(|branch| !self.effective_pending(branch) || deliveries[branch]);
        let input_fired = !input.forward_stop;
        if done && input_fired {
            self.serving = false;
            self.pending.iter_mut().for_each(|p| *p = true);
            self.stats.output_transfers += 1;
        } else {
            // Remember which branches have already been served.
            if !self.serving {
                self.serving = true;
                self.pending.iter_mut().for_each(|p| *p = true);
            }
            for (branch, delivered) in deliveries.iter().enumerate() {
                if *delivered {
                    self.pending[branch] = false;
                }
            }
            self.stats.stall_cycles += 1;
        }
        for branch in 0..self.spec.outputs {
            let out = io.output(branch);
            if out.backward_transfer() {
                self.stats.killed_tokens += 1;
            }
        }
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn reset(&mut self) {
        self.pending.iter_mut().for_each(|p| *p = true);
        self.serving = false;
        self.stats = NodeStats::default();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::ChannelState;

    fn io<'a>(
        channels: &'a mut [ChannelState],
        inputs: &'a [usize],
        outputs: &'a [usize],
    ) -> NodeIo<'a> {
        NodeIo::new(channels, inputs, outputs)
    }

    #[test]
    fn replicates_tokens_to_all_branches() {
        let fork = EagerFork::new(ForkSpec::eager(2));
        let mut channels = vec![ChannelState::default(); 3];
        let inputs = [0usize];
        let outputs = [1usize, 2];
        channels[0].forward_valid = true;
        channels[0].data = 9;
        fork.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(channels[1].forward_valid && channels[2].forward_valid);
        assert_eq!(channels[1].data, 9);
        assert_eq!(channels[2].data, 9);
        assert!(!channels[0].forward_stop, "both branches ready: the input fires");
    }

    #[test]
    fn eager_fork_delivers_branches_independently() {
        let mut fork = EagerFork::new(ForkSpec::eager(2));
        let mut channels = vec![ChannelState::default(); 3];
        let inputs = [0usize];
        let outputs = [1usize, 2];
        channels[0].forward_valid = true;
        channels[0].data = 5;
        channels[2].forward_stop = true; // branch 1 is blocked
        fork.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(channels[0].forward_stop, "the input waits for the blocked branch");
        assert!(channels[1].forward_valid);
        fork.commit(&io(&mut channels, &inputs, &outputs));

        // Next cycle branch 0 must not receive the token again.
        fork.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(!channels[1].forward_valid, "branch 0 already has its copy");
        assert!(channels[2].forward_valid);
        // Unblock branch 1: the input can now complete.
        channels[2].forward_stop = false;
        fork.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(!channels[0].forward_stop);
    }

    #[test]
    fn branch_kills_count_as_deliveries() {
        let fork = EagerFork::new(ForkSpec::eager(2));
        let mut channels = vec![ChannelState::default(); 3];
        let inputs = [0usize];
        let outputs = [1usize, 2];
        channels[0].forward_valid = true;
        channels[1].forward_stop = true;
        channels[1].backward_valid = true; // branch 0's copy is cancelled
        fork.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(!channels[1].backward_stop, "the kill is absorbed against the in-flight copy");
        assert!(!channels[0].forward_stop, "kill + delivery completes the input transfer");
    }

    #[test]
    fn kills_without_a_token_are_stopped() {
        let fork = EagerFork::new(ForkSpec::eager(2));
        let mut channels = vec![ChannelState::default(); 3];
        let inputs = [0usize];
        let outputs = [1usize, 2];
        channels[1].backward_valid = true;
        fork.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(channels[1].backward_stop);
    }

    #[test]
    fn lazy_fork_waits_for_all_branches() {
        let fork = EagerFork::new(ForkSpec::lazy(2));
        let mut channels = vec![ChannelState::default(); 3];
        let inputs = [0usize];
        let outputs = [1usize, 2];
        channels[0].forward_valid = true;
        channels[2].forward_stop = true;
        fork.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(!channels[1].forward_valid, "a lazy fork withholds all copies until all are ready");
        assert!(channels[0].forward_stop);
    }
}
