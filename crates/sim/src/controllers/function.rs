//! Combinational function blocks (lazy joins).
//!
//! A function block waits for a valid token on every input (join semantics),
//! computes its operation and offers the result. It is purely combinational:
//! pipeline stages come from elastic buffers, never from function blocks.
//!
//! Anti-token behaviour (needed once early evaluation is in play): an
//! anti-token arriving at the output must ultimately remove one token from
//! *each* input, because producing one output token would have consumed one
//! from each input. Two cases:
//!
//! * all inputs already carry tokens — the block *annihilates*: the input
//!   tokens are consumed (a normal transfer from the producers' point of
//!   view) and no output is produced;
//! * otherwise the anti-token is forwarded to every input simultaneously,
//!   provided every producer can accept it.

use elastic_core::FunctionSpec;
use elastic_datapath::adder::mask;
use elastic_datapath::evaluate;

use crate::controller::{Controller, NodeIo, NodeStats};

const OUT: usize = 0;

/// Controller for a combinational function block.
#[derive(Debug)]
pub struct FunctionBlock {
    spec: FunctionSpec,
    output_width: u8,
    stats: NodeStats,
}

impl FunctionBlock {
    /// Creates the controller; `output_width` is the width of the output
    /// channel (results are masked to it).
    pub fn new(spec: FunctionSpec, output_width: u8) -> Self {
        FunctionBlock { spec, output_width, stats: NodeStats::default() }
    }

    fn compute(&self, io: &NodeIo<'_>) -> u64 {
        let operands = io.input_data();
        let value = evaluate(&self.spec.op, &operands).unwrap_or(0);
        mask(value, self.output_width)
    }
}

impl Controller for FunctionBlock {
    fn eval(&self, io: &mut NodeIo<'_>) {
        let inputs = io.input_count();
        let all_valid = io.all_inputs_valid();
        let output = io.output(OUT);
        let kill = output.backward_valid;

        io.set_output_valid(OUT, all_valid);
        io.set_output_data(OUT, self.compute(io));

        // Can the block dispose of an arriving anti-token?
        let all_producers_accept_kill = (0..inputs).all(|i| !io.input(i).backward_stop);
        io.set_output_anti_stop(OUT, !(all_valid || all_producers_accept_kill));

        // The inputs fire together: either the output transfers, or the
        // arriving anti-token annihilates against the waiting input tokens.
        let output_transfer = all_valid && !output.forward_stop && !kill;
        let annihilate = all_valid && kill;
        let forward_kill = kill && !all_valid && all_producers_accept_kill;
        let fire = output_transfer || annihilate;
        for i in 0..inputs {
            io.set_input_stop(i, !fire);
            io.set_input_kill(i, forward_kill);
        }
    }

    fn commit(&mut self, io: &NodeIo<'_>) {
        let output = io.output(OUT);
        if output.forward_transfer() {
            self.stats.output_transfers += 1;
        }
        if output.annihilation() {
            self.stats.killed_tokens += 1;
        }
        if output.forward_retry() {
            self.stats.stall_cycles += 1;
        }
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn reset(&mut self) {
        self.stats = NodeStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::ChannelState;
    use elastic_core::Op;

    fn io<'a>(
        channels: &'a mut [ChannelState],
        inputs: &'a [usize],
        outputs: &'a [usize],
    ) -> NodeIo<'a> {
        NodeIo::new(channels, inputs, outputs)
    }

    #[test]
    fn waits_for_all_inputs_then_computes() {
        let block = FunctionBlock::new(FunctionSpec::with_inputs(Op::Add, 2), 8);
        let mut channels = vec![ChannelState::default(); 3];
        let inputs = [0usize, 1];
        let outputs = [2usize];

        channels[0].forward_valid = true;
        channels[0].data = 3;
        block.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(!channels[2].forward_valid, "a join waits for all operands");
        assert!(channels[0].forward_stop, "the early operand is stalled");

        channels[1].forward_valid = true;
        channels[1].data = 4;
        block.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(channels[2].forward_valid);
        assert_eq!(channels[2].data, 7);
        assert!(!channels[0].forward_stop);
        assert!(!channels[1].forward_stop);
    }

    #[test]
    fn output_backpressure_stalls_all_inputs() {
        let block = FunctionBlock::new(FunctionSpec::with_inputs(Op::Add, 2), 8);
        let mut channels = vec![ChannelState::default(); 3];
        let inputs = [0usize, 1];
        let outputs = [2usize];
        channels[0].forward_valid = true;
        channels[1].forward_valid = true;
        channels[2].forward_stop = true;
        block.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(channels[0].forward_stop);
        assert!(channels[1].forward_stop);
    }

    #[test]
    fn arriving_anti_token_annihilates_waiting_operands() {
        let block = FunctionBlock::new(FunctionSpec::with_inputs(Op::Add, 2), 8);
        let mut channels = vec![ChannelState::default(); 3];
        let inputs = [0usize, 1];
        let outputs = [2usize];
        channels[0].forward_valid = true;
        channels[1].forward_valid = true;
        channels[2].backward_valid = true; // the consumer does not need the result
        channels[2].forward_stop = true;
        block.eval(&mut io(&mut channels, &inputs, &outputs));
        // The operands are consumed (transfer) without forwarding the kill upstream.
        assert!(!channels[0].forward_stop);
        assert!(!channels[1].forward_stop);
        assert!(!channels[0].backward_valid);
        assert!(!channels[1].backward_valid);
        assert!(!channels[2].backward_stop, "the anti-token is absorbed");
    }

    #[test]
    fn anti_token_is_forwarded_when_operands_are_missing() {
        let block = FunctionBlock::new(FunctionSpec::with_inputs(Op::Add, 2), 8);
        let mut channels = vec![ChannelState::default(); 3];
        let inputs = [0usize, 1];
        let outputs = [2usize];
        channels[2].backward_valid = true;
        block.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(channels[0].backward_valid);
        assert!(channels[1].backward_valid);
        assert!(!channels[2].backward_stop);
        // Mutual exclusion: a channel being killed is not simultaneously stopped
        // in a way that matters — the producer sees the kill.
    }

    #[test]
    fn anti_token_is_stopped_when_a_producer_refuses_it() {
        let block = FunctionBlock::new(FunctionSpec::with_inputs(Op::Add, 2), 8);
        let mut channels = vec![ChannelState::default(); 3];
        let inputs = [0usize, 1];
        let outputs = [2usize];
        channels[2].backward_valid = true;
        channels[1].backward_stop = true; // producer of operand 1 cannot take kills
        block.eval(&mut io(&mut channels, &inputs, &outputs));
        assert!(channels[2].backward_stop, "the kill must wait");
        assert!(!channels[0].backward_valid, "no partial kills");
    }

    #[test]
    fn opaque_blocks_pass_data_through() {
        let block = FunctionBlock::new(FunctionSpec::new(elastic_core::op::opaque("F", 6, 100)), 8);
        let mut channels = vec![ChannelState::default(); 2];
        let inputs = [0usize];
        let outputs = [1usize];
        channels[0].forward_valid = true;
        channels[0].data = 0x5A;
        block.eval(&mut io(&mut channels, &inputs, &outputs));
        assert_eq!(channels[1].data, 0x5A);
    }
}
