//! Controller implementations for every netlist node kind.
//!
//! | node kind | controller | protocol role |
//! |---|---|---|
//! | `Buffer` (`Lb = 1`) | [`buffer::StandardBuffer`] | latch-based EB of Figure 2(a) |
//! | `Buffer` (`Lb = 0`) | [`buffer::ZeroBackwardBuffer`] | the Figure-5 EB with combinational stop/kill |
//! | `Function` | [`function::FunctionBlock`] | lazy join + combinational datapath |
//! | `Fork` | [`fork::EagerFork`] | token replication with per-branch completion |
//! | `Mux` | [`mux::MuxController`] | lazy or early-evaluation multiplexor with anti-token injection |
//! | `Shared` | [`shared::SharedModule`] | the speculative shared module of Figure 4 |
//! | `Commit` | [`commit::CommitStage`] | the in-order commit stage behind a shared module |
//! | `VarLatency` | [`varlatency::VarLatencyUnit`] | the stalling variable-latency unit of Figure 6(a) |
//! | `Source` / `Sink` | [`environment`] | the elastic environment |

pub mod buffer;
pub mod commit;
pub mod environment;
pub mod fork;
pub mod function;
pub mod mux;
pub mod shared;
pub mod varlatency;

use elastic_core::{Netlist, Node, NodeKind, Scheduler};

use crate::controller::Controller;
use crate::engine::SimError;

/// Builds the controller for one netlist node.
///
/// `scheduler_override` replaces the scheduler named in a shared module's
/// specification (used by benchmarks to sweep prediction policies without
/// rebuilding the netlist).
///
/// # Errors
///
/// Returns [`SimError::UnsupportedNode`] when a node's configuration cannot
/// be simulated (e.g. a buffer with forward latency other than 1).
pub fn build_controller(
    netlist: &Netlist,
    node: &Node,
    scheduler_override: Option<Box<dyn Scheduler>>,
) -> Result<Box<dyn Controller>, SimError> {
    let output_widths: Vec<u8> = netlist.output_channels(node.id).iter().map(|c| c.width).collect();
    let controller: Box<dyn Controller> = match &node.kind {
        NodeKind::Buffer(spec) => {
            if spec.forward_latency != 1 {
                return Err(SimError::UnsupportedNode {
                    node: node.id,
                    reason: format!(
                        "buffers with forward latency {} are not supported by the simulator \
                         (chain unit-latency buffers instead)",
                        spec.forward_latency
                    ),
                });
            }
            // Mask the initial token's value to the output channel width:
            // every other data entry point (source streams, function
            // results) masks at the producer, and an unmasked init value
            // would otherwise leak through width-preserving controllers
            // (buffers, forks) into traces and sinks (found by the
            // elastic-gen differential fuzzer as a spurious conservation
            // violation on a narrow loop channel).
            let mut spec = *spec;
            spec.init_value = elastic_datapath::adder::mask(
                spec.init_value,
                output_widths.first().copied().unwrap_or(64),
            );
            if spec.backward_latency == 0 {
                Box::new(buffer::ZeroBackwardBuffer::new(spec))
            } else {
                Box::new(buffer::StandardBuffer::new(spec))
            }
        }
        NodeKind::Function(spec) => Box::new(function::FunctionBlock::new(
            spec.clone(),
            output_widths.first().copied().unwrap_or(64),
        )),
        NodeKind::Mux(spec) => Box::new(mux::MuxController::new(*spec)),
        NodeKind::Fork(spec) => Box::new(fork::EagerFork::new(*spec)),
        NodeKind::Shared(spec) => {
            let scheduler = scheduler_override
                .unwrap_or_else(|| elastic_predict::from_kind(&spec.scheduler, spec.users));
            Box::new(shared::SharedModule::new(
                spec.clone(),
                scheduler,
                output_widths.first().copied().unwrap_or(64),
            ))
        }
        NodeKind::Commit(spec) => Box::new(commit::CommitStage::new(*spec)),
        NodeKind::VarLatency(spec) => Box::new(varlatency::VarLatencyUnit::new(
            spec.clone(),
            output_widths.first().copied().unwrap_or(64),
        )),
        NodeKind::Source(spec) => Box::new(environment::SourceController::new(
            spec.clone(),
            output_widths.first().copied().unwrap_or(64),
        )),
        NodeKind::Sink(spec) => Box::new(environment::SinkController::new(spec.clone())),
        // `NodeKind` is non-exhaustive within the workspace; reject anything
        // this simulator does not know how to model rather than mis-simulate.
        other => {
            return Err(SimError::UnsupportedNode {
                node: node.id,
                reason: format!("no controller for node kind `{}`", other.kind_name()),
            })
        }
    };
    Ok(controller)
}
