//! Multiplexor controllers (lazy and early-evaluation).
//!
//! The lazy multiplexor is a join over the select channel and *all* data
//! channels: every firing consumes one token from each input and forwards the
//! selected value.
//!
//! The early-evaluation multiplexor (Section 3.3, ref \[7\]) fires as soon as the
//! select token and the *selected* data token are available. Each firing owes
//! an **anti-token** to every non-selected data channel; the controller keeps
//! a counterflow counter per data input and asserts `V-` on those channels
//! until the anti-tokens have been delivered (or have cancelled in place
//! against an arriving token). A stale token arriving on a channel that is
//! owed an anti-token is cancelled rather than forwarded.

use elastic_core::MuxSpec;

use crate::controller::{Controller, NodeIo, NodeStats};

const SELECT: usize = 0;
const OUT: usize = 0;

/// Controller for (early-evaluation) multiplexors.
#[derive(Debug)]
pub struct MuxController {
    spec: MuxSpec,
    /// Anti-tokens owed to each data input (early evaluation only).
    owed_anti_tokens: Vec<u32>,
    stats: NodeStats,
}

impl MuxController {
    /// Creates the controller.
    pub fn new(spec: MuxSpec) -> Self {
        MuxController {
            owed_anti_tokens: vec![0; spec.data_inputs],
            spec,
            stats: NodeStats::default(),
        }
    }

    fn selected(&self, io: &NodeIo<'_>) -> usize {
        (io.input(SELECT).data as usize) % self.spec.data_inputs.max(1)
    }

    /// Outstanding anti-token debt per data channel (diagnostic).
    pub fn owed_anti_tokens(&self) -> &[u32] {
        &self.owed_anti_tokens
    }

    fn eval_lazy(&self, io: &mut NodeIo<'_>) {
        let select = io.input(SELECT);
        let selected = self.selected(io);
        let all_data_valid = (0..self.spec.data_inputs).all(|j| io.input(1 + j).forward_valid);
        let valid = select.forward_valid && all_data_valid;
        let output = io.output(OUT);
        io.set_output_valid(OUT, valid);
        io.set_output_data(OUT, io.input(1 + selected).data);
        io.set_output_anti_stop(OUT, true);
        let fire = valid && !output.forward_stop;
        io.set_input_stop(SELECT, !fire);
        for j in 0..self.spec.data_inputs {
            io.set_input_stop(1 + j, !fire);
            io.set_input_kill(1 + j, false);
        }
    }

    fn eval_early(&self, io: &mut NodeIo<'_>) {
        let select = io.input(SELECT);
        let selected = self.selected(io);
        let output = io.output(OUT);

        // The selected channel can only supply a usable token if no stale
        // anti-token is owed to it.
        let selected_clean = self.owed_anti_tokens[selected] == 0;
        let selected_valid = io.input(1 + selected).forward_valid && selected_clean;
        let valid = select.forward_valid && selected_valid;
        io.set_output_valid(OUT, valid);
        io.set_output_data(OUT, io.input(1 + selected).data);
        io.set_output_anti_stop(OUT, true);

        let fire = valid && !output.forward_stop;
        io.set_input_stop(SELECT, !fire);

        for j in 0..self.spec.data_inputs {
            let is_selected = j == selected && select.forward_valid;
            // An anti-token is available for channel j this cycle if one is
            // already owed, or if the mux fires now and j is not the channel
            // being consumed.
            let owed = self.owed_anti_tokens[j] > 0 || (fire && !is_selected);
            let consuming = is_selected && fire && selected_clean;
            io.set_input_kill(1 + j, owed && !consuming);
            // Mutual exclusion of stop and kill: a channel being killed is not
            // stopped; the selected channel is stopped unless it fires.
            let stop = if owed && !consuming {
                false
            } else if is_selected {
                !fire
            } else {
                true
            };
            io.set_input_stop(1 + j, stop);
        }
    }
}

impl Controller for MuxController {
    fn eval(&self, io: &mut NodeIo<'_>) {
        if self.spec.early_eval {
            self.eval_early(io);
        } else {
            self.eval_lazy(io);
        }
    }

    fn commit(&mut self, io: &NodeIo<'_>) {
        let output = io.output(OUT);
        let select = io.input(SELECT);
        let fire = output.forward_valid && !output.forward_stop;
        if fire {
            self.stats.output_transfers += 1;
        } else if output.forward_valid {
            self.stats.stall_cycles += 1;
        }
        if !self.spec.early_eval {
            return;
        }
        let selected = self.selected(io);
        for j in 0..self.spec.data_inputs {
            let channel = io.input(1 + j);
            // Anti-token delivered (either accepted upstream or cancelled in
            // place against an arriving token — same thing at this boundary).
            let delivered = channel.backward_valid && !channel.backward_stop;
            let mut owed = self.owed_anti_tokens[j];
            if fire && select.forward_valid && j != selected {
                owed += 1;
            }
            if delivered {
                owed = owed.saturating_sub(1);
                self.stats.killed_tokens += 1;
            }
            self.owed_anti_tokens[j] = owed;
        }
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn reset(&mut self) {
        self.owed_anti_tokens.iter_mut().for_each(|owed| *owed = 0);
        self.stats = NodeStats::default();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::ChannelState;

    // Channel layout used by the tests:
    // 0 = select, 1 = data0, 2 = data1, 3 = output.
    fn io(channels: &mut [ChannelState]) -> NodeIo<'_> {
        NodeIo::new(channels, &[0, 1, 2], &[3])
    }

    fn early_mux() -> MuxController {
        MuxController::new(MuxSpec::early(2))
    }

    #[test]
    fn lazy_mux_waits_for_every_input() {
        let mux = MuxController::new(MuxSpec::lazy(2));
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true; // select = 0
        channels[1].forward_valid = true;
        channels[1].data = 0xAA;
        mux.eval(&mut io(&mut channels));
        assert!(!channels[3].forward_valid, "the non-selected input is still missing");
        channels[2].forward_valid = true;
        mux.eval(&mut io(&mut channels));
        assert!(channels[3].forward_valid);
        assert_eq!(channels[3].data, 0xAA);
        assert!(!channels[1].forward_stop && !channels[2].forward_stop);
    }

    #[test]
    fn early_mux_fires_without_the_non_selected_input() {
        let mux = early_mux();
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true; // select = 0
        channels[1].forward_valid = true;
        channels[1].data = 0x11;
        mux.eval(&mut io(&mut channels));
        assert!(channels[3].forward_valid, "early evaluation fires on the selected data alone");
        assert_eq!(channels[3].data, 0x11);
        assert!(!channels[1].forward_stop);
        assert!(channels[2].backward_valid, "the non-selected channel receives an anti-token");
        assert!(!channels[2].forward_stop, "kill and stop are mutually exclusive");
    }

    #[test]
    fn early_mux_stalls_when_the_selected_data_is_missing() {
        let mux = early_mux();
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        channels[0].data = 1; // select channel 1
        channels[1].forward_valid = true; // only channel 0 has data
        mux.eval(&mut io(&mut channels));
        assert!(!channels[3].forward_valid);
        assert!(channels[0].forward_stop, "the select token is held");
        assert!(channels[1].forward_stop, "the wrong-channel token is stalled, not killed");
        assert!(!channels[1].backward_valid);
    }

    #[test]
    fn owed_anti_tokens_persist_until_delivered() {
        let mut mux = early_mux();
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true; // select 0
        channels[1].forward_valid = true;
        channels[2].backward_stop = true; // the other producer cannot take the kill yet
        mux.eval(&mut io(&mut channels));
        mux.commit(&io(&mut channels));
        assert_eq!(mux.owed_anti_tokens(), &[0, 1]);

        // Next cycle: nothing new fires, but the owed anti-token is still offered.
        let mut channels = vec![ChannelState::default(); 4];
        mux.eval(&mut io(&mut channels));
        assert!(channels[2].backward_valid);
        // Now the producer accepts it.
        channels[2].backward_stop = false;
        mux.eval(&mut io(&mut channels));
        mux.commit(&io(&mut channels));
        assert_eq!(mux.owed_anti_tokens(), &[0, 0]);
        assert_eq!(mux.stats().killed_tokens, 1);
    }

    #[test]
    fn stale_tokens_on_an_owed_channel_are_cancelled_not_used() {
        let mut mux = early_mux();
        // Cycle 1: fire with select 0 while channel 1 cannot absorb the kill.
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        channels[1].forward_valid = true;
        channels[2].backward_stop = true;
        mux.eval(&mut io(&mut channels));
        mux.commit(&io(&mut channels));
        assert_eq!(mux.owed_anti_tokens(), &[0, 1]);

        // Cycle 2: the select now points at channel 1, whose arriving token is
        // stale (it corresponds to the previous, already-resolved decision).
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        channels[0].data = 1;
        channels[2].forward_valid = true;
        channels[2].data = 0x22;
        mux.eval(&mut io(&mut channels));
        assert!(!channels[3].forward_valid, "a stale token must not be forwarded");
        assert!(channels[2].backward_valid, "it is cancelled by the owed anti-token instead");
        mux.commit(&io(&mut channels));
        assert_eq!(mux.owed_anti_tokens(), &[0, 0]);
    }

    #[test]
    fn early_mux_output_backpressure_prevents_kills() {
        let mux = early_mux();
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        channels[1].forward_valid = true;
        channels[2].forward_valid = true;
        channels[3].forward_stop = true; // downstream refuses
        mux.eval(&mut io(&mut channels));
        assert!(!channels[2].backward_valid, "no firing, so no anti-token is owed yet");
        assert!(channels[0].forward_stop);
    }
}
