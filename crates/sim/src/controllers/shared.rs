//! The speculative shared module (Section 4.1, Figure 4).
//!
//! The shared module multiplexes `users` logical channels over one instance
//! of a combinational operation. Every cycle a [`Scheduler`] predicts which
//! user may use the unit: that user's operands (if valid) are propagated
//! through the shared logic to the user's output channel, while the other
//! users are stalled — unless anti-tokens coming back from the consumer kill
//! their waiting tokens (kill and stop are mutually exclusive, as required by
//! the SELF protocol).
//!
//! Misprediction recovery is entirely local: a retry on the predicted output
//! channel (the consumer needed a different user) is reported to the
//! scheduler, which corrects its prediction on the next cycle. A starvation
//! override enforces the *leads-to* property of Section 4.1.1 for any
//! scheduler: a user whose token has waited longer than the configured limit
//! is served regardless of the prediction.

use elastic_core::{Scheduler, SharedFeedback, SharedSpec};
use elastic_datapath::adder::mask;
use elastic_datapath::evaluate;

use crate::controller::{Controller, NodeIo, NodeStats};

/// Controller for a speculative shared module.
#[derive(Debug)]
pub struct SharedModule {
    spec: SharedSpec,
    scheduler: Box<dyn Scheduler>,
    output_width: u8,
    /// Starvation override (forces a user until its token is served or killed).
    forced_user: Option<usize>,
    /// Consecutive cycles each user has waited with a valid, unserved token.
    starvation: Vec<u32>,
    /// Feedback handed to the scheduler at the end of the previous cycle.
    last_feedback: SharedFeedback,
    stats: NodeStats,
    transfers_per_user: Vec<u64>,
    kills_per_user: Vec<u64>,
}

impl SharedModule {
    /// Creates the controller with the given prediction policy.
    pub fn new(spec: SharedSpec, scheduler: Box<dyn Scheduler>, output_width: u8) -> Self {
        let users = spec.users;
        SharedModule {
            scheduler,
            output_width,
            forced_user: None,
            starvation: vec![0; users],
            last_feedback: SharedFeedback::new(users),
            stats: NodeStats::default(),
            transfers_per_user: vec![0; users],
            kills_per_user: vec![0; users],
            spec,
        }
    }

    /// The user channel granted the unit this cycle (prediction plus
    /// starvation override).
    pub fn granted_user(&self) -> usize {
        let predicted = self.scheduler.prediction() % self.spec.users.max(1);
        self.forced_user.unwrap_or(predicted)
    }

    /// Per-user forward transfer counts on the output channels.
    pub fn transfers_per_user(&self) -> &[u64] {
        &self.transfers_per_user
    }

    /// Per-user kill counts (tokens cancelled by consumer anti-tokens).
    pub fn kills_per_user(&self) -> &[u64] {
        &self.kills_per_user
    }

    fn operand_ports(&self, user: usize) -> std::ops::Range<usize> {
        let m = self.spec.inputs_per_user;
        user * m..(user + 1) * m
    }

    fn user_inputs_valid(&self, io: &NodeIo<'_>, user: usize) -> bool {
        self.operand_ports(user).all(|port| io.input(port).forward_valid)
    }

    fn user_operands(&self, io: &NodeIo<'_>, user: usize) -> Vec<u64> {
        self.operand_ports(user).map(|port| io.input(port).data).collect()
    }
}

impl Controller for SharedModule {
    fn eval(&self, io: &mut NodeIo<'_>) {
        let users = self.spec.users;
        let granted = self.granted_user();

        for user in 0..users {
            let user_valid = self.user_inputs_valid(io, user);
            let output = io.output(user);
            let kill = output.backward_valid;
            let is_granted = user == granted;

            // Forward path: only the granted user's operands reach the shared logic.
            let offers = is_granted && user_valid;
            io.set_output_valid(user, offers);
            let result = if offers {
                mask(
                    evaluate(&self.spec.op, &self.user_operands(io, user)).unwrap_or(0),
                    self.output_width,
                )
            } else {
                0
            };
            io.set_output_data(user, result);

            // Backward path: anti-tokens from the consumer either annihilate
            // against the user's waiting operands or are forwarded upstream.
            let producers_accept_kill =
                self.operand_ports(user).all(|port| !io.input(port).backward_stop);
            io.set_output_anti_stop(user, !(user_valid || producers_accept_kill));

            let output_transfer = offers && !output.forward_stop && !kill;
            let annihilate = user_valid && kill;
            let forward_kill = kill && !user_valid && producers_accept_kill;
            let consume = output_transfer || annihilate;
            for port in self.operand_ports(user) {
                io.set_input_stop(port, !consume);
                io.set_input_kill(port, forward_kill);
            }
        }
    }

    fn commit(&mut self, io: &NodeIo<'_>) {
        let users = self.spec.users;
        let granted = self.granted_user();
        let predicted = self.scheduler.prediction() % users.max(1);

        let mut feedback = SharedFeedback::new(users);
        feedback.cycle = self.last_feedback.cycle + 1;
        feedback.predicted = granted;

        let mut any_valid = false;
        for user in 0..users {
            let user_valid = self.user_inputs_valid(io, user);
            let output = io.output(user);
            let killed = output.backward_transfer();
            let transferred = output.forward_valid && !output.forward_stop && !killed;
            let retried = output.forward_valid && output.forward_stop && !killed;
            let input_killed = self
                .operand_ports(user)
                .any(|port| io.input(port).backward_valid || (user_valid && killed));

            feedback.input_valid[user] = user_valid;
            feedback.input_killed[user] = input_killed;
            feedback.output_transfer[user] = transferred;
            feedback.output_retry[user] = retried;
            feedback.output_killed[user] = killed;
            if transferred {
                feedback.resolved = Some(user);
                self.transfers_per_user[user] += 1;
                self.stats.output_transfers += 1;
            }
            if killed {
                self.kills_per_user[user] += 1;
                self.stats.killed_tokens += 1;
            }
            any_valid |= user_valid;

            // Starvation accounting: a non-granted user with a valid token
            // that neither transferred nor was killed has waited one more
            // cycle. (The granted user is being offered the unit; if its
            // result is stopped, it is the consumer that wants another user,
            // which is exactly what the override must then provide.)
            if user_valid && user != granted && !transferred && !killed && !input_killed {
                self.starvation[user] += 1;
            } else {
                self.starvation[user] = 0;
            }
        }

        if any_valid {
            self.stats.stall_cycles += u64::from(feedback.output_retry[granted]);
        }
        if feedback.mispredicted() {
            self.stats.mispredictions += 1;
        }

        // Leads-to enforcement: force the longest-starved user above the
        // limit. The override lasts one cycle by design: if the consumer
        // refuses the forced result (retry), it is demanding a *different*
        // user — persisting would deadlock a select loop whose mux waits for
        // that other user. The converse hazard (the consumer stalls for an
        // unrelated reason on exactly the override cycle, so the starved
        // user loses its turn — a livelock an adversarial static scheduler
        // can sustain against aligned sink back-pressure, fuzzer seed
        // 0x5eed00030012) is closed structurally by the in-order commit
        // stage: a forced result parks in its lane whether or not the
        // consumer is ready that cycle.
        self.forced_user = None;
        if let Some(limit) = self.spec.starvation_limit {
            if let Some((user, _)) = self
                .starvation
                .iter()
                .enumerate()
                .filter(|(_, &wait)| wait >= limit)
                .max_by_key(|(_, &wait)| wait)
            {
                self.forced_user = Some(user);
            }
        }

        // The scheduler observes the cycle that just completed. Record the
        // prediction it was responsible for (before the override) so accuracy
        // statistics refer to the policy, not to the fairness fallback.
        feedback.predicted = predicted;
        self.scheduler.tick(&feedback);
        self.last_feedback = feedback;
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn reset(&mut self) {
        self.scheduler.reset();
        self.forced_user = None;
        self.starvation.iter_mut().for_each(|wait| *wait = 0);
        self.last_feedback = SharedFeedback::new(self.spec.users);
        self.stats = NodeStats::default();
        self.transfers_per_user.iter_mut().for_each(|count| *count = 0);
        self.kills_per_user.iter_mut().for_each(|count| *count = 0);
    }

    fn override_scheduler(&mut self, scheduler: Box<dyn Scheduler>) -> bool {
        self.scheduler = scheduler;
        true
    }

    fn last_feedback(&self) -> Option<&SharedFeedback> {
        Some(&self.last_feedback)
    }

    fn per_user_stats(&self) -> Option<(Vec<u64>, Vec<u64>)> {
        Some((self.transfers_per_user.clone(), self.kills_per_user.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::ChannelState;
    use elastic_core::op::opaque;
    use elastic_core::scheduler::StaticScheduler;
    use elastic_core::SchedulerKind;

    // Channel layout: inputs 0,1 (user 0, user 1), outputs 2,3.
    fn io(channels: &mut [ChannelState]) -> NodeIo<'_> {
        NodeIo::new(channels, &[0, 1], &[2, 3])
    }

    fn module_with_static(channel: usize) -> SharedModule {
        let spec = SharedSpec::new(2, opaque("F", 4, 50));
        SharedModule::new(spec, Box::new(StaticScheduler::new(channel)), 8)
    }

    #[test]
    fn only_the_granted_user_reaches_the_output() {
        let module = module_with_static(0);
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        channels[0].data = 0x3C;
        channels[1].forward_valid = true;
        channels[1].data = 0x55;
        module.eval(&mut io(&mut channels));
        assert!(channels[2].forward_valid);
        assert_eq!(channels[2].data, 0x3C);
        assert!(!channels[3].forward_valid);
        assert!(!channels[0].forward_stop, "the granted user's operand transfers");
        assert!(channels[1].forward_stop, "the other user is stalled");
        assert!(!channels[1].backward_valid, "stalled, not killed");
    }

    #[test]
    fn consumer_kills_pass_through_to_the_waiting_operand() {
        let module = module_with_static(0);
        let mut channels = vec![ChannelState::default(); 4];
        channels[1].forward_valid = true; // user 1 has a waiting operand
        channels[3].backward_valid = true; // the consumer does not need user 1's result
        module.eval(&mut io(&mut channels));
        assert!(!channels[3].backward_stop, "the kill is accepted");
        assert!(!channels[1].forward_stop, "the waiting operand is consumed by annihilation");
        assert!(!channels[1].backward_valid, "annihilation does not forward the kill upstream");
    }

    #[test]
    fn kills_are_forwarded_upstream_when_no_operand_waits() {
        let module = module_with_static(0);
        let mut channels = vec![ChannelState::default(); 4];
        channels[3].backward_valid = true;
        module.eval(&mut io(&mut channels));
        assert!(channels[1].backward_valid, "the kill continues towards the producer");
        assert!(!channels[3].backward_stop);
    }

    #[test]
    fn retry_on_the_predicted_output_is_reported_as_a_misprediction() {
        let mut module = module_with_static(0);
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        channels[2].forward_stop = true; // the consumer refuses the speculated result
        module.eval(&mut io(&mut channels));
        module.commit(&io(&mut channels));
        assert_eq!(module.stats().mispredictions, 1);
        let feedback = module.last_feedback().unwrap();
        assert!(feedback.output_retry[0]);
        assert!(feedback.mispredicted());
    }

    #[test]
    fn starvation_override_serves_the_neglected_user() {
        let spec = SharedSpec::new(2, opaque("F", 4, 50)).with_scheduler(SchedulerKind::Static(0));
        let mut module = SharedModule::new(
            SharedSpec { starvation_limit: Some(3), ..spec },
            Box::new(StaticScheduler::new(0)),
            8,
        );
        let mut channels = vec![ChannelState::default(); 4];
        channels[1].forward_valid = true; // user 1 waits forever under a static-0 scheduler
        for _ in 0..3 {
            module.eval(&mut io(&mut channels));
            module.commit(&io(&mut channels));
        }
        assert_eq!(module.granted_user(), 1, "the starvation override must kick in");
        module.eval(&mut io(&mut channels));
        assert!(channels[3].forward_valid, "the starved user's token is finally served");
    }

    #[test]
    fn per_user_transfer_statistics_are_collected() {
        let mut module = module_with_static(0);
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        module.eval(&mut io(&mut channels));
        module.commit(&io(&mut channels));
        assert_eq!(module.transfers_per_user(), &[1, 0]);
        assert_eq!(module.last_feedback().unwrap().resolved, Some(0));
    }

    #[test]
    fn multi_operand_users_join_their_operands() {
        let spec = SharedSpec::new(2, elastic_core::Op::Add).with_inputs_per_user(2);
        let mut module = SharedModule::new(spec, Box::new(StaticScheduler::new(0)), 8);
        // inputs: 0,1 (user 0), 2,3 (user 1); outputs 4,5.
        let mut channels = vec![ChannelState::default(); 6];
        let inputs = [0usize, 1, 2, 3];
        let outputs = [4usize, 5];
        channels[0].forward_valid = true;
        channels[0].data = 3;
        let mut node_io = NodeIo::new(&mut channels, &inputs, &outputs);
        module.eval(&mut node_io);
        assert!(!channels[4].forward_valid, "user 0 is missing its second operand");
        channels[1].forward_valid = true;
        channels[1].data = 4;
        let mut node_io = NodeIo::new(&mut channels, &inputs, &outputs);
        module.eval(&mut node_io);
        assert!(channels[4].forward_valid);
        assert_eq!(channels[4].data, 7);
        let node_io = NodeIo::new(&mut channels, &inputs, &outputs);
        module.commit(&node_io);
        assert_eq!(module.transfers_per_user()[0], 1);
    }
}
