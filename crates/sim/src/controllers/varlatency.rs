//! The stalling variable-latency unit of Figure 6(a).
//!
//! The unit computes an approximate result in one cycle. When the error
//! detector reports that the approximation differs from the exact result, the
//! output is withheld for one extra cycle and the exact result is delivered
//! instead — the handshake naturally stalls the producer and the consumer for
//! that cycle. This is the *baseline* implementation whose error-detection
//! path ends up on the critical cycle; the speculative alternative of Figure
//! 6(b) is built structurally out of ordinary primitives (see
//! `elastic_core::library::variable_latency_speculative`).

use elastic_core::kind::VarLatencySpec;
use elastic_datapath::adder::mask;
use elastic_datapath::evaluate;

use crate::controller::{Controller, NodeIo, NodeStats};

const OUT: usize = 0;

/// Controller for the monolithic (stalling) variable-latency unit.
#[derive(Debug)]
pub struct VarLatencyUnit {
    spec: VarLatencySpec,
    output_width: u8,
    /// Result waiting to be delivered downstream.
    output_register: Option<u64>,
    /// Set while the exact computation of the current operands is pending.
    exact_pending: bool,
    stats: NodeStats,
    slow_computations: u64,
}

impl VarLatencyUnit {
    /// Creates the controller.
    pub fn new(spec: VarLatencySpec, output_width: u8) -> Self {
        VarLatencyUnit {
            spec,
            output_width,
            output_register: None,
            exact_pending: false,
            stats: NodeStats::default(),
            slow_computations: 0,
        }
    }

    /// Number of computations that needed the second (exact) cycle.
    pub fn slow_computations(&self) -> u64 {
        self.slow_computations
    }

    fn error_detected(&self, io: &NodeIo<'_>) -> bool {
        evaluate(&self.spec.error, &io.input_data()).unwrap_or(0) != 0
    }

    fn finishes_this_cycle(&self, io: &NodeIo<'_>) -> bool {
        let all_valid = io.all_inputs_valid();
        let output = io.output(OUT);
        let slot_frees =
            self.output_register.is_none() || (output.forward_valid && !output.forward_stop);
        all_valid && slot_frees && (self.exact_pending || !self.error_detected(io))
    }
}

impl Controller for VarLatencyUnit {
    fn eval(&self, io: &mut NodeIo<'_>) {
        io.set_output_valid(OUT, self.output_register.is_some());
        io.set_output_data(OUT, self.output_register.unwrap_or(0));
        io.set_output_anti_stop(OUT, true);

        let finish = self.finishes_this_cycle(io);
        for port in 0..io.input_count() {
            io.set_input_stop(port, !finish);
            io.set_input_kill(port, false);
        }
    }

    fn commit(&mut self, io: &NodeIo<'_>) {
        let output = io.output(OUT);
        if output.forward_valid && !output.forward_stop {
            self.output_register = None;
            self.stats.output_transfers += 1;
        } else if output.forward_valid {
            self.stats.stall_cycles += 1;
        }

        let all_valid = io.all_inputs_valid();
        if !all_valid {
            return;
        }
        let operands = io.input_data();
        let slot_free = self.output_register.is_none();
        if self.finishes_this_cycle(io) {
            let op = if self.exact_pending || self.error_detected(io) {
                &self.spec.exact
            } else {
                &self.spec.approx
            };
            let result = mask(evaluate(op, &operands).unwrap_or(0), self.output_width);
            self.output_register = Some(result);
            self.exact_pending = false;
        } else if slot_free && !self.exact_pending && self.error_detected(io) {
            // The approximation failed: spend one extra cycle, then deliver
            // the exact result.
            self.exact_pending = true;
            self.slow_computations += 1;
            self.stats.stall_cycles += 1;
        }
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn reset(&mut self) {
        self.output_register = None;
        self.exact_pending = false;
        self.stats = NodeStats::default();
        self.slow_computations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::ChannelState;
    use elastic_core::Op;

    fn spec() -> VarLatencySpec {
        VarLatencySpec {
            exact: Op::RippleAdd { width: 8 },
            approx: Op::ApproxAdd { width: 8, spec_bits: 4 },
            error: Op::ApproxAddErr { width: 8, spec_bits: 4 },
            inputs: 2,
        }
    }

    fn io(channels: &mut [ChannelState]) -> NodeIo<'_> {
        NodeIo::new(channels, &[0, 1], &[2])
    }

    #[test]
    fn fast_operands_complete_in_one_cycle() {
        let mut unit = VarLatencyUnit::new(spec(), 9);
        let mut channels = vec![ChannelState::default(); 3];
        channels[0].forward_valid = true;
        channels[0].data = 0x03;
        channels[1].forward_valid = true;
        channels[1].data = 0x04;
        unit.eval(&mut io(&mut channels));
        assert!(!channels[0].forward_stop, "no carry across the boundary: single-cycle");
        unit.commit(&io(&mut channels));
        channels[0].forward_valid = false;
        channels[1].forward_valid = false;
        unit.eval(&mut io(&mut channels));
        assert!(channels[2].forward_valid);
        assert_eq!(channels[2].data, 7);
        assert_eq!(unit.slow_computations(), 0);
    }

    #[test]
    fn erroneous_operands_take_two_cycles_and_deliver_the_exact_sum() {
        let mut unit = VarLatencyUnit::new(spec(), 9);
        let mut channels = vec![ChannelState::default(); 3];
        // 0x0F + 0x01 carries across bit 4: the approximation is wrong.
        channels[0].forward_valid = true;
        channels[0].data = 0x0F;
        channels[1].forward_valid = true;
        channels[1].data = 0x01;

        // Cycle 1: the unit stalls its inputs.
        unit.eval(&mut io(&mut channels));
        assert!(channels[0].forward_stop);
        unit.commit(&io(&mut channels));
        assert_eq!(unit.slow_computations(), 1);

        // Cycle 2: the exact result is produced and the operands are consumed.
        unit.eval(&mut io(&mut channels));
        assert!(!channels[0].forward_stop);
        unit.commit(&io(&mut channels));
        channels[0].forward_valid = false;
        channels[1].forward_valid = false;

        // Cycle 3: the exact result is visible downstream.
        unit.eval(&mut io(&mut channels));
        assert!(channels[2].forward_valid);
        assert_eq!(channels[2].data, 0x10);
    }

    #[test]
    fn output_backpressure_holds_the_result() {
        let mut unit = VarLatencyUnit::new(spec(), 9);
        let mut channels = vec![ChannelState::default(); 3];
        channels[0].forward_valid = true;
        channels[0].data = 1;
        channels[1].forward_valid = true;
        channels[1].data = 1;
        unit.eval(&mut io(&mut channels));
        unit.commit(&io(&mut channels));
        // Result is latched; downstream refuses it for a while.
        channels[0].forward_valid = false;
        channels[1].forward_valid = false;
        channels[2].forward_stop = true;
        for _ in 0..3 {
            unit.eval(&mut io(&mut channels));
            assert!(channels[2].forward_valid);
            assert_eq!(channels[2].data, 2);
            unit.commit(&io(&mut channels));
        }
        channels[2].forward_stop = false;
        unit.eval(&mut io(&mut channels));
        unit.commit(&io(&mut channels));
        unit.eval(&mut io(&mut channels));
        assert!(!channels[2].forward_valid, "the register empties after the transfer");
    }
}
