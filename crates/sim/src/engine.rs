//! The simulation engine: two-phase (settle / commit) clock-cycle execution.
//!
//! Every cycle the engine:
//!
//! 1. clears all channel signals,
//! 2. drives the combinational control network to a fixed point (the settle
//!    phase — valids, stops and anti-token signals may traverse several nodes
//!    within one cycle, e.g. through zero-backward-latency buffers),
//! 3. records the settled signals in the trace, and
//! 4. commits all sequential state simultaneously (the clock edge).
//!
//! # The event-driven settle phase
//!
//! The settle phase is an **event-driven worklist fixpoint** rather than a
//! Jacobi iteration over all controllers:
//!
//! * at build time the engine derives, for every channel, which controllers
//!   observe it (both endpoints — consumers read `V+`/data/`S-`, producers
//!   read `S+`/`V-`), and a **static evaluation rank**: a topological order
//!   over the zero-delay control dependency graph in which fully registered
//!   controllers (standard elastic buffers, sources, sinks — see
//!   [`crate::controller::Controller::eval_reads_channels`]) cut the edges;
//! * each cycle, every controller is seeded into a rank-ordered worklist
//!   once. Controllers are popped in rank order; every signal write is
//!   compare-and-set ([`NodeIo::tracked`]), and an actual change re-enqueues
//!   exactly the other endpoint of the changed channel (if it reads
//!   channels). The phase ends when the worklist drains — no full-vector
//!   snapshot, no `Vec<ChannelState>` clone, no re-evaluation of unaffected
//!   controllers;
//! * regions whose combinational nodes are fed by registered controllers
//!   settle in a single pass (the rank graph is node-granular, so mutually
//!   observing neighbours — e.g. a function-block chain, where `V+` flows
//!   forward while `S+` flows backward — share one trailing rank and settle
//!   by a couple of re-wake waves instead), and the total work per cycle is
//!   proportional to the number of signal *changes*, not to
//!   `iterations × nodes`.
//!
//! A per-cycle evaluation budget (see [`Simulation::settle_budget`]) remains
//! as a safety valve: if the signals fail to settle, the netlist contains a
//! combinational control loop (e.g. a cycle with no elastic buffer on it) and
//! the engine reports [`SimError::CombinationalLoop`] rather than
//! mis-simulating.
//!
//! # The optimistic seeding pass
//!
//! Netlists containing **lazy forks** have settle equations with more than
//! one fixed point: a lazy fork withholds every branch copy while any
//! branch is not ready, and a join reconverging two of its branches holds
//! its stop while the copies are missing — a circular wait whose cleared
//! state can fall into the *dead* solution (all valids low, all stops high)
//! even though a live solution exists. When any controller reports
//! [`Controller::is_optimistic`], both settle strategies therefore run a
//! two-pass fixpoint each cycle: first the whole network settles with
//! those controllers evaluating via [`Controller::eval_optimistic`] (a
//! lazy fork offers all copies as if every branch were ready), then the
//! honest equations re-settle from
//! that state. Signals only step *down* from the optimistic solution
//! (valids fall, stops rise), so the second pass converges onto the
//! greatest — maximal-progress — fixpoint when one exists, and genuine
//! blockers (real back-pressure) still win. Netlists without optimistic
//! controllers pay nothing: the pass is skipped entirely.
//!
//! The pre-rewrite full-sweep behaviour is kept as
//! [`SettleStrategy::FullSweep`] — a debugging oracle used by the
//! engine-equivalence tests to prove that the worklist engine produces
//! bit-identical traces and reports.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use elastic_core::kind::{BackpressurePattern, SourcePattern};
use elastic_core::{ChannelId, CoreError, Netlist, NodeId, Scheduler};

use crate::compiled::{CompiledPlan, SettleCtx};
use crate::controller::{Controller, NodeIo};
use crate::controllers::build_controller;
use crate::faults::{FaultInjector, FaultPlan, ResolvedFault};
use crate::metrics::{SharedModuleStats, SimulationReport};
use crate::monitor::{CycleMonitor, MonitorViolation};
use crate::signal::ChannelState;
use crate::trace::Trace;

/// How the combinational settle phase reaches its fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SettleStrategy {
    /// Event-driven worklist: only controllers whose observed channels
    /// changed are re-evaluated, in static rank order. The default.
    #[default]
    EventDriven,
    /// Naive Jacobi iteration: evaluate every controller in node order until
    /// a full sweep changes nothing. Kept as the reference oracle for
    /// engine-equivalence tests and for debugging suspected worklist bugs.
    FullSweep,
    /// Compiled plan: the netlist is lowered once into a topologically
    /// ordered sequence of fused, monomorphic micro-ops (see the
    /// `compiled` module); the acyclic part of the control network settles
    /// in one straight-line pass with no dynamic dispatch and no worklist.
    /// Netlists with optimistic controllers (lazy forks) transparently fall
    /// back to [`SettleStrategy::EventDriven`], which implements the
    /// two-pass seeding they need.
    ///
    /// Effort counters under this strategy:
    /// [`SimulationReport::settle_iterations`] counts **micro-op
    /// executions** (each scheduled op once per cycle, plus once per
    /// trailing sweep), and [`SimulationReport::controller_evals`] counts
    /// only the remaining *dynamic* `Controller::eval` calls (registered
    /// controllers and unspecialized kinds) — fused ops evaluate no
    /// controller at all.
    Compiled,
}

/// A settle-phase replacement for
/// [`Simulation::step_with_external_settle`]: clears and settles the dense
/// channel vector in place, reading controller state only for the per-cycle
/// sequential-state snapshots (see [`crate::codegen`]).
pub(crate) type ExternalSettleFn<'a> = dyn FnMut(&mut [ChannelState], &[Box<dyn Controller>]) + 'a;

/// Configuration of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Record a full per-channel trace (needed for Table-1 style output and
    /// for the property checkers of `elastic-verify`).
    pub record_trace: bool,
    /// Upper bound on the combinational settle work per cycle, measured in
    /// **full-sweep equivalents** (one unit ≙ one evaluation of every
    /// controller).
    ///
    /// The default (0) lets the engine derive the bound `2·channels + 8` from
    /// the netlist size: a changed signal can traverse at most every channel
    /// once in each direction, plus slack for the seeding pass — any netlist
    /// that needs more has a combinational control loop. The derived value is
    /// exposed as [`Simulation::settle_budget`].
    pub max_settle_iterations: usize,
    /// Fixpoint algorithm for the settle phase; see [`SettleStrategy`].
    pub settle: SettleStrategy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            record_trace: true,
            max_settle_iterations: 0,
            settle: SettleStrategy::EventDriven,
        }
    }
}

/// Errors raised while building or running a simulation.
#[derive(Debug)]
pub enum SimError {
    /// The netlist failed structural validation.
    InvalidNetlist(CoreError),
    /// A node kind/configuration has no controller model.
    UnsupportedNode {
        /// The offending node.
        node: NodeId,
        /// Why it cannot be simulated.
        reason: String,
    },
    /// The control signals did not reach a fixed point within the iteration
    /// budget — the netlist has a combinational control loop.
    CombinationalLoop {
        /// The cycle in which settling failed.
        cycle: u64,
        /// The controllers and channels that were still oscillating when the
        /// settle budget ran out.
        witness: OscillationWitness,
    },
    /// A [`FaultPlan`] names a channel the simulated netlist does not have.
    UnknownChannel {
        /// The channel id that failed to resolve.
        channel: ChannelId,
    },
    /// A runtime monitor detected an invariant violation; the run stopped
    /// fail-fast at the reported locus (see
    /// [`Simulation::run_monitored`]).
    MonitorTripped(MonitorViolation),
}

/// The still-dirty part of the network when a settle budget was exhausted:
/// which controllers kept being re-woken and which channel signals were
/// still changing in the final evaluation wave. This is the difference
/// between "there is a combinational loop somewhere" and knowing which
/// handful of nodes to stare at.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OscillationWitness {
    /// Controllers still queued for re-evaluation (node id and kind name),
    /// in dense node order.
    pub nodes: Vec<(NodeId, &'static str)>,
    /// Channels whose signals changed in the last evaluation before the
    /// budget ran out.
    pub channels: Vec<ChannelId>,
}

impl fmt::Display for OscillationWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const SHOWN: usize = 8;
        let nodes: Vec<String> =
            self.nodes.iter().take(SHOWN).map(|(node, kind)| format!("{node} ({kind})")).collect();
        write!(f, "oscillating controllers [{}", nodes.join(", "))?;
        if self.nodes.len() > SHOWN {
            write!(f, ", +{} more", self.nodes.len() - SHOWN)?;
        }
        write!(f, "]")?;
        if !self.channels.is_empty() {
            let channels: Vec<String> =
                self.channels.iter().take(SHOWN).map(|c| c.to_string()).collect();
            write!(f, ", last-changing channels [{}", channels.join(", "))?;
            if self.channels.len() > SHOWN {
                write!(f, ", +{} more", self.channels.len() - SHOWN)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidNetlist(error) => write!(f, "netlist is not simulable: {error}"),
            SimError::UnsupportedNode { node, reason } => {
                write!(f, "node {node} cannot be simulated: {reason}")
            }
            SimError::CombinationalLoop { cycle, witness } => write!(
                f,
                "control signals did not settle in cycle {cycle}: the netlist contains a \
                 combinational loop (insert an elastic buffer on the loop); {witness}"
            ),
            SimError::UnknownChannel { channel } => {
                write!(f, "fault plan names channel {channel}, which the netlist does not have")
            }
            SimError::MonitorTripped(violation) => {
                write!(f, "runtime monitor tripped: {violation}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<CoreError> for SimError {
    fn from(error: CoreError) -> Self {
        SimError::InvalidNetlist(error)
    }
}

/// A rank-ordered worklist of controller indices with O(1) dedupe.
///
/// Controllers are bucketed by their static evaluation rank; `pop` always
/// returns a controller of the lowest dirty rank, so rank-ordered regions
/// are evaluated producers-before-consumers. A signal change travelling
/// against the ranks (or within the shared trailing rank of mutually
/// observing controllers) simply moves the cursor back to the affected
/// bucket and settles by re-wake waves.
#[derive(Debug)]
pub(crate) struct Worklist {
    pub(crate) buckets: Vec<Vec<u32>>,
    pub(crate) queued: Vec<bool>,
    pub(crate) cursor: usize,
    pub(crate) len: usize,
}

impl Worklist {
    pub(crate) fn new(rank_count: usize, node_count: usize) -> Self {
        Worklist {
            buckets: vec![Vec::new(); rank_count.max(1)],
            queued: vec![false; node_count],
            cursor: 0,
            len: 0,
        }
    }

    pub(crate) fn push(&mut self, node: usize, rank: usize) {
        if !self.queued[node] {
            self.queued[node] = true;
            self.buckets[rank].push(node as u32);
            self.cursor = self.cursor.min(rank);
            self.len += 1;
        }
    }

    pub(crate) fn pop(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.cursor].is_empty() {
            self.cursor += 1;
        }
        let node = self.buckets[self.cursor].pop().expect("bucket checked non-empty") as usize;
        self.queued[node] = false;
        self.len -= 1;
        Some(node)
    }
}

/// Process-wide count of [`Simulation`] constructions (see
/// [`Simulation::constructions`]).
static CONSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// A cycle-accurate simulation of one elastic netlist.
pub struct Simulation {
    config: SimConfig,
    controllers: Vec<Box<dyn Controller>>,
    node_ids: Vec<NodeId>,
    node_kinds: Vec<&'static str>,
    node_ports: Vec<(Vec<usize>, Vec<usize>)>,
    channels: Vec<ChannelState>,
    /// Declared bit width of each channel (dense index), shared with every
    /// tracked [`NodeIo`] so producers mask data to the wire they drive.
    channel_widths: Vec<u8>,
    /// Netlist channel id of each dense channel index (the inverse of the
    /// `channel_index` map used at build time); needed to resolve
    /// [`FaultPlan`]s and to name channels in oscillation witnesses.
    channel_ids: Vec<ChannelId>,
    /// Controller index producing / consuming each channel.
    channel_producer: Vec<u32>,
    channel_consumer: Vec<u32>,
    /// Cached `Controller::eval_reads_channels` per controller.
    reads_channels: Vec<bool>,
    /// Controller indices requiring the optimistic seeding pass (lazy forks);
    /// empty for the vast majority of netlists, in which case the settle
    /// phase is exactly the single-pass fixpoint.
    optimistic_nodes: Vec<u32>,
    /// Static evaluation rank per controller (see module docs).
    rank: Vec<u32>,
    /// Controller indices grouped by rank — the per-cycle seed layout.
    seed_buckets: Vec<Vec<u32>>,
    /// Scratch buffer receiving the channels dirtied by one `eval`.
    dirty: Vec<usize>,
    /// Controllers still queued (event-driven) or still changing (full
    /// sweep) when a settle budget ran out — the raw material of the
    /// [`OscillationWitness`]. Empty outside the error path.
    oscillating: Vec<u32>,
    /// The lowered settle plan when [`SettleStrategy::Compiled`] is active
    /// and the netlist has no optimistic controllers; `None` otherwise (the
    /// strategy then falls back to the event-driven settle).
    compiled: Option<Box<CompiledPlan>>,
    worklist: Worklist,
    trace: Trace,
    cycle: u64,
    /// Armed fault injector, if any (see [`Simulation::arm_faults`]).
    injector: Option<FaultInjector>,
    /// Set when a [`Simulation::run_with_deadline`] run was cut short by its
    /// wall-clock deadline (surfaced in the report).
    deadline_exceeded: bool,
    /// Total settle iterations: worklist pops (event-driven), full sweeps
    /// (reference) or micro-op executions (compiled), accumulated over all
    /// cycles.
    settle_iterations: u64,
    /// Total `Controller::eval` invocations over all cycles.
    controller_evals: u64,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.controllers.len())
            .field("channels", &self.channels.len())
            .field("cycle", &self.cycle)
            .field("settle", &self.config.settle)
            .finish()
    }
}

impl Simulation {
    /// Builds a simulation of `netlist` with the schedulers named in the
    /// netlist itself.
    ///
    /// # Errors
    ///
    /// Fails when the netlist does not validate or contains a node the
    /// simulator cannot model.
    pub fn new(netlist: &Netlist, config: &SimConfig) -> Result<Self, SimError> {
        Self::with_schedulers(netlist, config, Vec::new())
    }

    /// Builds a simulation, overriding the scheduler of selected shared
    /// modules (used to sweep prediction policies without rebuilding the
    /// netlist).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::new`].
    pub fn with_schedulers(
        netlist: &Netlist,
        config: &SimConfig,
        mut scheduler_overrides: Vec<(NodeId, Box<dyn Scheduler>)>,
    ) -> Result<Self, SimError> {
        CONSTRUCTIONS.fetch_add(1, Ordering::Relaxed);
        netlist.validate()?;

        // Dense channel indexing shared with the trace.
        let mut channel_index = BTreeMap::new();
        let mut channel_widths = Vec::new();
        let mut channel_ids = Vec::new();
        for (index, channel) in netlist.live_channels().enumerate() {
            channel_index.insert(channel.id, index);
            channel_widths.push(channel.width);
            channel_ids.push(channel.id);
        }

        let mut controllers = Vec::new();
        let mut node_ids = Vec::new();
        let mut node_kinds = Vec::new();
        let mut node_ports = Vec::new();
        let mut channel_producer = vec![0u32; channel_index.len()];
        let mut channel_consumer = vec![0u32; channel_index.len()];
        for node in netlist.live_nodes() {
            let override_position = scheduler_overrides.iter().position(|(id, _)| *id == node.id);
            let scheduler = override_position.map(|pos| scheduler_overrides.swap_remove(pos).1);
            let controller = build_controller(netlist, node, scheduler)?;
            let node_index = controllers.len() as u32;

            let inputs: Vec<usize> = (0..node.input_count())
                .map(|port| {
                    netlist
                        .channel_into(elastic_core::Port::input(node.id, port))
                        .map(|c| channel_index[&c.id])
                        .expect("validated netlists have fully connected ports")
                })
                .collect();
            let outputs: Vec<usize> = (0..node.output_count())
                .map(|port| {
                    netlist
                        .channel_from(elastic_core::Port::output(node.id, port))
                        .map(|c| channel_index[&c.id])
                        .expect("validated netlists have fully connected ports")
                })
                .collect();
            for &channel in &inputs {
                channel_consumer[channel] = node_index;
            }
            for &channel in &outputs {
                channel_producer[channel] = node_index;
            }

            controllers.push(controller);
            node_ids.push(node.id);
            node_kinds.push(node.kind.kind_name());
            node_ports.push((inputs, outputs));
        }

        let reads_channels: Vec<bool> =
            controllers.iter().map(|c| c.eval_reads_channels()).collect();
        let optimistic_nodes: Vec<u32> = controllers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_optimistic())
            .map(|(index, _)| index as u32)
            .collect();
        let rank = evaluation_ranks(
            controllers.len(),
            &node_ports,
            &channel_producer,
            &channel_consumer,
            &reads_channels,
        );
        let rank_count = rank.iter().map(|&r| r as usize + 1).max().unwrap_or(1);
        let mut seed_buckets = vec![Vec::new(); rank_count];
        for (node, &node_rank) in rank.iter().enumerate() {
            seed_buckets[node_rank as usize].push(node as u32);
        }

        // Lower the netlist to the fused micro-op plan only when the compiled
        // strategy will actually use it: optimistic controllers (lazy forks)
        // need the event-driven engine's two-pass seeding, so such netlists
        // run uncompiled.
        let compiled = if config.settle == SettleStrategy::Compiled && optimistic_nodes.is_empty() {
            Some(Box::new(CompiledPlan::build(
                netlist,
                &node_ports,
                &reads_channels,
                &channel_widths,
            )))
        } else {
            None
        };

        Ok(Simulation {
            config: config.clone(),
            worklist: Worklist::new(rank_count, controllers.len()),
            controllers,
            node_ids,
            node_kinds,
            node_ports,
            channels: vec![ChannelState::default(); channel_index.len()],
            channel_widths,
            channel_ids,
            channel_producer,
            channel_consumer,
            reads_channels,
            optimistic_nodes,
            rank,
            seed_buckets,
            dirty: Vec::new(),
            oscillating: Vec::new(),
            compiled,
            trace: Trace::new(netlist),
            cycle: 0,
            injector: None,
            deadline_exceeded: false,
            settle_iterations: 0,
            controller_evals: 0,
        })
    }

    /// Number of cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The recorded trace (empty unless [`SimConfig::record_trace`] is set).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The per-cycle settle budget in full-sweep equivalents: the configured
    /// [`SimConfig::max_settle_iterations`] when non-zero, otherwise the
    /// derived bound `2·channels + 8` (every channel can change at most once
    /// per direction, plus seeding slack).
    pub fn settle_budget(&self) -> usize {
        if self.config.max_settle_iterations > 0 {
            self.config.max_settle_iterations
        } else {
            2 * self.channels.len() + 8
        }
    }

    /// Process-wide count of simulation constructions
    /// ([`Simulation::new`] / [`Simulation::with_schedulers`]) — a build
    /// diagnostic used by sweep tests to prove that exploration loops reuse
    /// one simulation per worker thread (via [`Simulation::reset`]) instead
    /// of rebuilding per run. Resets ([`Simulation::reset`] and friends) do
    /// **not** count.
    pub fn constructions() -> u64 {
        CONSTRUCTIONS.load(Ordering::Relaxed)
    }

    /// Rewinds the simulation to cycle 0 without rebuilding it.
    ///
    /// Every controller's sequential state and statistics return to their
    /// post-construction values, the channel signals and the recorded trace
    /// are cleared, and the cycle/effort counters restart at zero. Everything
    /// *derived from the netlist structure* survives untouched: validation,
    /// the controller set, the channel adjacency, the static evaluation ranks
    /// and the worklist layout — which is what makes a reset O(state) instead
    /// of O(netlist) and lets exploration sweeps run thousands of
    /// environments on one build. A reset simulation is observationally
    /// identical to a freshly built one.
    pub fn reset(&mut self) {
        for controller in &mut self.controllers {
            controller.reset();
        }
        for channel in &mut self.channels {
            *channel = ChannelState::default();
        }
        if let Some(injector) = &mut self.injector {
            injector.rewind();
        }
        self.trace.clear();
        self.cycle = 0;
        self.deadline_exceeded = false;
        self.settle_iterations = 0;
        self.controller_evals = 0;
    }

    /// Arms a [`FaultPlan`] on this simulation: from the next cycle on, the
    /// settled signals of each cycle are perturbed by every fault whose
    /// window covers it (see [`crate::faults`] for the fault model).
    ///
    /// Arming replaces any previously armed plan. The plan survives
    /// [`Simulation::reset`] — the injector's replay memory and counters are
    /// rewound with the rest of the state, so a reset faulted run replays
    /// bit-identically. Use [`Simulation::disarm_faults`] to return to a
    /// clean simulation.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownChannel`] when the plan names a channel the
    /// netlist does not have.
    pub fn arm_faults(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        let mut resolved = Vec::with_capacity(plan.faults.len());
        for spec in &plan.faults {
            let index = self
                .channel_ids
                .iter()
                .position(|&id| id == spec.channel)
                .ok_or(SimError::UnknownChannel { channel: spec.channel })?;
            let width = self.channel_widths[index];
            let width_mask = if width >= 64 { u64::MAX } else { (1u64 << width).wrapping_sub(1) };
            resolved.push(ResolvedFault { channel: index, width_mask, spec: *spec });
        }
        self.injector = Some(FaultInjector::new(resolved, self.channels.len()));
        Ok(())
    }

    /// Removes any armed fault plan; subsequent cycles run clean.
    pub fn disarm_faults(&mut self) {
        self.injector = None;
    }

    /// [`Simulation::reset`], additionally replacing the back-pressure
    /// pattern of the named sinks (the environment enumeration of
    /// `elastic-verify` uses this to sweep sink behaviours without cloning
    /// the netlist). Overrides persist across later plain resets.
    ///
    /// Non-sink node ids in `overrides` are rejected with a debug assertion
    /// (and ignored in release builds).
    pub fn reset_with_sink_patterns(&mut self, overrides: &[(NodeId, BackpressurePattern)]) {
        self.reset();
        for (node, pattern) in overrides {
            let applied = self
                .node_index(*node)
                .map(|index| self.controllers[index].override_backpressure(pattern))
                .unwrap_or(false);
            debug_assert!(applied, "node {node} is not a sink; cannot override back-pressure");
        }
    }

    /// [`Simulation::reset`], additionally replacing the token-offer pattern
    /// of the named sources (the environment-injection sweeps of the fuzzing
    /// harness use this to vary *when* generated environments offer tokens
    /// without cloning the netlist — the data streams are kept). Overrides
    /// persist across later plain resets.
    ///
    /// Non-source node ids in `overrides` are rejected with a debug assertion
    /// (and ignored in release builds).
    pub fn reset_with_source_patterns(&mut self, overrides: &[(NodeId, SourcePattern)]) {
        self.reset();
        for (node, pattern) in overrides {
            let applied = self
                .node_index(*node)
                .map(|index| self.controllers[index].override_source_pattern(pattern))
                .unwrap_or(false);
            debug_assert!(
                applied,
                "node {node} is not a source; cannot override its offer pattern"
            );
        }
    }

    /// [`Simulation::reset`], additionally replacing the prediction policy of
    /// the named shared modules (the adversarial-scheduler exploration uses
    /// this to sweep seeded schedulers without rebuilding). The schedulers
    /// must be freshly initialised; overrides persist across later plain
    /// resets, which rewind them via [`Scheduler::reset`].
    ///
    /// Non-shared node ids are rejected with a debug assertion (and ignored
    /// in release builds — the box is dropped).
    pub fn reset_with_schedulers(&mut self, overrides: Vec<(NodeId, Box<dyn Scheduler>)>) {
        self.reset();
        for (node, scheduler) in overrides {
            let applied = self
                .node_index(node)
                .map(|index| self.controllers[index].override_scheduler(scheduler))
                .unwrap_or(false);
            debug_assert!(applied, "node {node} is not a shared module; cannot override scheduler");
        }
    }

    /// Dense controller index of a node id.
    fn node_index(&self, node: NodeId) -> Option<usize> {
        self.node_ids.iter().position(|&id| id == node)
    }

    /// Evaluates controller `node` with change tracking and wakes the
    /// controllers observing any channel the evaluation changed.
    fn eval_and_wake(&mut self, node: usize, optimistic: bool) {
        self.dirty.clear();
        let (inputs, outputs) = &self.node_ports[node];
        let mut io = NodeIo::tracked(
            &mut self.channels,
            inputs,
            outputs,
            &self.channel_widths,
            &mut self.dirty,
        );
        if optimistic {
            self.controllers[node].eval_optimistic(&mut io);
        } else {
            self.controllers[node].eval(&mut io);
        }
        self.controller_evals += 1;
        for &channel in &self.dirty {
            let producer = self.channel_producer[channel] as usize;
            let consumer = self.channel_consumer[channel] as usize;
            if producer == node && consumer == node {
                // Self-loop channel: the writer is also the only observer, so
                // the "writer never needs re-waking" shortcut below would
                // suppress the only possible wake-up and silently accept a
                // non-fixpoint state. Re-enqueue the writer instead; a stable
                // eval stops producing changes (terminating the loop), an
                // oscillating one exhausts the budget and is reported as a
                // combinational loop, matching the full-sweep oracle.
                if self.reads_channels[node] {
                    self.worklist.push(node, self.rank[node] as usize);
                }
                continue;
            }
            for endpoint in [producer, consumer] {
                // The writer itself never needs re-waking for its own write
                // (eval is a pure function, so re-running it with unchanged
                // inputs cannot produce new outputs), and fully registered
                // controllers never react to channel changes at all.
                if endpoint != node && self.reads_channels[endpoint] {
                    self.worklist.push(endpoint, self.rank[endpoint] as usize);
                }
            }
        }
    }

    /// Seeds every controller into the worklist, in rank order.
    fn seed_worklist(&mut self) {
        for rank in 0..self.seed_buckets.len() {
            // Seed via the bucket layout directly: cheaper than per-node
            // `push` and already in rank order.
            let bucket = &self.seed_buckets[rank];
            self.worklist.buckets[rank].extend_from_slice(bucket);
            for &node in bucket {
                self.worklist.queued[node as usize] = true;
            }
            self.worklist.len += bucket.len();
        }
        self.worklist.cursor = 0;
    }

    /// Drains the worklist to a fixed point, evaluating with the given mode.
    /// Returns `false` when the shared evaluation budget is exhausted.
    fn drain_worklist(&mut self, optimistic: bool, evals: &mut u64, eval_cap: u64) -> bool {
        while let Some(node) = self.worklist.pop() {
            *evals += 1;
            self.settle_iterations += 1;
            if *evals > eval_cap {
                // Capture the oscillation witness — the node whose turn it
                // was plus everything still queued — and drain the queue so
                // the worklist is clean if the caller inspects or reuses the
                // simulation after the error.
                self.oscillating.clear();
                self.oscillating.push(node as u32);
                while let Some(pending) = self.worklist.pop() {
                    self.oscillating.push(pending as u32);
                }
                return false;
            }
            self.eval_and_wake(node, optimistic);
        }
        true
    }

    /// Event-driven settle: seed every controller once in rank order, then
    /// drain the worklist. When the netlist contains multi-fixpoint
    /// controllers (lazy forks), an **optimistic seeding pass** runs first:
    /// the whole network settles with those controllers evaluating
    /// optimistically (offering as if every circular-wait precondition
    /// held), then the honest equations re-settle from that state — signals
    /// only step down from the optimistic solution, so the system lands in
    /// its live (greatest) fixpoint instead of the dead one the cleared
    /// state can fall into. Returns `false` when the evaluation budget is
    /// exhausted (combinational loop).
    fn settle_event_driven(&mut self) -> bool {
        debug_assert_eq!(self.worklist.len, 0, "worklist drained at end of previous cycle");
        let eval_cap =
            (self.settle_budget() as u64).saturating_mul(self.controllers.len().max(1) as u64);
        let mut evals_this_cycle = 0u64;

        self.seed_worklist();
        if !self.optimistic_nodes.is_empty() {
            if !self.drain_worklist(true, &mut evals_this_cycle, eval_cap) {
                return false;
            }
            // Honest pass: re-evaluate the optimistic controllers with the
            // real equations; any withdrawn assumption ripples from there.
            for index in 0..self.optimistic_nodes.len() {
                let node = self.optimistic_nodes[index] as usize;
                self.worklist.push(node, self.rank[node] as usize);
            }
        }
        self.drain_worklist(false, &mut evals_this_cycle, eval_cap)
    }

    /// One stabilisation loop of the reference engine: evaluate every
    /// controller in node order until a full sweep changes nothing.
    fn sweep_until_stable(&mut self, optimistic: bool, budget: usize, sweeps: &mut usize) -> bool {
        while *sweeps < budget {
            *sweeps += 1;
            self.settle_iterations += 1;
            let mut changed = false;
            // Track which controllers changed signals this sweep: if the
            // budget runs out, the last sweep's changers are the
            // oscillation witness.
            self.oscillating.clear();
            for node in 0..self.controllers.len() {
                self.dirty.clear();
                let (inputs, outputs) = &self.node_ports[node];
                let mut io = NodeIo::tracked(
                    &mut self.channels,
                    inputs,
                    outputs,
                    &self.channel_widths,
                    &mut self.dirty,
                );
                if optimistic {
                    self.controllers[node].eval_optimistic(&mut io);
                } else {
                    self.controllers[node].eval(&mut io);
                }
                self.controller_evals += 1;
                if !self.dirty.is_empty() {
                    changed = true;
                    self.oscillating.push(node as u32);
                }
            }
            if !changed {
                return true;
            }
        }
        false
    }

    /// Compiled settle: run the lowered micro-op plan (see
    /// [`crate::compiled`]) — straight-line prefix once, trailing segment by
    /// budget-capped sweeps. Netlists that could not be planned (optimistic
    /// controllers present) settle event-driven instead; the strategy is
    /// then an alias with identical results. Returns `false` when the
    /// trailing segment fails to stabilise (combinational loop).
    fn settle_compiled(&mut self) -> bool {
        let Some(mut plan) = self.compiled.take() else {
            return self.settle_event_driven();
        };
        let budget = self.settle_budget();
        let mut ctx = SettleCtx {
            channels: &mut self.channels,
            controllers: &self.controllers,
            node_ports: &self.node_ports,
            channel_widths: &self.channel_widths,
            dirty: &mut self.dirty,
            oscillating: &mut self.oscillating,
            budget,
            settle_iterations: &mut self.settle_iterations,
            controller_evals: &mut self.controller_evals,
        };
        let settled = plan.settle(&mut ctx);
        self.compiled = Some(plan);
        settled
    }

    /// Reference settle: Jacobi iteration in node order (the pre-worklist
    /// engine behaviour), with the same optimistic seeding pass as the
    /// event-driven engine when lazy forks are present — node-order sweeps
    /// from the cleared state would otherwise settle reconvergent lazy
    /// forks into the dead fixpoint whenever a join precedes its fork in
    /// node order, diverging from the worklist engine. Returns `false` when
    /// the sweep budget is exhausted.
    fn settle_full_sweep(&mut self) -> bool {
        let budget = self.settle_budget();
        let mut sweeps = 0usize;
        if !self.optimistic_nodes.is_empty() && !self.sweep_until_stable(true, budget, &mut sweeps)
        {
            return false;
        }
        self.sweep_until_stable(false, budget, &mut sweeps)
    }

    /// Simulates one clock cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalLoop`] when the control signals fail
    /// to settle.
    pub fn step(&mut self) -> Result<(), SimError> {
        // Combinational phase: clear, then drive to a fixed point.
        for channel in &mut self.channels {
            *channel = ChannelState::default();
        }
        let settled = match self.config.settle {
            SettleStrategy::EventDriven => self.settle_event_driven(),
            SettleStrategy::FullSweep => self.settle_full_sweep(),
            SettleStrategy::Compiled => self.settle_compiled(),
        };
        if !settled {
            return Err(SimError::CombinationalLoop {
                cycle: self.cycle,
                witness: self.oscillation_witness(),
            });
        }

        // Fault injection: perturb the settled signals before anything
        // observes them — the trace records the corrupted wire, and the
        // clock edge below commits both endpoints on the same corrupted
        // tuple, exactly like a flipped wire in hardware.
        if let Some(injector) = &mut self.injector {
            injector.apply(self.cycle, &mut self.channels);
        }

        if self.config.record_trace {
            self.trace.record(&self.channels);
        }

        // Clock edge: commit every controller on the settled signals.
        for (index, controller) in self.controllers.iter_mut().enumerate() {
            let (inputs, outputs) = &self.node_ports[index];
            let io = NodeIo::new(&mut self.channels, inputs, outputs);
            controller.commit(&io);
        }
        self.cycle += 1;
        Ok(())
    }

    /// One cycle driven by an **external settle function**
    /// ([`ExternalSettleFn`]) — the
    /// straight-line pass emitted by [`crate::codegen::emit_settle_fn`]. The
    /// function replaces the clear + settle phase (it clears the channels
    /// itself); the rest of the cycle — fault injection, trace recording,
    /// the commit clock edge — is exactly [`Simulation::step`]. Emitted
    /// functions are straight-line by construction, so there is no
    /// combinational-loop error path.
    pub(crate) fn step_with_external_settle(&mut self, settle: &mut ExternalSettleFn<'_>) {
        settle(&mut self.channels, &self.controllers);
        if let Some(injector) = &mut self.injector {
            injector.apply(self.cycle, &mut self.channels);
        }
        if self.config.record_trace {
            self.trace.record(&self.channels);
        }
        for (index, controller) in self.controllers.iter_mut().enumerate() {
            let (inputs, outputs) = &self.node_ports[index];
            let io = NodeIo::new(&mut self.channels, inputs, outputs);
            controller.commit(&io);
        }
        self.cycle += 1;
    }

    /// The lowered settle plan, when the compiled strategy is active and the
    /// netlist could be planned (codegen introspection).
    pub(crate) fn compiled_plan(&self) -> Option<&CompiledPlan> {
        self.compiled.as_deref()
    }

    /// Dense `(input, output)` channel indices per controller (codegen).
    pub(crate) fn node_ports_table(&self) -> &[(Vec<usize>, Vec<usize>)] {
        &self.node_ports
    }

    /// Declared width per dense channel index (codegen).
    pub(crate) fn channel_widths_table(&self) -> &[u8] {
        &self.channel_widths
    }

    /// Builds the [`OscillationWitness`] from the controllers collected by
    /// the failing settle pass and the channels of the final evaluation.
    fn oscillation_witness(&self) -> OscillationWitness {
        let mut nodes: Vec<(NodeId, &'static str)> = self
            .oscillating
            .iter()
            .map(|&node| (self.node_ids[node as usize], self.node_kinds[node as usize]))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let mut channels: Vec<ChannelId> =
            self.dirty.iter().map(|&channel| self.channel_ids[channel]).collect();
        channels.sort_unstable();
        channels.dedup();
        OscillationWitness { nodes, channels }
    }

    /// Simulates `cycles` clock cycles and returns the accumulated report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalLoop`] when the control signals fail
    /// to settle in some cycle.
    pub fn run(&mut self, cycles: u64) -> Result<SimulationReport, SimError> {
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(self.report())
    }

    /// [`Simulation::run`] with a wall-clock watchdog: when `deadline`
    /// passes before all `cycles` are simulated, the run stops early and
    /// returns the **partial** report with
    /// [`SimulationReport::deadline_exceeded`] set, instead of hanging a
    /// harness on a pathological case. The deadline is polled every 64
    /// cycles, so overshoot is bounded by the cost of 64 cycles.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_with_deadline(
        &mut self,
        cycles: u64,
        deadline: Instant,
    ) -> Result<SimulationReport, SimError> {
        self.run_monitored(cycles, Some(deadline), &mut [])
    }

    /// Runs `cycles` cycles under a set of streaming [`CycleMonitor`]s,
    /// optionally bounded by a wall-clock `deadline`.
    ///
    /// After every simulated cycle each monitor observes the settled
    /// (post-fault-injection) channel signals, in the dense
    /// `live_channels()` order shared with the trace; the first violation
    /// aborts the run **fail-fast** as [`SimError::MonitorTripped`], with
    /// the violation carrying its `(channel, cycle, invariant)` locus. When
    /// the full cycle count completes, every monitor's
    /// [`CycleMonitor::finish`] runs for end-of-run obligations. A deadline
    /// cut-off returns the partial report with
    /// [`SimulationReport::deadline_exceeded`] set and does **not** run the
    /// finish checks (the run is incomplete, not wrong).
    ///
    /// # Errors
    ///
    /// [`SimError::MonitorTripped`] on the first monitor violation, plus
    /// the conditions of [`Simulation::run`].
    pub fn run_monitored(
        &mut self,
        cycles: u64,
        deadline: Option<Instant>,
        monitors: &mut [Box<dyn CycleMonitor>],
    ) -> Result<SimulationReport, SimError> {
        let target = self.cycle.saturating_add(cycles);
        while self.cycle < target {
            if let Some(deadline) = deadline {
                if self.cycle & 0x3F == 0 && Instant::now() >= deadline {
                    self.deadline_exceeded = true;
                    return Ok(self.report());
                }
            }
            self.step()?;
            let observed_cycle = self.cycle - 1;
            for monitor in monitors.iter_mut() {
                monitor
                    .observe(observed_cycle, &self.channels)
                    .map_err(SimError::MonitorTripped)?;
            }
        }
        for monitor in monitors.iter_mut() {
            monitor.finish(self.cycle).map_err(SimError::MonitorTripped)?;
        }
        Ok(self.report())
    }

    /// The report accumulated over all cycles simulated so far.
    pub fn report(&self) -> SimulationReport {
        let mut report = SimulationReport {
            cycles: self.cycle,
            settle_iterations: self.settle_iterations,
            controller_evals: self.controller_evals,
            trace_bytes: self.trace.heap_bytes() as u64,
            faults: self.injector.as_ref().map(|i| i.stats().clone()).unwrap_or_default(),
            deadline_exceeded: self.deadline_exceeded,
            ..SimulationReport::default()
        };
        for (index, controller) in self.controllers.iter().enumerate() {
            let node = self.node_ids[index];
            let stats = controller.stats();
            report.node_stats.insert(node, stats);
            match self.node_kinds[index] {
                "sink" => {
                    if let Some(stream) = controller.transfer_stream() {
                        report.sink_streams.insert(node, stream.to_vec());
                    }
                }
                "source" => {
                    report.source_kills.insert(node, stats.killed_tokens);
                }
                "shared" => {
                    let (transfers_per_user, kills_per_user) =
                        controller.per_user_stats().unwrap_or_default();
                    report.shared_stats.insert(
                        node,
                        SharedModuleStats {
                            mispredictions: stats.mispredictions,
                            transfers_per_user,
                            kills_per_user,
                        },
                    );
                }
                "commit" => {
                    if let Some(lane_stats) = controller.commit_stats() {
                        report.commit_stats.insert(node, lane_stats);
                    }
                }
                _ => {}
            }
        }
        report
    }
}

/// Computes the static evaluation rank of every controller: a topological
/// order over the zero-delay control dependency graph.
///
/// There is an edge `a → b` for every channel between `a` and `b` whose
/// signals `b`'s `eval` observes (`reads_channels[b]`); controllers whose
/// `eval` reads nothing have no incoming edges and thereby cut every control
/// loop that crosses a registered boundary. Controllers caught in genuinely
/// combinational cycles are assigned one shared trailing rank — the worklist
/// still settles them by iteration (or hits the budget and reports the loop).
pub(crate) fn evaluation_ranks(
    node_count: usize,
    node_ports: &[(Vec<usize>, Vec<usize>)],
    channel_producer: &[u32],
    channel_consumer: &[u32],
    reads_channels: &[bool],
) -> Vec<u32> {
    // Successor lists and in-degrees of the dependency graph.
    let mut successors: Vec<Vec<u32>> = vec![Vec::new(); node_count];
    let mut in_degree: Vec<u32> = vec![0; node_count];
    let mut add_edge = |from: usize, to: usize, in_degree: &mut Vec<u32>| {
        if from != to {
            successors[from].push(to as u32);
            in_degree[to] += 1;
        }
    };
    for (node, (inputs, outputs)) in node_ports.iter().enumerate() {
        if !reads_channels[node] {
            continue;
        }
        // `node` observes all of its attached channels: the other endpoint of
        // each must be evaluated first.
        for &channel in inputs {
            add_edge(channel_producer[channel] as usize, node, &mut in_degree);
        }
        for &channel in outputs {
            add_edge(channel_consumer[channel] as usize, node, &mut in_degree);
        }
    }

    // Kahn's algorithm, longest-path ranks; node order keeps it deterministic.
    let mut rank = vec![0u32; node_count];
    let mut ready: std::collections::VecDeque<u32> =
        (0..node_count as u32).filter(|&n| in_degree[n as usize] == 0).collect();
    let mut processed = 0usize;
    let mut max_rank = 0u32;
    while let Some(node) = ready.pop_front() {
        processed += 1;
        max_rank = max_rank.max(rank[node as usize]);
        for &next in &successors[node as usize] {
            let next = next as usize;
            rank[next] = rank[next].max(rank[node as usize] + 1);
            in_degree[next] -= 1;
            if in_degree[next] == 0 {
                ready.push_back(next as u32);
            }
        }
    }
    if processed < node_count {
        // Combinational cycles: everything not topologically ordered shares
        // the trailing rank.
        let trailing = max_rank + 1;
        for (node, degree) in in_degree.iter().enumerate() {
            if *degree > 0 {
                rank[node] = trailing;
            }
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::kind::{BufferSpec, SinkSpec, SourceSpec};
    use elastic_core::{Op, Port};

    /// src -> inc -> EB -> sink
    fn pipeline() -> (Netlist, NodeId, NodeId) {
        let mut n = Netlist::new("pipeline");
        let src = n.add_source("src", SourceSpec::always());
        let inc = n.add_op("inc", Op::Inc);
        let eb = n.add_buffer("eb", BufferSpec::standard(0));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(inc, 0), 8).unwrap();
        n.connect(Port::output(inc, 0), Port::input(eb, 0), 8).unwrap();
        n.connect(Port::output(eb, 0), Port::input(sink, 0), 8).unwrap();
        (n, src, sink)
    }

    #[test]
    fn a_simple_pipeline_streams_one_token_per_cycle() {
        let (netlist, _src, sink) = pipeline();
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let report = sim.run(20).unwrap();
        // One buffer of latency: 19 transfers in 20 cycles.
        assert_eq!(report.sink_transfers(sink), 19);
        let values = report.sink_values(sink);
        assert_eq!(values[0..5], [1, 2, 3, 4, 5], "counter data incremented by the function");
    }

    #[test]
    fn invalid_netlists_are_rejected() {
        let mut n = Netlist::new("bad");
        n.add_source("src", SourceSpec::always());
        assert!(matches!(
            Simulation::new(&n, &SimConfig::default()),
            Err(SimError::InvalidNetlist(_))
        ));
    }

    #[test]
    fn combinational_loops_are_detected() {
        // inc -> inc2 -> back to inc: a control loop with no buffer.
        let mut n = Netlist::new("loop");
        let a = n.add_op("a", Op::Inc);
        let b = n.add_op("b", Op::Inc);
        n.connect(Port::output(a, 0), Port::input(b, 0), 8).unwrap();
        n.connect(Port::output(b, 0), Port::input(a, 0), 8).unwrap();
        let mut sim = Simulation::new(&n, &SimConfig::default()).unwrap();
        // The valid/stop signals oscillate? They actually settle (no token can
        // ever appear), so instead check a loop with a source feeding it is
        // caught or the run simply produces nothing. Accept either behaviour
        // but never a panic.
        match sim.run(5) {
            Ok(report) => assert_eq!(report.cycles, 5),
            Err(SimError::CombinationalLoop { .. }) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn self_loop_channels_match_the_full_sweep_oracle() {
        // A node feeding its own input passes validation; its data signal
        // oscillates (Inc of its own output), so both engines must report
        // the combinational loop rather than mis-simulate.
        let mut n = Netlist::new("self-loop");
        let f = n.add_op("f", Op::Inc);
        n.connect(Port::output(f, 0), Port::input(f, 0), 8).unwrap();
        for settle in
            [SettleStrategy::EventDriven, SettleStrategy::FullSweep, SettleStrategy::Compiled]
        {
            let config = SimConfig { settle, ..SimConfig::default() };
            let mut sim = Simulation::new(&n, &config).unwrap();
            match sim.run(3) {
                Err(SimError::CombinationalLoop { cycle: 0, witness }) => {
                    assert!(
                        witness.nodes.iter().any(|(node, kind)| *node == f && *kind == "function"),
                        "{settle:?} witness must name the oscillating node: {witness}"
                    );
                }
                other => panic!("{settle:?} must reject the self-loop, got {other:?}"),
            }
        }
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let (netlist, _src, _sink) = pipeline();
        let config = SimConfig { record_trace: false, ..SimConfig::default() };
        let mut sim = Simulation::new(&netlist, &config).unwrap();
        let report = sim.run(10).unwrap();
        assert!(sim.trace().is_empty());
        assert_eq!(report.trace_bytes, 0, "no recording, no trace memory");
        assert_eq!(sim.cycle(), 10);
    }

    #[test]
    fn reports_collect_per_node_statistics() {
        let (netlist, src, sink) = pipeline();
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let report = sim.run(10).unwrap();
        assert!(report.node_stats.contains_key(&src));
        assert!(report.node_stats.contains_key(&sink));
        assert_eq!(report.source_kills.get(&src), Some(&0));
        assert!(report.summary().contains("cycles"));
    }

    #[test]
    fn settle_budget_follows_the_documented_formula() {
        let (netlist, _src, _sink) = pipeline();
        let sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        // Three channels: 2·3 + 8.
        assert_eq!(sim.settle_budget(), 14);
        let sim = Simulation::new(
            &netlist,
            &SimConfig { max_settle_iterations: 5, ..SimConfig::default() },
        )
        .unwrap();
        assert_eq!(sim.settle_budget(), 5, "an explicit budget overrides the derived bound");
    }

    #[test]
    fn the_pipeline_settles_in_one_pass_per_cycle() {
        let (netlist, _src, _sink) = pipeline();
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let report = sim.run(10).unwrap();
        // Acyclic design, rank-ordered seeding: exactly one eval per
        // controller per cycle, no re-wakes.
        assert_eq!(report.controller_evals, 10 * 4);
        assert_eq!(report.settle_iterations, 10 * 4);
    }

    #[test]
    fn full_sweep_strategy_matches_the_event_driven_engine() {
        let (netlist, _src, sink) = pipeline();
        let mut event_driven = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let mut reference = Simulation::new(
            &netlist,
            &SimConfig { settle: SettleStrategy::FullSweep, ..SimConfig::default() },
        )
        .unwrap();
        let event_report = event_driven.run(25).unwrap();
        let reference_report = reference.run(25).unwrap();
        assert_eq!(event_driven.trace(), reference.trace());
        assert_eq!(event_report.sink_streams, reference_report.sink_streams);
        assert_eq!(event_report.node_stats, reference_report.node_stats);
        assert!(
            event_report.controller_evals < reference_report.controller_evals,
            "the worklist engine must evaluate strictly less: {} vs {}",
            event_report.controller_evals,
            reference_report.controller_evals
        );
        assert_eq!(
            report_transfers(&event_report, sink),
            report_transfers(&reference_report, sink)
        );
    }

    fn report_transfers(report: &SimulationReport, sink: NodeId) -> u64 {
        report.sink_transfers(sink)
    }

    #[test]
    fn compiled_strategy_matches_the_event_driven_engine() {
        let (netlist, _src, sink) = pipeline();
        let mut event_driven = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let mut compiled = Simulation::new(
            &netlist,
            &SimConfig { settle: SettleStrategy::Compiled, ..SimConfig::default() },
        )
        .unwrap();
        let event_report = event_driven.run(25).unwrap();
        let compiled_report = compiled.run(25).unwrap();
        assert_eq!(event_driven.trace(), compiled.trace());
        assert_eq!(event_report.sink_streams, compiled_report.sink_streams);
        assert_eq!(event_report.node_stats, compiled_report.node_stats);
        assert_eq!(report_transfers(&event_report, sink), report_transfers(&compiled_report, sink));
    }

    #[test]
    fn compiled_effort_counters_count_micro_ops_and_dynamic_evals() {
        // The documented compiled-counter semantics, pinned: the 4-node
        // pipeline (source, inc, standard buffer, sink) lowers to 5 micro-ops
        // — three dynamic evals for the registered controllers plus the
        // fused FnFwd/FnBwd pair — all in the straight-line prefix.
        let (netlist, _src, _sink) = pipeline();
        let mut sim = Simulation::new(
            &netlist,
            &SimConfig { settle: SettleStrategy::Compiled, ..SimConfig::default() },
        )
        .unwrap();
        let report = sim.run(10).unwrap();
        assert_eq!(report.settle_iterations, 10 * 5, "micro-op executions");
        assert_eq!(report.controller_evals, 10 * 3, "remaining dynamic evals");
    }

    #[test]
    fn compiled_reset_replays_bit_identically() {
        let (netlist, _src, _sink) = pipeline();
        let mut sim = Simulation::new(
            &netlist,
            &SimConfig { settle: SettleStrategy::Compiled, ..SimConfig::default() },
        )
        .unwrap();
        let first = sim.run(30).unwrap();
        let first_trace = sim.trace().clone();
        sim.reset();
        let second = sim.run(30).unwrap();
        assert_eq!(sim.trace(), &first_trace, "replay must be bit-identical");
        assert_eq!(second.sink_streams, first.sink_streams);
        assert_eq!(second.settle_iterations, first.settle_iterations);
    }

    #[test]
    fn reset_replays_bit_identically_without_rebuilding() {
        let (netlist, _src, sink) = pipeline();
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let first = sim.run(30).unwrap();
        let first_trace = sim.trace().clone();

        sim.reset();
        assert_eq!(sim.cycle(), 0);
        assert!(sim.trace().is_empty());

        let second = sim.run(30).unwrap();
        assert_eq!(sim.trace(), &first_trace, "replay must be bit-identical");
        assert_eq!(second.sink_streams, first.sink_streams);
        assert_eq!(second.node_stats, first.node_stats);
        assert_eq!(second.settle_iterations, first.settle_iterations);

        // And identical to a freshly built simulation.
        let mut fresh = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let fresh_report = fresh.run(30).unwrap();
        assert_eq!(fresh.trace(), &first_trace);
        assert_eq!(fresh_report.sink_transfers(sink), second.sink_transfers(sink));
    }

    #[test]
    fn sink_pattern_overrides_match_a_rebuilt_netlist() {
        use elastic_core::kind::BackpressurePattern;

        let (netlist, _src, sink) = pipeline();
        // Reference: rebuild the netlist with a stalling sink.
        let mut variant = netlist.clone();
        let pattern = BackpressurePattern::List(vec![true, false, true]);
        if let Some(node) = variant.node_mut(sink) {
            node.kind = elastic_core::NodeKind::Sink(SinkSpec { backpressure: pattern.clone() });
        }
        let mut rebuilt = Simulation::new(&variant, &SimConfig::default()).unwrap();
        let rebuilt_report = rebuilt.run(40).unwrap();

        // Same behaviour via reset_with_sink_patterns on the original build.
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        sim.run(13).unwrap(); // dirty the state first
        sim.reset_with_sink_patterns(&[(sink, pattern)]);
        let report = sim.run(40).unwrap();

        assert_eq!(sim.trace(), rebuilt.trace());
        assert_eq!(report.sink_streams, rebuilt_report.sink_streams);
        assert_eq!(report.node_stats, rebuilt_report.node_stats);
    }

    #[test]
    fn source_pattern_overrides_match_a_rebuilt_netlist() {
        use elastic_core::kind::{SourcePattern, SourceSpec};

        let (netlist, src, _sink) = pipeline();
        // Reference: rebuild the netlist with a paced source (same data).
        let mut variant = netlist.clone();
        let pattern = SourcePattern::Every(3);
        if let Some(node) = variant.node_mut(src) {
            node.kind = elastic_core::NodeKind::Source(SourceSpec {
                pattern: pattern.clone(),
                ..SourceSpec::default()
            });
        }
        let mut rebuilt = Simulation::new(&variant, &SimConfig::default()).unwrap();
        let rebuilt_report = rebuilt.run(40).unwrap();

        // Same behaviour via reset_with_source_patterns on the original build.
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        sim.run(9).unwrap(); // dirty the state first
        sim.reset_with_source_patterns(&[(src, pattern)]);
        let report = sim.run(40).unwrap();

        assert_eq!(sim.trace(), rebuilt.trace());
        assert_eq!(report.sink_streams, rebuilt_report.sink_streams);
        assert_eq!(report.node_stats, rebuilt_report.node_stats);
    }

    #[test]
    fn ranks_order_producers_before_combinational_consumers() {
        let (netlist, _src, _sink) = pipeline();
        let sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        // src, eb, sink are fully registered → rank 0; the function block
        // reads all of its channels → ranked after its neighbours.
        let function_rank = sim
            .node_kinds
            .iter()
            .zip(&sim.rank)
            .find(|(kind, _)| **kind == "function")
            .map(|(_, rank)| *rank)
            .unwrap();
        assert!(function_rank > 0);
        for (kind, rank) in sim.node_kinds.iter().zip(&sim.rank) {
            if *kind != "function" {
                assert_eq!(*rank, 0, "registered controller {kind} must seed at rank 0");
            }
        }
    }

    #[test]
    fn armed_faults_perturb_replay_deterministically_and_disarm_cleanly() {
        use crate::faults::{FaultKind, FaultPlan, FaultSpec};

        let (netlist, _src, sink) = pipeline();
        let sink_channel = netlist.channel_into(Port::input(sink, 0)).unwrap().id;
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let clean = sim.run(20).unwrap();
        assert_eq!(clean.faults.armed, 0);

        // Drop the tokens reaching the sink for a 4-cycle window.
        sim.reset();
        sim.arm_faults(&FaultPlan::single(FaultSpec {
            channel: sink_channel,
            kind: FaultKind::DropToken,
            from_cycle: 5,
            duration: 4,
        }))
        .unwrap();
        let faulted = sim.run(20).unwrap();
        assert_eq!(faulted.faults.armed, 1);
        assert_eq!(faulted.faults.total_events(), 4, "one perturbation per window cycle");
        assert_eq!(
            faulted.sink_transfers(sink),
            clean.sink_transfers(sink) - 4,
            "dropped tokens never reach the sink"
        );
        let faulted_trace = sim.trace().clone();

        // The plan survives a reset and replays bit-identically.
        sim.reset();
        let replay = sim.run(20).unwrap();
        assert_eq!(sim.trace(), &faulted_trace);
        assert_eq!(replay.faults, faulted.faults);
        assert_eq!(replay.sink_streams, faulted.sink_streams);

        // Disarming restores the clean behaviour.
        sim.disarm_faults();
        sim.reset();
        let restored = sim.run(20).unwrap();
        assert_eq!(restored.sink_streams, clean.sink_streams);
        assert_eq!(restored.faults.armed, 0);
    }

    #[test]
    fn fault_plans_naming_unknown_channels_are_rejected() {
        use crate::faults::{FaultKind, FaultPlan, FaultSpec};
        use elastic_core::ChannelId;

        let (netlist, _src, _sink) = pipeline();
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let bogus = ChannelId::new(10_000);
        let result = sim.arm_faults(&FaultPlan::single(FaultSpec {
            channel: bogus,
            kind: FaultKind::StallStorm,
            from_cycle: 0,
            duration: 1,
        }));
        assert!(matches!(result, Err(SimError::UnknownChannel { channel }) if channel == bogus));
    }

    #[test]
    fn an_expired_deadline_yields_a_flagged_partial_report() {
        let (netlist, _src, _sink) = pipeline();
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        // A deadline in the past: the watchdog fires on its first poll.
        let report = sim
            .run_with_deadline(1_000_000, Instant::now() - std::time::Duration::from_millis(1))
            .unwrap();
        assert!(report.deadline_exceeded);
        assert!(report.cycles < 1_000_000, "the run was cut short");

        // A generous deadline lets the run complete, unflagged.
        sim.reset();
        let report =
            sim.run_with_deadline(50, Instant::now() + std::time::Duration::from_secs(60)).unwrap();
        assert!(!report.deadline_exceeded);
        assert_eq!(report.cycles, 50);
    }

    #[test]
    fn monitors_observe_every_cycle_and_trip_fail_fast() {
        use crate::monitor::{CycleMonitor, MonitorViolation};

        /// Counts cycles; trips when a sink-side transfer count is reached.
        #[derive(Debug)]
        struct TripAfter {
            observed: u64,
            trip_at: u64,
        }
        impl CycleMonitor for TripAfter {
            fn name(&self) -> &'static str {
                "trip-after"
            }
            fn observe(
                &mut self,
                cycle: u64,
                _channels: &[ChannelState],
            ) -> Result<(), MonitorViolation> {
                self.observed += 1;
                if cycle == self.trip_at {
                    return Err(MonitorViolation {
                        monitor: "trip-after",
                        invariant: "TestInvariant",
                        channel: None,
                        cycle,
                        details: "synthetic trip".into(),
                    });
                }
                Ok(())
            }
            fn reset(&mut self) {
                self.observed = 0;
            }
        }

        let (netlist, _src, _sink) = pipeline();
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let mut monitors: Vec<Box<dyn CycleMonitor>> =
            vec![Box::new(TripAfter { observed: 0, trip_at: 7 })];
        let error = sim.run_monitored(50, None, &mut monitors).unwrap_err();
        match error {
            SimError::MonitorTripped(violation) => {
                assert_eq!(violation.cycle, 7);
                assert_eq!(violation.invariant, "TestInvariant");
            }
            other => panic!("expected a monitor trip, got {other}"),
        }
        assert_eq!(sim.cycle(), 8, "fail-fast: the run stopped right after the trip");
    }
}
