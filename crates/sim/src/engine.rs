//! The simulation engine: two-phase (settle / commit) clock-cycle execution.
//!
//! Every cycle the engine:
//!
//! 1. clears all channel signals,
//! 2. repeatedly evaluates every controller until the channel signals stop
//!    changing (the combinational phase of the SELF controllers — valids,
//!    stops and anti-token signals may traverse several nodes within one
//!    cycle, e.g. through zero-backward-latency buffers),
//! 3. records the settled signals in the trace, and
//! 4. commits all sequential state simultaneously (the clock edge).
//!
//! If the signals fail to settle, the netlist contains a combinational
//! control loop (e.g. a cycle with no elastic buffer on it) and the engine
//! reports [`SimError::CombinationalLoop`] rather than mis-simulating.

use std::collections::BTreeMap;
use std::fmt;

use elastic_core::{CoreError, Netlist, NodeId, Scheduler};

use crate::controller::{Controller, NodeIo};
use crate::controllers::build_controller;
use crate::metrics::{SharedModuleStats, SimulationReport};
use crate::signal::ChannelState;
use crate::trace::Trace;

/// Configuration of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Record a full per-channel trace (needed for Table-1 style output and
    /// for the property checkers of `elastic-verify`).
    pub record_trace: bool,
    /// Upper bound on combinational settle iterations per cycle; the default
    /// (0) lets the engine derive a bound from the netlist size.
    pub max_settle_iterations: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { record_trace: true, max_settle_iterations: 0 }
    }
}

/// Errors raised while building or running a simulation.
#[derive(Debug)]
pub enum SimError {
    /// The netlist failed structural validation.
    InvalidNetlist(CoreError),
    /// A node kind/configuration has no controller model.
    UnsupportedNode {
        /// The offending node.
        node: NodeId,
        /// Why it cannot be simulated.
        reason: String,
    },
    /// The control signals did not reach a fixed point within the iteration
    /// budget — the netlist has a combinational control loop.
    CombinationalLoop {
        /// The cycle in which settling failed.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidNetlist(error) => write!(f, "netlist is not simulable: {error}"),
            SimError::UnsupportedNode { node, reason } => {
                write!(f, "node {node} cannot be simulated: {reason}")
            }
            SimError::CombinationalLoop { cycle } => write!(
                f,
                "control signals did not settle in cycle {cycle}: the netlist contains a \
                 combinational loop (insert an elastic buffer on the loop)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<CoreError> for SimError {
    fn from(error: CoreError) -> Self {
        SimError::InvalidNetlist(error)
    }
}

/// A cycle-accurate simulation of one elastic netlist.
pub struct Simulation {
    config: SimConfig,
    controllers: Vec<Box<dyn Controller>>,
    node_ids: Vec<NodeId>,
    node_kinds: Vec<&'static str>,
    node_ports: Vec<(Vec<usize>, Vec<usize>)>,
    channels: Vec<ChannelState>,
    trace: Trace,
    cycle: u64,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.controllers.len())
            .field("channels", &self.channels.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Simulation {
    /// Builds a simulation of `netlist` with the schedulers named in the
    /// netlist itself.
    ///
    /// # Errors
    ///
    /// Fails when the netlist does not validate or contains a node the
    /// simulator cannot model.
    pub fn new(netlist: &Netlist, config: &SimConfig) -> Result<Self, SimError> {
        Self::with_schedulers(netlist, config, Vec::new())
    }

    /// Builds a simulation, overriding the scheduler of selected shared
    /// modules (used to sweep prediction policies without rebuilding the
    /// netlist).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::new`].
    pub fn with_schedulers(
        netlist: &Netlist,
        config: &SimConfig,
        mut scheduler_overrides: Vec<(NodeId, Box<dyn Scheduler>)>,
    ) -> Result<Self, SimError> {
        netlist.validate()?;

        // Dense channel indexing shared with the trace.
        let mut channel_index = BTreeMap::new();
        for (index, channel) in netlist.live_channels().enumerate() {
            channel_index.insert(channel.id, index);
        }

        let mut controllers = Vec::new();
        let mut node_ids = Vec::new();
        let mut node_kinds = Vec::new();
        let mut node_ports = Vec::new();
        for node in netlist.live_nodes() {
            let override_position =
                scheduler_overrides.iter().position(|(id, _)| *id == node.id);
            let scheduler = override_position.map(|pos| scheduler_overrides.swap_remove(pos).1);
            let controller = build_controller(netlist, node, scheduler)?;

            let inputs: Vec<usize> = (0..node.input_count())
                .map(|port| {
                    netlist
                        .channel_into(elastic_core::Port::input(node.id, port))
                        .map(|c| channel_index[&c.id])
                        .expect("validated netlists have fully connected ports")
                })
                .collect();
            let outputs: Vec<usize> = (0..node.output_count())
                .map(|port| {
                    netlist
                        .channel_from(elastic_core::Port::output(node.id, port))
                        .map(|c| channel_index[&c.id])
                        .expect("validated netlists have fully connected ports")
                })
                .collect();

            controllers.push(controller);
            node_ids.push(node.id);
            node_kinds.push(node.kind.kind_name());
            node_ports.push((inputs, outputs));
        }

        Ok(Simulation {
            config: config.clone(),
            controllers,
            node_ids,
            node_kinds,
            node_ports,
            channels: vec![ChannelState::default(); channel_index.len()],
            trace: Trace::new(netlist),
            cycle: 0,
        })
    }

    /// Number of cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The recorded trace (empty unless [`SimConfig::record_trace`] is set).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn settle_budget(&self) -> usize {
        if self.config.max_settle_iterations > 0 {
            self.config.max_settle_iterations
        } else {
            2 * self.channels.len() + 8
        }
    }

    /// Simulates one clock cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalLoop`] when the control signals fail
    /// to settle.
    pub fn step(&mut self) -> Result<(), SimError> {
        // Combinational phase: clear and iterate to a fixed point.
        for channel in &mut self.channels {
            *channel = ChannelState::default();
        }
        let budget = self.settle_budget();
        let mut settled = false;
        for _ in 0..budget {
            let before = self.channels.clone();
            for (index, controller) in self.controllers.iter().enumerate() {
                let (inputs, outputs) = &self.node_ports[index];
                let mut io = NodeIo::new(&mut self.channels, inputs, outputs);
                controller.eval(&mut io);
            }
            if before == self.channels {
                settled = true;
                break;
            }
        }
        if !settled {
            return Err(SimError::CombinationalLoop { cycle: self.cycle });
        }

        if self.config.record_trace {
            self.trace.record(&self.channels);
        }

        // Clock edge: commit every controller on the settled signals.
        for (index, controller) in self.controllers.iter_mut().enumerate() {
            let (inputs, outputs) = &self.node_ports[index];
            let io = NodeIo::new(&mut self.channels, inputs, outputs);
            controller.commit(&io);
        }
        self.cycle += 1;
        Ok(())
    }

    /// Simulates `cycles` clock cycles and returns the accumulated report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalLoop`] when the control signals fail
    /// to settle in some cycle.
    pub fn run(&mut self, cycles: u64) -> Result<SimulationReport, SimError> {
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(self.report())
    }

    /// The report accumulated over all cycles simulated so far.
    pub fn report(&self) -> SimulationReport {
        let mut report = SimulationReport { cycles: self.cycle, ..SimulationReport::default() };
        for (index, controller) in self.controllers.iter().enumerate() {
            let node = self.node_ids[index];
            let stats = controller.stats();
            report.node_stats.insert(node, stats);
            match self.node_kinds[index] {
                "sink" => {
                    if let Some(stream) = controller.transfer_stream() {
                        report.sink_streams.insert(node, stream.to_vec());
                    }
                }
                "source" => {
                    report.source_kills.insert(node, stats.killed_tokens);
                }
                "shared" => {
                    let (transfers_per_user, kills_per_user) =
                        controller.per_user_stats().unwrap_or_default();
                    report.shared_stats.insert(
                        node,
                        SharedModuleStats {
                            mispredictions: stats.mispredictions,
                            transfers_per_user,
                            kills_per_user,
                        },
                    );
                }
                _ => {}
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::kind::{BufferSpec, SinkSpec, SourceSpec};
    use elastic_core::{Op, Port};

    /// src -> inc -> EB -> sink
    fn pipeline() -> (Netlist, NodeId, NodeId) {
        let mut n = Netlist::new("pipeline");
        let src = n.add_source("src", SourceSpec::always());
        let inc = n.add_op("inc", Op::Inc);
        let eb = n.add_buffer("eb", BufferSpec::standard(0));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(inc, 0), 8).unwrap();
        n.connect(Port::output(inc, 0), Port::input(eb, 0), 8).unwrap();
        n.connect(Port::output(eb, 0), Port::input(sink, 0), 8).unwrap();
        (n, src, sink)
    }

    #[test]
    fn a_simple_pipeline_streams_one_token_per_cycle() {
        let (netlist, _src, sink) = pipeline();
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let report = sim.run(20).unwrap();
        // One buffer of latency: 19 transfers in 20 cycles.
        assert_eq!(report.sink_transfers(sink), 19);
        let values = report.sink_values(sink);
        assert_eq!(values[0..5], [1, 2, 3, 4, 5], "counter data incremented by the function");
    }

    #[test]
    fn invalid_netlists_are_rejected() {
        let mut n = Netlist::new("bad");
        n.add_source("src", SourceSpec::always());
        assert!(matches!(
            Simulation::new(&n, &SimConfig::default()),
            Err(SimError::InvalidNetlist(_))
        ));
    }

    #[test]
    fn combinational_loops_are_detected() {
        // inc -> inc2 -> back to inc: a control loop with no buffer.
        let mut n = Netlist::new("loop");
        let a = n.add_op("a", Op::Inc);
        let b = n.add_op("b", Op::Inc);
        n.connect(Port::output(a, 0), Port::input(b, 0), 8).unwrap();
        n.connect(Port::output(b, 0), Port::input(a, 0), 8).unwrap();
        let mut sim = Simulation::new(&n, &SimConfig::default()).unwrap();
        // The valid/stop signals oscillate? They actually settle (no token can
        // ever appear), so instead check a loop with a source feeding it is
        // caught or the run simply produces nothing. Accept either behaviour
        // but never a panic.
        match sim.run(5) {
            Ok(report) => assert_eq!(report.cycles, 5),
            Err(SimError::CombinationalLoop { .. }) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let (netlist, _src, _sink) = pipeline();
        let config = SimConfig { record_trace: false, ..SimConfig::default() };
        let mut sim = Simulation::new(&netlist, &config).unwrap();
        sim.run(10).unwrap();
        assert!(sim.trace().is_empty());
        assert_eq!(sim.cycle(), 10);
    }

    #[test]
    fn reports_collect_per_node_statistics() {
        let (netlist, src, sink) = pipeline();
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let report = sim.run(10).unwrap();
        assert!(report.node_stats.contains_key(&src));
        assert!(report.node_stats.contains_key(&sink));
        assert_eq!(report.source_kills.get(&src), Some(&0));
        assert!(report.summary().contains("cycles"));
    }
}
