//! Seeded, replayable signal-layer fault injection.
//!
//! The paper's correctness story — wrong-path tokens are retracted, the SELF
//! handshake invariants hold, any leads-to-compliant scheduler is safe — is
//! only credible if the checkers of `elastic-verify` demonstrably *fire* on
//! broken hardware. This module provides the broken hardware: parameterized
//! faults injected directly at the channel-signal layer, per channel and per
//! cycle window, fully deterministic and replayable from a [`FaultPlan`].
//!
//! A fault perturbs the **settled** signals of a cycle, after the
//! combinational fixpoint and before the trace is recorded and the clock edge
//! commits — exactly the observable effect of a flipped wire between the
//! controller outputs and the registers: both endpoints of the channel see
//! the same corrupted tuple, the trace records what was really on the wire,
//! and the sequential state latches it.
//!
//! The fault classes mirror the ways a SELF implementation can rot:
//!
//! * [`FaultKind::StuckValid`] / [`FaultKind::StuckStop`] — stuck-at faults
//!   on the forward handshake wires (`V+`, `S+`);
//! * [`FaultKind::DropToken`] — a token in flight disappears (`V+` forced
//!   low while the producer offers);
//! * [`FaultKind::DuplicateToken`] — a spurious token appears, replaying the
//!   last valid data word seen on the wire;
//! * [`FaultKind::BitFlip`] — the data word is XOR-ed with a mask while a
//!   token is offered (control plane intact, payload corrupted);
//! * [`FaultKind::StallStorm`] — a transient burst of back-pressure (`S+`
//!   forced high for a bounded window), the fault the paper's elastic
//!   designs must absorb bit-identically.
//!
//! Scheduler-level chaos — byzantine grants — is modelled separately by
//! [`ByzantineScheduler`], which implements [`elastic_core::Scheduler`] with
//! seeded, feedback-ignoring predictions and plugs into
//! [`crate::Simulation::reset_with_schedulers`].

use std::collections::BTreeMap;
use std::fmt;

use elastic_core::{ChannelId, Scheduler, SharedFeedback};

use crate::signal::ChannelState;

/// One class of signal-layer fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `V+` stuck at `level` for the whole fault window.
    StuckValid {
        /// The level the wire is stuck at.
        level: bool,
    },
    /// `S+` stuck at `level` for the whole fault window.
    StuckStop {
        /// The level the wire is stuck at.
        level: bool,
    },
    /// Tokens offered during the window vanish (`V+` forced low).
    DropToken,
    /// A spurious token appears during the window when the producer is
    /// idle, replaying the last valid data word observed on the wire.
    DuplicateToken,
    /// The data word is XOR-ed with `mask` (truncated to the channel width)
    /// whenever a token is offered during the window.
    BitFlip {
        /// Bits to flip in the data word.
        mask: u64,
    },
    /// Transient back-pressure burst: `S+` forced high for the window.
    StallStorm,
}

impl FaultKind {
    /// Short stable name of the fault class (used as the statistics key and
    /// in campaign reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::StuckValid { .. } => "stuck-valid",
            FaultKind::StuckStop { .. } => "stuck-stop",
            FaultKind::DropToken => "drop-token",
            FaultKind::DuplicateToken => "duplicate-token",
            FaultKind::BitFlip { .. } => "bit-flip",
            FaultKind::StallStorm => "stall-storm",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StuckValid { level } => write!(f, "stuck-valid@{}", u8::from(*level)),
            FaultKind::StuckStop { level } => write!(f, "stuck-stop@{}", u8::from(*level)),
            FaultKind::BitFlip { mask } => write!(f, "bit-flip(mask={mask:#x})"),
            other => f.write_str(other.name()),
        }
    }
}

/// One parameterized fault: a class, a target channel and a cycle window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The channel whose signals are perturbed.
    pub channel: ChannelId,
    /// What is done to the signals.
    pub kind: FaultKind,
    /// First cycle (inclusive) in which the fault is active.
    pub from_cycle: u64,
    /// Number of cycles the fault stays active; `u64::MAX` means permanent.
    pub duration: u64,
}

impl FaultSpec {
    /// First cycle (exclusive) after the fault window, saturating for
    /// permanent faults.
    pub fn until_cycle(&self) -> u64 {
        self.from_cycle.saturating_add(self.duration)
    }

    /// `true` when the fault is active in `cycle`.
    pub fn active(&self, cycle: u64) -> bool {
        cycle >= self.from_cycle && cycle < self.until_cycle()
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.duration == u64::MAX {
            write!(
                f,
                "{} on {} from cycle {} (permanent)",
                self.kind, self.channel, self.from_cycle
            )
        } else {
            write!(
                f,
                "{} on {} during cycles {}..{}",
                self.kind,
                self.channel,
                self.from_cycle,
                self.until_cycle()
            )
        }
    }
}

/// A replayable set of faults, armed on a simulation via
/// [`crate::Simulation::arm_faults`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The faults, applied in order each cycle.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan containing a single fault.
    pub fn single(fault: FaultSpec) -> Self {
        FaultPlan { faults: vec![fault] }
    }
}

/// Counters accumulated by the fault injector of one simulation run
/// (surfaced as [`crate::SimulationReport::faults`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Number of fault specs armed on the simulation.
    pub armed: u64,
    /// Cycles in which at least one fault actually changed a signal.
    pub perturbed_cycles: u64,
    /// Signal perturbations per fault class. A fault whose forced level
    /// matches what the wire already carried changes nothing and is not
    /// counted — a run with `events` empty was observationally fault-free
    /// (the injection was *vacuous*).
    pub events: BTreeMap<&'static str, u64>,
}

impl FaultStats {
    /// Total signal perturbations across all fault classes.
    pub fn total_events(&self) -> u64 {
        self.events.values().sum()
    }
}

/// A fault resolved against the dense channel indexing of one simulation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResolvedFault {
    pub(crate) channel: usize,
    pub(crate) width_mask: u64,
    pub(crate) spec: FaultSpec,
}

/// Applies an armed [`FaultPlan`] to the settled channel signals of each
/// cycle. Pure function of the cycle number and the signal history, so a
/// [`crate::Simulation::reset`] (which rewinds the injector) replays the
/// exact same perturbations.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    faults: Vec<ResolvedFault>,
    /// Last valid data word observed per dense channel (replayed by
    /// [`FaultKind::DuplicateToken`]).
    last_valid_data: Vec<u64>,
    stats: FaultStats,
}

impl FaultInjector {
    pub(crate) fn new(faults: Vec<ResolvedFault>, channel_count: usize) -> Self {
        let armed = faults.len() as u64;
        FaultInjector {
            faults,
            last_valid_data: vec![0; channel_count],
            stats: FaultStats { armed, ..FaultStats::default() },
        }
    }

    /// Rewinds the injector's replay memory and counters (the armed plan is
    /// kept), making a reset simulation replay bit-identically.
    pub(crate) fn rewind(&mut self) {
        self.last_valid_data.iter_mut().for_each(|slot| *slot = 0);
        self.stats = FaultStats { armed: self.stats.armed, ..FaultStats::default() };
    }

    pub(crate) fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Perturbs the settled signals of `cycle` in place.
    pub(crate) fn apply(&mut self, cycle: u64, channels: &mut [ChannelState]) {
        let mut perturbed = false;
        for fault in &self.faults {
            if !fault.spec.active(cycle) {
                continue;
            }
            let state = &mut channels[fault.channel];
            let before = *state;
            match fault.spec.kind {
                FaultKind::StuckValid { level } => state.forward_valid = level,
                FaultKind::StuckStop { level } => state.forward_stop = level,
                FaultKind::DropToken => state.forward_valid = false,
                FaultKind::DuplicateToken => {
                    if !state.forward_valid {
                        state.forward_valid = true;
                        state.data = self.last_valid_data[fault.channel];
                    }
                }
                FaultKind::BitFlip { mask } => {
                    if state.forward_valid {
                        state.data ^= mask & fault.width_mask;
                    }
                }
                FaultKind::StallStorm => state.forward_stop = true,
            }
            if *state != before {
                perturbed = true;
                *self.stats.events.entry(fault.spec.kind.name()).or_insert(0) += 1;
            }
        }
        if perturbed {
            self.stats.perturbed_cycles += 1;
        }
        // Replay memory tracks the wire as observed (post-fault): what a
        // physical latch snooping the channel would hold.
        for (slot, state) in self.last_valid_data.iter_mut().zip(channels.iter()) {
            if state.forward_valid {
                *slot = state.data;
            }
        }
    }
}

/// A chaotic, seeded prediction policy: every cycle it grants the shared
/// unit to a pseudo-random user, ignoring all feedback.
///
/// This is the byzantine end of the scheduler spectrum the paper argues
/// against having to trust: Section 4.1.1 only requires the *leads-to*
/// property, which the shared-module controller enforces itself through its
/// starvation override — so even these grants must leave the output streams
/// bit-identical. The sequence is a pure function of the seed
/// (splitmix64), so runs are replayable.
#[derive(Debug, Clone)]
pub struct ByzantineScheduler {
    users: usize,
    seed: u64,
    state: u64,
    current: usize,
}

impl ByzantineScheduler {
    /// A byzantine scheduler over `users` channels, driven by `seed`.
    pub fn new(users: usize, seed: u64) -> Self {
        let mut scheduler =
            ByzantineScheduler { users: users.max(1), seed, state: seed, current: 0 };
        scheduler.current = scheduler.next_grant();
        scheduler
    }

    fn next_grant(&mut self) -> usize {
        // splitmix64: tiny, well distributed, dependency-free.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if self.users <= 1 {
            return 0;
        }
        // Widening multiply (Lemire) instead of `z % users`: the modulo
        // over-weights the low residues whenever `users` does not divide
        // 2^64, while `(z * users) >> 64` maps the uniform word onto
        // `0..users` bias-free — and cannot panic on a degenerate count.
        ((z as u128 * self.users as u128) >> 64) as usize
    }
}

impl Scheduler for ByzantineScheduler {
    fn prediction(&self) -> usize {
        self.current
    }

    fn tick(&mut self, _feedback: &SharedFeedback) {
        self.current = self.next_grant();
    }

    fn reset(&mut self) {
        self.state = self.seed;
        self.current = self.next_grant();
    }

    fn name(&self) -> &str {
        "byzantine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_windows_are_half_open_and_saturate() {
        let fault = FaultSpec {
            channel: ChannelId::new(0),
            kind: FaultKind::StallStorm,
            from_cycle: 4,
            duration: 3,
        };
        assert!(!fault.active(3));
        assert!(fault.active(4));
        assert!(fault.active(6));
        assert!(!fault.active(7));

        let permanent = FaultSpec { duration: u64::MAX, ..fault };
        assert!(permanent.active(u64::MAX - 1));
        assert_eq!(permanent.until_cycle(), u64::MAX);
        assert!(permanent.to_string().contains("permanent"));
    }

    #[test]
    fn the_injector_counts_only_real_perturbations() {
        let spec = FaultSpec {
            channel: ChannelId::new(0),
            kind: FaultKind::StuckValid { level: true },
            from_cycle: 0,
            duration: u64::MAX,
        };
        let resolved = ResolvedFault { channel: 0, width_mask: u64::MAX, spec };
        let mut injector = FaultInjector::new(vec![resolved], 1);
        let mut already_valid = [ChannelState { forward_valid: true, ..ChannelState::default() }];
        injector.apply(0, &mut already_valid);
        assert_eq!(injector.stats().total_events(), 0, "forcing an already-high wire is vacuous");

        let mut idle = [ChannelState::default()];
        injector.apply(1, &mut idle);
        assert!(idle[0].forward_valid);
        assert_eq!(injector.stats().total_events(), 1);
        assert_eq!(injector.stats().perturbed_cycles, 1);

        injector.rewind();
        assert_eq!(injector.stats().total_events(), 0);
        assert_eq!(injector.stats().armed, 1, "the plan survives a rewind");
    }

    #[test]
    fn duplication_replays_the_last_wire_value() {
        let spec = FaultSpec {
            channel: ChannelId::new(0),
            kind: FaultKind::DuplicateToken,
            from_cycle: 1,
            duration: 1,
        };
        let resolved = ResolvedFault { channel: 0, width_mask: u64::MAX, spec };
        let mut injector = FaultInjector::new(vec![resolved], 1);
        let mut carrying =
            [ChannelState { forward_valid: true, data: 0x2A, ..ChannelState::default() }];
        injector.apply(0, &mut carrying);
        let mut idle = [ChannelState::default()];
        injector.apply(1, &mut idle);
        assert!(idle[0].forward_valid, "the window fabricates a token");
        assert_eq!(idle[0].data, 0x2A, "…replaying the last valid word");
    }

    #[test]
    fn bit_flips_respect_the_channel_width() {
        let spec = FaultSpec {
            channel: ChannelId::new(0),
            kind: FaultKind::BitFlip { mask: 0x0101 },
            from_cycle: 0,
            duration: 1,
        };
        let resolved = ResolvedFault { channel: 0, width_mask: 0xFF, spec };
        let mut injector = FaultInjector::new(vec![resolved], 1);
        let mut state = [ChannelState { forward_valid: true, data: 2, ..ChannelState::default() }];
        injector.apply(0, &mut state);
        assert_eq!(state[0].data, 3, "only in-width bits flip");
    }

    #[test]
    fn byzantine_schedulers_are_seeded_and_in_range() {
        let mut a = ByzantineScheduler::new(3, 7);
        let mut b = ByzantineScheduler::new(3, 7);
        let feedback = SharedFeedback::new(3);
        let grants: Vec<usize> = (0..64)
            .map(|_| {
                let grant = a.prediction();
                a.tick(&feedback);
                grant
            })
            .collect();
        assert!(grants.iter().all(|&g| g < 3));
        assert!(grants.windows(2).any(|w| w[0] != w[1]), "the grants must actually move");
        let replay: Vec<usize> = (0..64)
            .map(|_| {
                let grant = b.prediction();
                b.tick(&feedback);
                grant
            })
            .collect();
        assert_eq!(grants, replay, "same seed, same grant sequence");
        b.reset();
        assert_eq!(b.prediction(), grants[0], "reset rewinds to the first grant");
        assert_eq!(b.name(), "byzantine");
        // Pin the exact sequence: replayability claims in DESIGN.md and the
        // seeded fault-campaign expectations both ride on it.
        assert_eq!(&grants[..12], &[1, 0, 2, 1, 1, 0, 1, 0, 0, 1, 0, 2]);
    }

    #[test]
    fn byzantine_grant_selection_is_unbiased_and_total() {
        // Degenerate user counts never divide by zero and always grant 0.
        let feedback = SharedFeedback::new(1);
        for users in [0usize, 1] {
            let mut scheduler = ByzantineScheduler::new(users, 0xDEAD);
            for _ in 0..32 {
                assert_eq!(scheduler.prediction(), 0, "{users} user(s) always grant user 0");
                scheduler.tick(&feedback);
            }
        }

        // The widening multiply stays in range even for user counts where
        // `z % users` would visibly over-weight the low residues
        // (2^64 mod users is astronomically large here).
        let huge = (1usize << 63) + 3;
        let mut scheduler = ByzantineScheduler::new(huge, 9);
        for _ in 0..256 {
            assert!(scheduler.prediction() < huge);
            scheduler.tick(&feedback);
        }

        // Small user counts get each user's fair share: ±15% of uniform
        // over 3000 draws.
        let mut scheduler = ByzantineScheduler::new(3, 0xE1A5);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            counts[scheduler.prediction()] += 1;
            scheduler.tick(&feedback);
        }
        assert!(counts.iter().all(|&count| (850..=1150).contains(&count)), "skewed: {counts:?}");
    }
}
