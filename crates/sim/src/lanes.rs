//! 64-lane bit-parallel settle engine.
//!
//! The SELF protocol is two-rail control: one bit per rail per channel
//! (`V+`/`S+` forward, `V−`/`S−` backward). The scalar engine settles one
//! scenario at a time even though every handshake equation is pure boolean
//! logic. This module lifts the whole settle loop to `u64` **lane words**:
//! bit `ℓ` of every rail word belongs to scenario (lane) `ℓ`, so one
//! AND/OR/NOT word op advances 64 independent environments at once.
//!
//! Layout:
//!
//! * [`LaneSimulation`] mirrors [`crate::Simulation`] — same dense channel
//!   indexing, same topological ranks, same rank-bucketed worklist, same
//!   compare-and-set dirty tracking (a channel re-enters the worklist when
//!   *any* lane changed), same optimistic two-pass for lazy forks, and the
//!   same settle budget / oscillation witness when a combinational loop
//!   fails to settle.
//! * Rails are stored structure-of-arrays: `Vec<u64>` per rail, one word
//!   per channel. Data is a lane-major column per channel
//!   (`data[channel * LANES + lane]`) touched only by the ops that consume
//!   data (function evaluation, mux steering, buffered values).
//! * The hot SELF controllers (both EB variants, function/join, eager and
//!   lazy fork, lazy/early mux) have native branchless word
//!   implementations. Everything with heavyweight per-scenario state
//!   (source, sink, shared module, commit stage, variable-latency unit)
//!   runs through the `ScalarLanes` fallback: 64 scalar controllers evaluated
//!   per-lane behind the word-level compare-and-set boundary — which is
//!   also what gives every lane its own environment override and transfer
//!   stream for free.
//!
//! The correctness contract is **lane-0 bit-identity**: a lane simulation
//! whose lanes all see the same environment must produce, in every lane,
//! exactly the trace and report of the scalar `EventDriven` engine. The
//! `engine_equivalence` suite and the `ELASTIC_FUZZ_LANES` differential
//! fuzz leg pin this the same way the FullSweep oracle pinned the PR-1
//! engine swap.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use elastic_core::kind::{BackpressurePattern, SourcePattern};
use elastic_core::{BufferSpec, ForkSpec, FunctionSpec, MuxSpec, Netlist, Node, NodeId, NodeKind};

use crate::controller::{Controller, NodeIo, NodeStats};
use crate::controllers::build_controller;
use crate::engine::{evaluation_ranks, OscillationWitness, SimError, Worklist};
use crate::metrics::{SharedModuleStats, SimulationReport};
use crate::signal::ChannelState;
use crate::trace::Trace;

/// Number of scenarios advanced per word operation: the bit width of a lane
/// word.
pub const LANES: usize = 64;

/// A per-lane scheduler factory for
/// [`LaneSimulation::reset_with_schedulers`]: invoked once per lane to
/// build that lane's prediction policy (schedulers are stateful boxes, not
/// clonable, so lanes get fresh instances rather than copies).
pub type SchedulerFactory<'a> = dyn Fn(usize) -> Box<dyn elastic_core::Scheduler> + 'a;

const IN: usize = 0;
const OUT: usize = 0;
const SELECT: usize = 0;

/// Process-wide count of [`LaneSimulation`] constructions (see
/// [`LaneSimulation::constructions`]).
static LANE_CONSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Configuration of a [`LaneSimulation`].
#[derive(Debug, Clone)]
pub struct LaneConfig {
    /// Record one full signal trace **per lane** (64 traces). Costs a
    /// per-cycle transpose from lane words to [`ChannelState`] rows; switch
    /// it off for throughput sweeps.
    pub record_trace: bool,
    /// Settle budget override in full-sweep equivalents; `0` derives the
    /// same `2·channels + 8` bound as the scalar engine.
    pub max_settle_iterations: usize,
    /// Accumulate a per-channel lane-divergence map: bit `ℓ` of word `c`
    /// is set once lane `ℓ` ever differed from lane 0 on channel `c` (any
    /// rail or the data column). Costs a per-cycle scan; off by default.
    pub track_divergence: bool,
}

impl Default for LaneConfig {
    fn default() -> Self {
        LaneConfig { record_trace: true, max_settle_iterations: 0, track_divergence: false }
    }
}

/// Mask selecting the live bits of a channel of the given width.
#[inline]
fn width_mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width).wrapping_sub(1)
    }
}

/// Broadcasts bit 0 of `word` into every lane (all-ones when lane 0 is set).
#[inline]
fn spread_lane0(word: u64) -> u64 {
    (word & 1).wrapping_neg()
}

/// Calls `f` once per set bit of `word`, lowest lane first.
#[inline]
fn for_each_lane(mut word: u64, mut f: impl FnMut(usize)) {
    while word != 0 {
        let lane = word.trailing_zeros() as usize;
        f(lane);
        word &= word - 1;
    }
}

/// Structure-of-arrays signal store: one `u64` word per channel per rail
/// (bit `ℓ` = lane `ℓ`) plus a lane-major data column per channel.
#[derive(Debug)]
struct LaneChannels {
    forward_valid: Vec<u64>,
    forward_stop: Vec<u64>,
    backward_valid: Vec<u64>,
    backward_stop: Vec<u64>,
    /// `data[channel * LANES + lane]`.
    data: Vec<u64>,
}

impl LaneChannels {
    fn new(channel_count: usize) -> Self {
        LaneChannels {
            forward_valid: vec![0; channel_count],
            forward_stop: vec![0; channel_count],
            backward_valid: vec![0; channel_count],
            backward_stop: vec![0; channel_count],
            data: vec![0; channel_count * LANES],
        }
    }

    fn channel_count(&self) -> usize {
        self.forward_valid.len()
    }

    fn clear(&mut self) {
        self.forward_valid.fill(0);
        self.forward_stop.fill(0);
        self.backward_valid.fill(0);
        self.backward_stop.fill(0);
        self.data.fill(0);
    }

    /// One lane's [`ChannelState`] row for `channel` (trace transpose and
    /// the scalar-lane fallback read through this).
    fn lane_state(&self, channel: usize, lane: usize) -> ChannelState {
        let bit = 1u64 << lane;
        ChannelState {
            forward_valid: self.forward_valid[channel] & bit != 0,
            forward_stop: self.forward_stop[channel] & bit != 0,
            backward_valid: self.backward_valid[channel] & bit != 0,
            backward_stop: self.backward_stop[channel] & bit != 0,
            data: self.data[channel * LANES + lane],
        }
    }
}

/// Word-level controller I/O view: the lane analogue of
/// [`crate::controller::NodeIo`].
///
/// Reads return whole lane words (or data columns); writes are
/// compare-and-set — a write that changes **any** lane marks the channel
/// dirty, which is what re-enters its observers into the worklist. Data
/// writes mask every lane to the channel width, mirroring the scalar
/// engine's producer-side masking.
pub struct LaneIo<'a> {
    channels: &'a mut LaneChannels,
    input_channels: &'a [usize],
    output_channels: &'a [usize],
    channel_widths: &'a [u8],
    dirty: Option<&'a mut Vec<usize>>,
}

impl fmt::Debug for LaneIo<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaneIo")
            .field("inputs", &self.input_channels)
            .field("outputs", &self.output_channels)
            .finish()
    }
}

impl<'a> LaneIo<'a> {
    fn untracked(
        channels: &'a mut LaneChannels,
        input_channels: &'a [usize],
        output_channels: &'a [usize],
        channel_widths: &'a [u8],
    ) -> Self {
        LaneIo { channels, input_channels, output_channels, channel_widths, dirty: None }
    }

    fn tracked(
        channels: &'a mut LaneChannels,
        input_channels: &'a [usize],
        output_channels: &'a [usize],
        channel_widths: &'a [u8],
        dirty: &'a mut Vec<usize>,
    ) -> Self {
        LaneIo { channels, input_channels, output_channels, channel_widths, dirty: Some(dirty) }
    }

    /// Number of input ports.
    pub fn input_count(&self) -> usize {
        self.input_channels.len()
    }

    /// Number of output ports.
    pub fn output_count(&self) -> usize {
        self.output_channels.len()
    }

    fn input_channel(&self, input: usize) -> usize {
        self.input_channels[input]
    }

    fn output_channel(&self, output: usize) -> usize {
        self.output_channels[output]
    }

    /// Forward-valid word (`V+`) of input port `input`.
    pub fn input_forward_valid(&self, input: usize) -> u64 {
        self.channels.forward_valid[self.input_channel(input)]
    }

    /// Forward-stop word (`S+`) of input port `input`.
    pub fn input_forward_stop(&self, input: usize) -> u64 {
        self.channels.forward_stop[self.input_channel(input)]
    }

    /// Backward-valid word (`V−`) of input port `input`.
    pub fn input_backward_valid(&self, input: usize) -> u64 {
        self.channels.backward_valid[self.input_channel(input)]
    }

    /// Backward-stop word (`S−`) of input port `input`.
    pub fn input_backward_stop(&self, input: usize) -> u64 {
        self.channels.backward_stop[self.input_channel(input)]
    }

    /// Forward-valid word (`V+`) of output port `output`.
    pub fn output_forward_valid(&self, output: usize) -> u64 {
        self.channels.forward_valid[self.output_channel(output)]
    }

    /// Forward-stop word (`S+`) of output port `output`.
    pub fn output_forward_stop(&self, output: usize) -> u64 {
        self.channels.forward_stop[self.output_channel(output)]
    }

    /// Backward-valid word (`V−`) of output port `output`.
    pub fn output_backward_valid(&self, output: usize) -> u64 {
        self.channels.backward_valid[self.output_channel(output)]
    }

    /// Backward-stop word (`S−`) of output port `output`.
    pub fn output_backward_stop(&self, output: usize) -> u64 {
        self.channels.backward_stop[self.output_channel(output)]
    }

    /// Data column of input port `input`: one value per lane.
    pub fn input_data(&self, input: usize) -> &[u64] {
        let channel = self.input_channel(input);
        &self.channels.data[channel * LANES..][..LANES]
    }

    /// Sets the forward-stop word of input port `input`.
    pub fn set_input_stop(&mut self, input: usize, word: u64) {
        let channel = self.input_channel(input);
        if self.channels.forward_stop[channel] != word {
            self.channels.forward_stop[channel] = word;
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(channel);
            }
        }
    }

    /// Sets the backward-valid (kill) word of input port `input`.
    pub fn set_input_kill(&mut self, input: usize, word: u64) {
        let channel = self.input_channel(input);
        if self.channels.backward_valid[channel] != word {
            self.channels.backward_valid[channel] = word;
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(channel);
            }
        }
    }

    /// Sets the forward-valid word of output port `output`.
    pub fn set_output_valid(&mut self, output: usize, word: u64) {
        let channel = self.output_channel(output);
        if self.channels.forward_valid[channel] != word {
            self.channels.forward_valid[channel] = word;
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(channel);
            }
        }
    }

    /// Sets the backward-stop word of output port `output`.
    pub fn set_output_anti_stop(&mut self, output: usize, word: u64) {
        let channel = self.output_channel(output);
        if self.channels.backward_stop[channel] != word {
            self.channels.backward_stop[channel] = word;
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(channel);
            }
        }
    }

    /// Sets the data column of output port `output` from one value per
    /// lane, masked to the channel width.
    pub fn set_output_data(&mut self, output: usize, lanes: &[u64]) {
        debug_assert_eq!(lanes.len(), LANES);
        let channel = self.output_channel(output);
        let mask = width_mask(self.channel_widths.get(channel).copied().unwrap_or(64));
        let column = &mut self.channels.data[channel * LANES..][..LANES];
        let mut changed = false;
        for (slot, &value) in column.iter_mut().zip(lanes) {
            let value = value & mask;
            if *slot != value {
                *slot = value;
                changed = true;
            }
        }
        if changed {
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(channel);
            }
        }
    }

    /// Copies the data column of input `input` to output `output`
    /// (width-preserving controllers: forks, buffers passing data through),
    /// masked to the output channel width.
    pub fn copy_data(&mut self, input: usize, output: usize) {
        let src = self.input_channel(input);
        let dst = self.output_channel(output);
        if src == dst {
            return;
        }
        let mask = width_mask(self.channel_widths.get(dst).copied().unwrap_or(64));
        let mut changed = false;
        for lane in 0..LANES {
            let value = self.channels.data[src * LANES + lane] & mask;
            let slot = &mut self.channels.data[dst * LANES + lane];
            if *slot != value {
                *slot = value;
                changed = true;
            }
        }
        if changed {
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(dst);
            }
        }
    }

    /// One lane's scalar view of a (global) channel index.
    fn lane_state(&self, channel: usize, lane: usize) -> ChannelState {
        self.channels.lane_state(channel, lane)
    }

    /// Scatters the consumer-driven rails (`S+`, `V−`) of one lane of a
    /// channel back from a scalar evaluation, with compare-and-set.
    fn scatter_consumer_lane(&mut self, channel: usize, lane: usize, state: ChannelState) {
        let bit = 1u64 << lane;
        let word = self.channels.forward_stop[channel];
        let next = if state.forward_stop { word | bit } else { word & !bit };
        if next != word {
            self.channels.forward_stop[channel] = next;
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(channel);
            }
        }
        let word = self.channels.backward_valid[channel];
        let next = if state.backward_valid { word | bit } else { word & !bit };
        if next != word {
            self.channels.backward_valid[channel] = next;
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(channel);
            }
        }
    }

    /// Scatters the producer-driven rails (`V+`, `S−`) and the data value
    /// of one lane of a channel back from a scalar evaluation, with
    /// compare-and-set. The scalar evaluation already masked the data.
    fn scatter_producer_lane(&mut self, channel: usize, lane: usize, state: ChannelState) {
        let bit = 1u64 << lane;
        let word = self.channels.forward_valid[channel];
        let next = if state.forward_valid { word | bit } else { word & !bit };
        if next != word {
            self.channels.forward_valid[channel] = next;
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(channel);
            }
        }
        let word = self.channels.backward_stop[channel];
        let next = if state.backward_stop { word | bit } else { word & !bit };
        if next != word {
            self.channels.backward_stop[channel] = next;
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(channel);
            }
        }
        let slot = &mut self.channels.data[channel * LANES + lane];
        if *slot != state.data {
            *slot = state.data;
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(channel);
            }
        }
    }
}

/// One netlist node evaluated across all [`LANES`] scenarios at once.
///
/// Semantics mirror [`Controller`] lane-wise: `eval` must be a pure
/// function of the channel words and the sequential state (it takes
/// `&mut self` only to reuse scratch buffers and memo caches — re-running
/// it with unchanged inputs must not change its writes), `commit` advances
/// the sequential state of every lane on the settled signals.
pub trait LaneController: fmt::Debug {
    /// Drives this node's output words from the current channel words.
    fn eval(&mut self, io: &mut LaneIo<'_>);

    /// Optimistic variant for multi-fixpoint controllers (lazy forks);
    /// defaults to [`LaneController::eval`].
    fn eval_optimistic(&mut self, io: &mut LaneIo<'_>) {
        self.eval(io);
    }

    /// Whether this controller needs the optimistic seeding pass.
    fn is_optimistic(&self) -> bool {
        false
    }

    /// Whether `eval` observes channel signals (`false` cuts control loops
    /// at registered boundaries, exactly like the scalar engine).
    fn eval_reads_channels(&self) -> bool {
        true
    }

    /// Advances every lane's sequential state on the settled signals.
    fn commit(&mut self, io: &LaneIo<'_>);

    /// Rewinds every lane to its post-construction state.
    fn reset(&mut self);

    /// Accumulated statistics of one lane.
    fn stats(&self, lane: usize) -> NodeStats;

    /// One lane's `(cycle, value)` sink transfer stream, when this node is
    /// a sink.
    fn transfer_stream(&self, lane: usize) -> Option<&[(u64, u64)]> {
        let _ = lane;
        None
    }

    /// One lane's per-user `(transfers, kills)` split, when this node is a
    /// shared module.
    fn per_user_stats(&self, lane: usize) -> Option<(Vec<u64>, Vec<u64>)> {
        let _ = lane;
        None
    }

    /// One lane's commit-stage statistics, when this node is a commit
    /// stage.
    fn commit_stats(&self, lane: usize) -> Option<crate::metrics::CommitStageStats> {
        let _ = lane;
        None
    }

    /// Replaces one lane's sink back-pressure pattern; `true` when this
    /// node is a sink.
    fn override_backpressure(&mut self, lane: usize, pattern: &BackpressurePattern) -> bool {
        let _ = (lane, pattern);
        false
    }

    /// Replaces one lane's source offer pattern; `true` when this node is
    /// a source.
    fn override_source_pattern(&mut self, lane: usize, pattern: &SourcePattern) -> bool {
        let _ = (lane, pattern);
        false
    }

    /// Replaces one lane's prediction policy; `true` when this node is a
    /// shared module. The box is dropped (and `false` returned) otherwise.
    fn override_scheduler(
        &mut self,
        lane: usize,
        scheduler: Box<dyn elastic_core::Scheduler>,
    ) -> bool {
        let _ = (lane, scheduler);
        false
    }
}

// ---------------------------------------------------------------------------
// Native word controllers
// ---------------------------------------------------------------------------

/// The standard `Lf = 1`, `Lb = 1` elastic buffer across 64 lanes: per-lane
/// FIFO state, word-level handshake. All driven signals are functions of
/// the sequential state only, so `eval` runs exactly once per cycle.
///
/// Token storage is one lane-major fixed-capacity ring: the FIFO depth is
/// statically known from the buffer spec, so lane `ℓ` owns the contiguous
/// slots `data[ℓ·ring .. (ℓ+1)·ring]` with a per-lane `(head, len)` cursor
/// pair. The former per-lane `VecDeque<u64>` layout scattered every lane's
/// front element across 64 separately-allocated deques, and the pointer
/// chasing in the eval/commit hot loops capped the registered-pipeline lane
/// win at ~4×; the ring keeps the whole node's token state in one
/// allocation with index arithmetic only.
#[derive(Debug)]
struct LaneStandardBuffer {
    spec: BufferSpec,
    /// Ring slots per lane: the static FIFO bound `max(capacity,
    /// init_tokens, 1)` (`1` keeps the cursor arithmetic total for
    /// zero-capacity pass-through specs, which never push).
    ring: usize,
    /// Lane-major token slots: `data[lane * ring + slot]`.
    data: Vec<u64>,
    /// Ring slot of each lane's oldest token.
    head: Vec<u32>,
    /// Tokens currently held per lane (`<= ring`).
    len: Vec<u32>,
    anti_tokens: Vec<u32>,
    stats: Vec<NodeStats>,
    data_scratch: Vec<u64>,
}

impl LaneStandardBuffer {
    fn new(spec: BufferSpec) -> Self {
        let ring = (spec.capacity as usize).max(spec.init_tokens.max(0) as usize).max(1);
        let mut buffer = LaneStandardBuffer {
            spec,
            ring,
            data: vec![0; ring * LANES],
            head: vec![0; LANES],
            len: vec![0; LANES],
            anti_tokens: vec![0; LANES],
            stats: vec![NodeStats::default(); LANES],
            data_scratch: vec![0; LANES],
        };
        buffer.reset();
        buffer
    }

    #[inline]
    fn pop_front(&mut self, lane: usize) -> Option<u64> {
        if self.len[lane] == 0 {
            return None;
        }
        let value = self.data[lane * self.ring + self.head[lane] as usize];
        self.head[lane] = (self.head[lane] + 1) % self.ring as u32;
        self.len[lane] -= 1;
        Some(value)
    }

    #[inline]
    fn push_back(&mut self, lane: usize, value: u64) {
        debug_assert!((self.len[lane] as usize) < self.ring, "ring bound is the FIFO bound");
        let slot = (self.head[lane] + self.len[lane]) % self.ring as u32;
        self.data[lane * self.ring + slot as usize] = value;
        self.len[lane] += 1;
    }
}

impl LaneController for LaneStandardBuffer {
    fn eval(&mut self, io: &mut LaneIo<'_>) {
        let capacity = self.spec.capacity as usize;
        let anti_capacity = self.spec.anti_capacity;
        let ring = self.ring;
        let mut valid = 0u64;
        let mut stop = 0u64;
        let mut kill = 0u64;
        let mut anti_stop = 0u64;
        for lane in 0..LANES {
            let bit = 1u64 << lane;
            let len = self.len[lane] as usize;
            if len > 0 {
                valid |= bit;
                self.data_scratch[lane] = self.data[lane * ring + self.head[lane] as usize];
            } else {
                self.data_scratch[lane] = 0;
            }
            if len >= capacity {
                stop |= bit;
            }
            if self.anti_tokens[lane] > 0 {
                kill |= bit;
            }
            let can_absorb_anti = len > 0 || self.anti_tokens[lane] < anti_capacity;
            if !can_absorb_anti {
                anti_stop |= bit;
            }
        }
        io.set_output_valid(OUT, valid);
        let data = &self.data_scratch;
        io.set_output_data(OUT, data);
        io.set_input_stop(IN, stop);
        io.set_input_kill(IN, kill);
        io.set_output_anti_stop(OUT, anti_stop);
    }

    fn eval_reads_channels(&self) -> bool {
        false
    }

    fn commit(&mut self, io: &LaneIo<'_>) {
        let out_fv = io.output_forward_valid(OUT);
        let out_fs = io.output_forward_stop(OUT);
        let out_bv = io.output_backward_valid(OUT);
        let out_bs = io.output_backward_stop(OUT);
        let in_fv = io.input_forward_valid(IN);
        let in_fs = io.input_forward_stop(IN);
        let in_bv = io.input_backward_valid(IN);
        let in_bs = io.input_backward_stop(IN);
        let in_data = io.input_data(IN);

        let out_kill = out_bv & !out_bs;
        let out_transfer = out_fv & !out_fs & !out_kill;
        let out_stall = out_fv & out_fs & !out_kill & !out_transfer;
        let token_arrived = in_fv & !in_fs;
        let anti_left = in_bv & !in_bs;

        for (lane, &data) in in_data.iter().enumerate().take(LANES) {
            let bit = 1u64 << lane;
            // Output boundary, exactly the scalar match order: kill wins,
            // then transfer, then stall accounting.
            if out_kill & bit != 0 {
                match self.pop_front(lane) {
                    Some(_) => self.stats[lane].killed_tokens += 1,
                    None => {
                        self.anti_tokens[lane] =
                            (self.anti_tokens[lane] + 1).min(self.spec.anti_capacity);
                    }
                }
            } else if out_transfer & bit != 0 {
                self.pop_front(lane);
                self.stats[lane].output_transfers += 1;
            } else if out_stall & bit != 0 {
                self.stats[lane].stall_cycles += 1;
            }
            // Input boundary.
            let anti = &mut self.anti_tokens[lane];
            match (token_arrived & bit != 0, anti_left & bit != 0) {
                (true, true) => {
                    *anti = anti.saturating_sub(1);
                    self.stats[lane].killed_tokens += 1;
                }
                (true, false) => {
                    if *anti > 0 {
                        *anti -= 1;
                        self.stats[lane].killed_tokens += 1;
                    } else {
                        self.push_back(lane, data);
                    }
                }
                (false, true) => *anti = anti.saturating_sub(1),
                (false, false) => {}
            }
        }
    }

    fn reset(&mut self) {
        let init_tokens = self.spec.init_tokens.max(0) as usize;
        for lane in 0..LANES {
            self.head[lane] = 0;
            self.len[lane] = init_tokens as u32;
            for slot in 0..init_tokens {
                self.data[lane * self.ring + slot] = self.spec.init_value;
            }
            self.anti_tokens[lane] = (-self.spec.init_tokens).max(0) as u32;
            self.stats[lane] = NodeStats::default();
        }
    }

    fn stats(&self, lane: usize) -> NodeStats {
        self.stats[lane]
    }
}

/// The `Lb = 0` (Figure-5) elastic buffer across 64 lanes: fully word-ops —
/// occupancy is one bit per lane, values are a lane column kept `0` when
/// empty so the column doubles as the driven data.
#[derive(Debug)]
struct LaneZeroBackwardBuffer {
    initial: Option<u64>,
    full: u64,
    values: Vec<u64>,
    stats: Vec<NodeStats>,
}

impl LaneZeroBackwardBuffer {
    fn new(spec: BufferSpec) -> Self {
        let initial = (spec.init_tokens > 0).then_some(spec.init_value);
        let mut buffer = LaneZeroBackwardBuffer {
            initial,
            full: 0,
            values: vec![0; LANES],
            stats: vec![NodeStats::default(); LANES],
        };
        buffer.reset();
        buffer
    }
}

impl LaneController for LaneZeroBackwardBuffer {
    fn eval(&mut self, io: &mut LaneIo<'_>) {
        let full = self.full;
        let out_fs = io.output_forward_stop(OUT);
        let out_bv = io.output_backward_valid(OUT);
        let in_bs = io.input_backward_stop(IN);
        io.set_output_valid(OUT, full);
        let values = &self.values;
        io.set_output_data(OUT, values);
        // Combinational stop: full and stopped downstream — unless the
        // stored token is about to be annihilated by an incoming anti-token.
        io.set_input_stop(IN, full & out_fs & !out_bv);
        // Combinational kill pass-through when empty.
        io.set_input_kill(IN, !full & out_bv);
        // An empty buffer exposes the upstream anti-token capacity.
        io.set_output_anti_stop(OUT, !full & in_bs);
    }

    fn commit(&mut self, io: &LaneIo<'_>) {
        let out_fv = io.output_forward_valid(OUT);
        let out_fs = io.output_forward_stop(OUT);
        let out_bv = io.output_backward_valid(OUT);
        let out_bs = io.output_backward_stop(OUT);
        let in_fv = io.input_forward_valid(IN);
        let in_fs = io.input_forward_stop(IN);
        let in_bv = io.input_backward_valid(IN);
        let in_bs = io.input_backward_stop(IN);
        let in_data = io.input_data(IN);

        let was_full = self.full;
        let killed = was_full & out_bv & !out_bs;
        let left = was_full & !killed & out_fv & !out_fs;
        let stalled = was_full & !killed & !left & out_fs;
        let full_after_out = was_full & !killed & !left;
        let token_arrived = in_fv & !in_fs;
        let anti_passed = in_bv & !in_bs;
        let killed_in_flight = token_arrived & anti_passed;
        let stored = token_arrived & !anti_passed & !full_after_out;
        self.full = full_after_out | stored;

        for_each_lane(killed | left, |lane| self.values[lane] = 0);
        for_each_lane(stored, |lane| self.values[lane] = in_data[lane]);
        for_each_lane(killed, |lane| self.stats[lane].killed_tokens += 1);
        for_each_lane(left, |lane| self.stats[lane].output_transfers += 1);
        for_each_lane(stalled, |lane| self.stats[lane].stall_cycles += 1);
        for_each_lane(killed_in_flight, |lane| self.stats[lane].killed_tokens += 1);
    }

    fn reset(&mut self) {
        self.full = if self.initial.is_some() { u64::MAX } else { 0 };
        self.values.fill(self.initial.unwrap_or(0));
        self.stats.fill(NodeStats::default());
    }

    fn stats(&self, lane: usize) -> NodeStats {
        self.stats[lane]
    }
}

/// Combinational function block (lazy join + datapath) across 64 lanes.
/// Handshake is pure word ops; the datapath evaluates per lane behind a
/// memo cache keyed on the input data columns (settle loops re-evaluate
/// the join several times per cycle while the data rarely changes).
#[derive(Debug)]
struct LaneFunction {
    spec: FunctionSpec,
    output_width: u8,
    stats: Vec<NodeStats>,
    operands: Vec<u64>,
    out_data: Vec<u64>,
    cached_inputs: Vec<u64>,
    cache_valid: bool,
}

impl LaneFunction {
    fn new(spec: FunctionSpec, output_width: u8) -> Self {
        let inputs = spec.inputs;
        LaneFunction {
            spec,
            output_width,
            stats: vec![NodeStats::default(); LANES],
            operands: vec![0; inputs],
            out_data: vec![0; LANES],
            cached_inputs: vec![0; inputs * LANES],
            cache_valid: false,
        }
    }

    fn refresh_data(&mut self, io: &LaneIo<'_>) {
        let inputs = self.spec.inputs;
        let mut fresh = self.cache_valid;
        if fresh {
            for port in 0..inputs {
                if io.input_data(port) != &self.cached_inputs[port * LANES..][..LANES] {
                    fresh = false;
                    break;
                }
            }
        }
        if fresh {
            return;
        }
        for port in 0..inputs {
            self.cached_inputs[port * LANES..][..LANES].copy_from_slice(io.input_data(port));
        }
        for lane in 0..LANES {
            for port in 0..inputs {
                self.operands[port] = self.cached_inputs[port * LANES + lane];
            }
            self.out_data[lane] = elastic_datapath::adder::mask(
                elastic_datapath::evaluate(&self.spec.op, &self.operands).unwrap_or(0),
                self.output_width,
            );
        }
        self.cache_valid = true;
    }
}

impl LaneController for LaneFunction {
    fn eval(&mut self, io: &mut LaneIo<'_>) {
        let inputs = self.spec.inputs;
        let mut all_valid = u64::MAX;
        for port in 0..inputs {
            all_valid &= io.input_forward_valid(port);
        }
        let kill = io.output_backward_valid(OUT);
        io.set_output_valid(OUT, all_valid);
        self.refresh_data(io);
        let data = &self.out_data;
        io.set_output_data(OUT, data);
        let mut all_producers_accept_kill = u64::MAX;
        for port in 0..inputs {
            all_producers_accept_kill &= !io.input_backward_stop(port);
        }
        io.set_output_anti_stop(OUT, !(all_valid | all_producers_accept_kill));
        let out_fs = io.output_forward_stop(OUT);
        let output_transfer = all_valid & !out_fs & !kill;
        let annihilate = all_valid & kill;
        let forward_kill = kill & !all_valid & all_producers_accept_kill;
        let fire = output_transfer | annihilate;
        for port in 0..inputs {
            io.set_input_stop(port, !fire);
            io.set_input_kill(port, forward_kill);
        }
    }

    fn commit(&mut self, io: &LaneIo<'_>) {
        let out_fv = io.output_forward_valid(OUT);
        let out_fs = io.output_forward_stop(OUT);
        let out_bv = io.output_backward_valid(OUT);
        let out_bs = io.output_backward_stop(OUT);
        let backward_transfer = out_bv & !out_bs;
        let forward_transfer = out_fv & !out_fs & !backward_transfer;
        let annihilation = out_fv & backward_transfer;
        let forward_retry = out_fv & out_fs & !backward_transfer;
        for_each_lane(forward_transfer, |lane| self.stats[lane].output_transfers += 1);
        for_each_lane(annihilation, |lane| self.stats[lane].killed_tokens += 1);
        for_each_lane(forward_retry, |lane| self.stats[lane].stall_cycles += 1);
    }

    fn reset(&mut self) {
        self.stats.fill(NodeStats::default());
        self.cache_valid = false;
    }

    fn stats(&self, lane: usize) -> NodeStats {
        self.stats[lane]
    }
}

/// Eager/lazy fork across 64 lanes: per-branch pending words, prefix/suffix
/// AND for the lazy all-but-me readiness, and the same single-write-per-
/// signal discipline the scalar fork needs for full-sweep convergence.
#[derive(Debug)]
struct LaneEagerFork {
    spec: ForkSpec,
    pending: Vec<u64>,
    serving: u64,
    stats: Vec<NodeStats>,
    ready: Vec<u64>,
    prefix: Vec<u64>,
    suffix: Vec<u64>,
    deliver: Vec<u64>,
}

impl LaneEagerFork {
    fn new(spec: ForkSpec) -> Self {
        let outputs = spec.outputs;
        LaneEagerFork {
            spec,
            pending: vec![u64::MAX; outputs],
            serving: 0,
            stats: vec![NodeStats::default(); LANES],
            ready: vec![0; outputs],
            prefix: vec![0; outputs + 1],
            suffix: vec![0; outputs + 1],
            deliver: vec![0; outputs],
        }
    }

    fn eval_inner(&mut self, io: &mut LaneIo<'_>, optimistic: bool) {
        let outputs = self.spec.outputs;
        let eager = self.spec.eager;
        let in_fv = io.input_forward_valid(IN);
        let mut all_ready = u64::MAX;
        if !eager && !optimistic {
            // Lazy readiness per branch, then all-but-me via prefix/suffix
            // AND (the word form of "all ready, or I am the only laggard").
            for branch in 0..outputs {
                let effective_pending = !self.serving | self.pending[branch];
                let out_fs = io.output_forward_stop(branch);
                let out_bv = io.output_backward_valid(branch);
                let ready = !effective_pending | !out_fs | (out_bv & in_fv);
                self.ready[branch] = ready;
                all_ready &= ready;
            }
            self.prefix[0] = u64::MAX;
            for branch in 0..outputs {
                self.prefix[branch + 1] = self.prefix[branch] & self.ready[branch];
            }
            self.suffix[outputs] = u64::MAX;
            for branch in (0..outputs).rev() {
                self.suffix[branch] = self.suffix[branch + 1] & self.ready[branch];
            }
        }
        for branch in 0..outputs {
            let effective_pending = !self.serving | self.pending[branch];
            let needs = in_fv & effective_pending;
            let others_ready = if eager || optimistic {
                u64::MAX
            } else {
                self.prefix[branch] & self.suffix[branch + 1]
            };
            io.set_output_valid(branch, needs & others_ready);
            io.copy_data(IN, branch);
            io.set_output_anti_stop(branch, !needs);
        }
        // Delivery check reads the signals just driven (plus the consumer
        // side), exactly like the scalar fork's post-write `deliveries`.
        let mut done = u64::MAX;
        for branch in 0..outputs {
            let effective_pending = !self.serving | self.pending[branch];
            let out_fv = io.output_forward_valid(branch);
            let out_fs = io.output_forward_stop(branch);
            let out_bv = io.output_backward_valid(branch);
            let out_bs = io.output_backward_stop(branch);
            let delivered = in_fv & effective_pending & ((out_bv & !out_bs) | (out_fv & !out_fs));
            done &= !effective_pending | delivered;
        }
        let gate = if eager || optimistic { u64::MAX } else { all_ready };
        let input_fires = in_fv & done & gate;
        io.set_input_stop(IN, !input_fires);
        io.set_input_kill(IN, 0);
    }
}

impl LaneController for LaneEagerFork {
    fn eval(&mut self, io: &mut LaneIo<'_>) {
        self.eval_inner(io, false);
    }

    fn eval_optimistic(&mut self, io: &mut LaneIo<'_>) {
        self.eval_inner(io, true);
    }

    fn is_optimistic(&self) -> bool {
        !self.spec.eager
    }

    fn commit(&mut self, io: &LaneIo<'_>) {
        let outputs = self.spec.outputs;
        let in_fv = io.input_forward_valid(IN);
        let in_fs = io.input_forward_stop(IN);

        // Deliveries against the *old* pending state, as in the scalar
        // commit.
        let mut done = u64::MAX;
        for branch in 0..outputs {
            let effective_pending = !self.serving | self.pending[branch];
            let out_fv = io.output_forward_valid(branch);
            let out_fs = io.output_forward_stop(branch);
            let out_bv = io.output_backward_valid(branch);
            let out_bs = io.output_backward_stop(branch);
            self.deliver[branch] =
                in_fv & effective_pending & ((out_bv & !out_bs) | (out_fv & !out_fs));
            done &= !effective_pending | self.deliver[branch];
        }
        let complete = in_fv & done & !in_fs;
        let holding = in_fv & !complete;
        for branch in 0..outputs {
            let effective_pending = !self.serving | self.pending[branch];
            self.pending[branch] = !holding | (effective_pending & !self.deliver[branch]);
        }
        self.serving = holding;
        for_each_lane(complete, |lane| self.stats[lane].output_transfers += 1);
        for_each_lane(holding, |lane| self.stats[lane].stall_cycles += 1);
        // The scalar fork counts branch annihilations only on cycles where
        // a token is present (its idle path returns early).
        for branch in 0..outputs {
            let out_bv = io.output_backward_valid(branch);
            let out_bs = io.output_backward_stop(branch);
            for_each_lane(in_fv & out_bv & !out_bs, |lane| {
                self.stats[lane].killed_tokens += 1;
            });
        }
    }

    fn reset(&mut self) {
        self.pending.fill(u64::MAX);
        self.serving = 0;
        self.stats.fill(NodeStats::default());
    }

    fn stats(&self, lane: usize) -> NodeStats {
        self.stats[lane]
    }
}

/// Lazy or early-evaluation multiplexor across 64 lanes. The per-lane
/// select value steers via gather masks (`sel_mask[j]` = lanes selecting
/// data input `j`); owed-anti-token counters stay per lane with a cached
/// "clean" word per data input.
#[derive(Debug)]
struct LaneMux {
    spec: MuxSpec,
    owed_anti_tokens: Vec<u32>,
    owed_zero: Vec<u64>,
    stats: Vec<NodeStats>,
    sel_mask: Vec<u64>,
    out_data: Vec<u64>,
}

impl LaneMux {
    fn new(spec: MuxSpec) -> Self {
        let data_inputs = spec.data_inputs;
        LaneMux {
            spec,
            owed_anti_tokens: vec![0; data_inputs * LANES],
            owed_zero: vec![u64::MAX; data_inputs],
            stats: vec![NodeStats::default(); LANES],
            sel_mask: vec![0; data_inputs],
            out_data: vec![0; LANES],
        }
    }

    /// Rebuilds `sel_mask` and the steered output column from the current
    /// select data column.
    fn gather_select(&mut self, io: &LaneIo<'_>) {
        let data_inputs = self.spec.data_inputs;
        self.sel_mask.fill(0);
        if data_inputs == 0 {
            return;
        }
        let select = io.input_data(SELECT);
        for (lane, &sel) in select.iter().enumerate() {
            let chosen = (sel as usize) % data_inputs;
            self.sel_mask[chosen] |= 1u64 << lane;
        }
    }

    fn gather_out_data(&mut self, io: &LaneIo<'_>) {
        for (chosen, &mask) in self.sel_mask.iter().enumerate() {
            let column = io.input_data(1 + chosen);
            for_each_lane(mask, |lane| self.out_data[lane] = column[lane]);
        }
    }
}

impl LaneController for LaneMux {
    fn eval(&mut self, io: &mut LaneIo<'_>) {
        let data_inputs = self.spec.data_inputs;
        self.gather_select(io);
        self.gather_out_data(io);
        let select_valid = io.input_forward_valid(SELECT);
        if !self.spec.early_eval {
            // Lazy: conventional join on select plus *all* data inputs.
            let mut all_data_valid = u64::MAX;
            for port in 0..data_inputs {
                all_data_valid &= io.input_forward_valid(1 + port);
            }
            let valid = select_valid & all_data_valid;
            io.set_output_valid(OUT, valid);
            let data = &self.out_data;
            io.set_output_data(OUT, data);
            io.set_output_anti_stop(OUT, u64::MAX);
            let fire = valid & !io.output_forward_stop(OUT);
            io.set_input_stop(SELECT, !fire);
            for port in 0..data_inputs {
                io.set_input_stop(1 + port, !fire);
                io.set_input_kill(1 + port, 0);
            }
            return;
        }
        // Early evaluation: only the selected input must be valid (and not
        // still owed an anti-token); non-selected inputs that fire are owed
        // an anti-token, which is injected combinationally when possible.
        let mut selected_valid = 0u64;
        let mut selected_clean = 0u64;
        for port in 0..data_inputs {
            selected_valid |= self.sel_mask[port] & io.input_forward_valid(1 + port);
            selected_clean |= self.sel_mask[port] & self.owed_zero[port];
        }
        let valid = select_valid & selected_valid & selected_clean;
        io.set_output_valid(OUT, valid);
        let data = &self.out_data;
        io.set_output_data(OUT, data);
        io.set_output_anti_stop(OUT, u64::MAX);
        let fire = valid & !io.output_forward_stop(OUT);
        io.set_input_stop(SELECT, !fire);
        for port in 0..data_inputs {
            let is_selected = self.sel_mask[port] & select_valid;
            let owed_now = !self.owed_zero[port] | (fire & !is_selected);
            let consuming = is_selected & fire & selected_clean;
            let kill = owed_now & !consuming;
            io.set_input_kill(1 + port, kill);
            io.set_input_stop(1 + port, !kill & (!is_selected | !fire));
        }
    }

    fn commit(&mut self, io: &LaneIo<'_>) {
        let out_fv = io.output_forward_valid(OUT);
        let out_fs = io.output_forward_stop(OUT);
        let fire = out_fv & !out_fs;
        for_each_lane(fire, |lane| self.stats[lane].output_transfers += 1);
        for_each_lane(out_fv & out_fs, |lane| self.stats[lane].stall_cycles += 1);
        if !self.spec.early_eval {
            return;
        }
        self.gather_select(io);
        let select_valid = io.input_forward_valid(SELECT);
        for port in 0..self.spec.data_inputs {
            let delivered = io.input_backward_valid(1 + port) & !io.input_backward_stop(1 + port);
            let incurred = fire & select_valid & !self.sel_mask[port];
            let mut zero_word = self.owed_zero[port];
            for_each_lane(incurred | delivered, |lane| {
                let owed = &mut self.owed_anti_tokens[port * LANES + lane];
                if incurred & (1u64 << lane) != 0 {
                    *owed += 1;
                }
                if delivered & (1u64 << lane) != 0 {
                    *owed = owed.saturating_sub(1);
                    self.stats[lane].killed_tokens += 1;
                }
                if *owed == 0 {
                    zero_word |= 1u64 << lane;
                } else {
                    zero_word &= !(1u64 << lane);
                }
            });
            self.owed_zero[port] = zero_word;
        }
    }

    fn reset(&mut self) {
        self.owed_anti_tokens.fill(0);
        self.owed_zero.fill(u64::MAX);
        self.stats.fill(NodeStats::default());
    }

    fn stats(&self, lane: usize) -> NodeStats {
        self.stats[lane]
    }
}

// ---------------------------------------------------------------------------
// Scalar fallback
// ---------------------------------------------------------------------------

/// 64 scalar [`Controller`]s driven per lane behind the word-level
/// compare-and-set boundary.
///
/// Used for node kinds with heavyweight per-scenario state (sources, sinks,
/// shared modules, commit stages, variable-latency units): each lane owns a
/// full scalar controller, so per-lane environment overrides, transfer
/// streams and per-user statistics come from the scalar implementation
/// unchanged. The gather/scatter transpose only touches this node's own
/// channels, and the scatter is compare-and-set, so worklist semantics are
/// identical to a native word controller.
struct ScalarLanes {
    lanes: Vec<Box<dyn Controller>>,
    scratch: Vec<ChannelState>,
    dirty_scratch: Vec<usize>,
}

impl fmt::Debug for ScalarLanes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScalarLanes").field("lanes", &self.lanes.len()).finish()
    }
}

impl ScalarLanes {
    fn build(netlist: &Netlist, node: &Node, channel_count: usize) -> Result<Self, SimError> {
        let mut lanes = Vec::with_capacity(LANES);
        for _ in 0..LANES {
            lanes.push(build_controller(netlist, node, None)?);
        }
        Ok(ScalarLanes {
            lanes,
            scratch: vec![ChannelState::default(); channel_count],
            dirty_scratch: Vec::new(),
        })
    }

    fn eval_mode(&mut self, io: &mut LaneIo<'_>, optimistic: bool) {
        let inputs = io.input_channels;
        let outputs = io.output_channels;
        let widths = io.channel_widths;
        for lane in 0..LANES {
            for &channel in inputs.iter().chain(outputs.iter()) {
                self.scratch[channel] = io.lane_state(channel, lane);
            }
            self.dirty_scratch.clear();
            let mut node_io = NodeIo::tracked(
                &mut self.scratch,
                inputs,
                outputs,
                widths,
                &mut self.dirty_scratch,
            );
            if optimistic {
                self.lanes[lane].eval_optimistic(&mut node_io);
            } else {
                self.lanes[lane].eval(&mut node_io);
            }
            for &channel in inputs {
                io.scatter_consumer_lane(channel, lane, self.scratch[channel]);
            }
            for &channel in outputs {
                io.scatter_producer_lane(channel, lane, self.scratch[channel]);
            }
        }
    }
}

impl LaneController for ScalarLanes {
    fn eval(&mut self, io: &mut LaneIo<'_>) {
        self.eval_mode(io, false);
    }

    fn eval_optimistic(&mut self, io: &mut LaneIo<'_>) {
        self.eval_mode(io, true);
    }

    fn is_optimistic(&self) -> bool {
        self.lanes[0].is_optimistic()
    }

    fn eval_reads_channels(&self) -> bool {
        self.lanes[0].eval_reads_channels()
    }

    fn commit(&mut self, io: &LaneIo<'_>) {
        let inputs = io.input_channels;
        let outputs = io.output_channels;
        for lane in 0..LANES {
            for &channel in inputs.iter().chain(outputs.iter()) {
                self.scratch[channel] = io.lane_state(channel, lane);
            }
            let node_io = NodeIo::new(&mut self.scratch, inputs, outputs);
            self.lanes[lane].commit(&node_io);
        }
    }

    fn reset(&mut self) {
        for lane in &mut self.lanes {
            lane.reset();
        }
    }

    fn stats(&self, lane: usize) -> NodeStats {
        self.lanes[lane].stats()
    }

    fn transfer_stream(&self, lane: usize) -> Option<&[(u64, u64)]> {
        self.lanes[lane].transfer_stream()
    }

    fn per_user_stats(&self, lane: usize) -> Option<(Vec<u64>, Vec<u64>)> {
        self.lanes[lane].per_user_stats()
    }

    fn commit_stats(&self, lane: usize) -> Option<crate::metrics::CommitStageStats> {
        self.lanes[lane].commit_stats()
    }

    fn override_backpressure(&mut self, lane: usize, pattern: &BackpressurePattern) -> bool {
        self.lanes[lane].override_backpressure(pattern)
    }

    fn override_source_pattern(&mut self, lane: usize, pattern: &SourcePattern) -> bool {
        self.lanes[lane].override_source_pattern(pattern)
    }

    fn override_scheduler(
        &mut self,
        lane: usize,
        scheduler: Box<dyn elastic_core::Scheduler>,
    ) -> bool {
        self.lanes[lane].override_scheduler(scheduler)
    }
}

/// Builds the lane controller for one netlist node: a native word
/// implementation for the hot SELF controllers, [`ScalarLanes`] otherwise.
fn build_lane_controller(
    netlist: &Netlist,
    node: &Node,
    channel_count: usize,
) -> Result<Box<dyn LaneController>, SimError> {
    let output_widths: Vec<u8> = netlist.output_channels(node.id).iter().map(|c| c.width).collect();
    let controller: Box<dyn LaneController> = match &node.kind {
        NodeKind::Buffer(spec) => {
            if spec.forward_latency != 1 {
                return Err(SimError::UnsupportedNode {
                    node: node.id,
                    reason: format!(
                        "buffers with forward latency {} are not supported by the simulator \
                         (chain unit-latency buffers instead)",
                        spec.forward_latency
                    ),
                });
            }
            // Same producer-side init-value masking as the scalar build.
            let mut spec = *spec;
            spec.init_value = elastic_datapath::adder::mask(
                spec.init_value,
                output_widths.first().copied().unwrap_or(64),
            );
            if spec.backward_latency == 0 {
                Box::new(LaneZeroBackwardBuffer::new(spec))
            } else {
                Box::new(LaneStandardBuffer::new(spec))
            }
        }
        NodeKind::Function(spec) => {
            Box::new(LaneFunction::new(spec.clone(), output_widths.first().copied().unwrap_or(64)))
        }
        NodeKind::Mux(spec) => Box::new(LaneMux::new(*spec)),
        NodeKind::Fork(spec) => Box::new(LaneEagerFork::new(*spec)),
        _ => Box::new(ScalarLanes::build(netlist, node, channel_count)?),
    };
    Ok(controller)
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// A cycle-accurate SELF simulation advancing [`LANES`] independent
/// scenarios per word operation.
///
/// The settle algorithm, evaluation ranks, worklist, budgets and
/// oscillation reporting are the scalar [`crate::Simulation`]'s,
/// generalised word-wise. Environment injection covers the scalar reset
/// surface: sink back-pressure and source offer patterns vary per lane,
/// and shared-module schedulers inject lane-blocked (one freshly built
/// scheduler per lane, see [`LaneSimulation::reset_with_schedulers`]).
/// Not supported in the lane engine (use the scalar engine): fault
/// injection and streaming cycle monitors.
pub struct LaneSimulation {
    config: LaneConfig,
    controllers: Vec<Box<dyn LaneController>>,
    node_ids: Vec<NodeId>,
    node_kinds: Vec<&'static str>,
    node_ports: Vec<(Vec<usize>, Vec<usize>)>,
    channels: LaneChannels,
    channel_widths: Vec<u8>,
    channel_ids: Vec<elastic_core::ChannelId>,
    channel_producer: Vec<u32>,
    channel_consumer: Vec<u32>,
    reads_channels: Vec<bool>,
    optimistic_nodes: Vec<u32>,
    rank: Vec<u32>,
    seed_buckets: Vec<Vec<u32>>,
    dirty: Vec<usize>,
    oscillating: Vec<u32>,
    worklist: Worklist,
    traces: Vec<Trace>,
    state_scratch: Vec<ChannelState>,
    divergence: Vec<u64>,
    cycle: u64,
    settle_iterations: u64,
    controller_evals: u64,
}

impl fmt::Debug for LaneSimulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaneSimulation")
            .field("nodes", &self.controllers.len())
            .field("channels", &self.channels.channel_count())
            .field("lanes", &LANES)
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl LaneSimulation {
    /// Builds a 64-lane simulation of `netlist`.
    ///
    /// # Errors
    ///
    /// Fails when the netlist does not validate or contains a node the
    /// simulator cannot model — the same conditions as
    /// [`crate::Simulation::new`].
    pub fn new(netlist: &Netlist, config: &LaneConfig) -> Result<Self, SimError> {
        netlist.validate()?;

        // Dense channel indexing shared with the scalar engine and trace.
        let mut channel_index = BTreeMap::new();
        let mut channel_widths = Vec::new();
        let mut channel_ids = Vec::new();
        for (index, channel) in netlist.live_channels().enumerate() {
            channel_index.insert(channel.id, index);
            channel_widths.push(channel.width);
            channel_ids.push(channel.id);
        }
        let channel_count = channel_index.len();

        let mut controllers: Vec<Box<dyn LaneController>> = Vec::new();
        let mut node_ids = Vec::new();
        let mut node_kinds = Vec::new();
        let mut node_ports = Vec::new();
        let mut channel_producer = vec![0u32; channel_count];
        let mut channel_consumer = vec![0u32; channel_count];
        for node in netlist.live_nodes() {
            let controller = build_lane_controller(netlist, node, channel_count)?;
            let node_index = controllers.len() as u32;

            let inputs: Vec<usize> = (0..node.input_count())
                .map(|port| {
                    netlist
                        .channel_into(elastic_core::Port::input(node.id, port))
                        .map(|c| channel_index[&c.id])
                        .expect("validated netlists have fully connected ports")
                })
                .collect();
            let outputs: Vec<usize> = (0..node.output_count())
                .map(|port| {
                    netlist
                        .channel_from(elastic_core::Port::output(node.id, port))
                        .map(|c| channel_index[&c.id])
                        .expect("validated netlists have fully connected ports")
                })
                .collect();
            for &channel in &inputs {
                channel_consumer[channel] = node_index;
            }
            for &channel in &outputs {
                channel_producer[channel] = node_index;
            }

            controllers.push(controller);
            node_ids.push(node.id);
            node_kinds.push(node.kind.kind_name());
            node_ports.push((inputs, outputs));
        }

        let reads_channels: Vec<bool> =
            controllers.iter().map(|c| c.eval_reads_channels()).collect();
        let optimistic_nodes: Vec<u32> = controllers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_optimistic())
            .map(|(index, _)| index as u32)
            .collect();
        let rank = evaluation_ranks(
            controllers.len(),
            &node_ports,
            &channel_producer,
            &channel_consumer,
            &reads_channels,
        );
        let rank_count = rank.iter().map(|&r| r as usize + 1).max().unwrap_or(1);
        let mut seed_buckets = vec![Vec::new(); rank_count];
        for (node, &node_rank) in rank.iter().enumerate() {
            seed_buckets[node_rank as usize].push(node as u32);
        }

        let traces: Vec<Trace> = (0..LANES).map(|_| Trace::new(netlist)).collect();

        LANE_CONSTRUCTIONS.fetch_add(1, Ordering::Relaxed);
        Ok(LaneSimulation {
            config: config.clone(),
            worklist: Worklist::new(rank_count, controllers.len()),
            controllers,
            node_ids,
            node_kinds,
            node_ports,
            channels: LaneChannels::new(channel_count),
            channel_widths,
            channel_ids,
            channel_producer,
            channel_consumer,
            reads_channels,
            optimistic_nodes,
            rank,
            seed_buckets,
            dirty: Vec::new(),
            oscillating: Vec::new(),
            traces,
            state_scratch: vec![ChannelState::default(); channel_count],
            divergence: vec![0; channel_count],
            cycle: 0,
            settle_iterations: 0,
            controller_evals: 0,
        })
    }

    /// Number of cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Process-wide count of lane-simulation constructions
    /// ([`LaneSimulation::new`]) — the lane-engine twin of
    /// [`crate::Simulation::constructions`], used by sweep tests to prove
    /// that exploration loops build one lane simulation per worker thread
    /// and replay blocks via the reset family. Resets do **not** count.
    pub fn constructions() -> u64 {
        LANE_CONSTRUCTIONS.load(Ordering::Relaxed)
    }

    /// One lane's recorded trace (empty unless [`LaneConfig::record_trace`]
    /// is set).
    ///
    /// # Panics
    ///
    /// When `lane >= LANES`.
    pub fn trace(&self, lane: usize) -> &Trace {
        &self.traces[lane]
    }

    /// The per-cycle settle budget in full-sweep equivalents — the same
    /// bound as [`crate::Simulation::settle_budget`].
    pub fn settle_budget(&self) -> usize {
        if self.config.max_settle_iterations > 0 {
            self.config.max_settle_iterations
        } else {
            2 * self.channels.channel_count() + 8
        }
    }

    /// The accumulated per-channel lane-divergence map (dense channel
    /// order): bit `ℓ` of word `c` is set once lane `ℓ` differed from
    /// lane 0 on channel `c`. All zeros unless
    /// [`LaneConfig::track_divergence`] is set.
    pub fn divergence_map(&self) -> &[u64] {
        &self.divergence
    }

    /// Lanes that ever diverged from lane 0 on any channel, as a bit mask.
    pub fn divergent_lanes(&self) -> u64 {
        self.divergence.iter().fold(0, |acc, &word| acc | word)
    }

    /// Rewinds every lane to cycle 0 without rebuilding (the lane analogue
    /// of [`crate::Simulation::reset`]).
    pub fn reset(&mut self) {
        for controller in &mut self.controllers {
            controller.reset();
        }
        self.channels.clear();
        for trace in &mut self.traces {
            trace.clear();
        }
        self.divergence.fill(0);
        self.cycle = 0;
        self.settle_iterations = 0;
        self.controller_evals = 0;
    }

    /// [`LaneSimulation::reset`], additionally replacing the back-pressure
    /// pattern of the named sinks **in every lane** (broadcast — all 64
    /// lanes see the same environment).
    pub fn reset_with_sink_patterns(&mut self, overrides: &[(NodeId, BackpressurePattern)]) {
        self.reset();
        for (node, pattern) in overrides {
            let applied = self
                .node_index(*node)
                .map(|index| {
                    let controller = &mut self.controllers[index];
                    (0..LANES).all(|lane| controller.override_backpressure(lane, pattern))
                })
                .unwrap_or(false);
            debug_assert!(applied, "node {node} is not a sink; cannot override back-pressure");
        }
    }

    /// [`LaneSimulation::reset`], additionally replacing each lane's sink
    /// back-pressure pattern individually: lane `ℓ` of a named sink gets
    /// `patterns[min(ℓ, patterns.len() - 1)]` — 64 environments per
    /// simulation instance. Empty pattern lists leave the sink untouched.
    pub fn reset_with_lane_sink_patterns(
        &mut self,
        overrides: &[(NodeId, Vec<BackpressurePattern>)],
    ) {
        self.reset();
        for (node, patterns) in overrides {
            if patterns.is_empty() {
                continue;
            }
            let applied = self
                .node_index(*node)
                .map(|index| {
                    let controller = &mut self.controllers[index];
                    (0..LANES).all(|lane| {
                        let pattern = &patterns[lane.min(patterns.len() - 1)];
                        controller.override_backpressure(lane, pattern)
                    })
                })
                .unwrap_or(false);
            debug_assert!(applied, "node {node} is not a sink; cannot override back-pressure");
        }
    }

    /// [`LaneSimulation::reset`], additionally replacing the token-offer
    /// pattern of the named sources **in every lane** (broadcast).
    pub fn reset_with_source_patterns(&mut self, overrides: &[(NodeId, SourcePattern)]) {
        self.reset();
        for (node, pattern) in overrides {
            let applied = self
                .node_index(*node)
                .map(|index| {
                    let controller = &mut self.controllers[index];
                    (0..LANES).all(|lane| controller.override_source_pattern(lane, pattern))
                })
                .unwrap_or(false);
            debug_assert!(
                applied,
                "node {node} is not a source; cannot override its offer pattern"
            );
        }
    }

    /// [`LaneSimulation::reset`], additionally replacing each lane's
    /// token-offer pattern of the named sources individually: lane `ℓ` of a
    /// named source gets `patterns[min(ℓ, patterns.len() - 1)]` — 64 offer
    /// environments per simulation instance, the source-side mirror of
    /// [`LaneSimulation::reset_with_lane_sink_patterns`]. Empty pattern
    /// lists leave the source untouched. Data streams are kept: only *when*
    /// tokens are offered varies per lane, never their values.
    pub fn reset_with_lane_source_patterns(&mut self, overrides: &[(NodeId, Vec<SourcePattern>)]) {
        self.reset();
        for (node, patterns) in overrides {
            if patterns.is_empty() {
                continue;
            }
            let applied = self
                .node_index(*node)
                .map(|index| {
                    let controller = &mut self.controllers[index];
                    (0..LANES).all(|lane| {
                        let pattern = &patterns[lane.min(patterns.len() - 1)];
                        controller.override_source_pattern(lane, pattern)
                    })
                })
                .unwrap_or(false);
            debug_assert!(
                applied,
                "node {node} is not a source; cannot override its offer pattern"
            );
        }
    }

    /// [`LaneSimulation::reset`], additionally replacing the prediction
    /// policy of the named shared modules. Schedulers are stateful boxes
    /// (not clonable), so the injection is *lane-blocked*: `make(lane)` is
    /// invoked once per lane to build that lane's scheduler — pass a
    /// closure that ignores `lane` to broadcast one policy across the
    /// block, or derive the seed from `lane` to pack [`LANES`] adversarial
    /// runs into one instance. Overrides persist across later plain resets
    /// (which rewind them via `Scheduler::reset`), exactly like the scalar
    /// engine's [`crate::Simulation::reset_with_schedulers`].
    pub fn reset_with_schedulers(&mut self, overrides: &[(NodeId, &SchedulerFactory<'_>)]) {
        self.reset();
        for (node, make) in overrides {
            let applied = self
                .node_index(*node)
                .map(|index| {
                    let controller = &mut self.controllers[index];
                    (0..LANES).all(|lane| controller.override_scheduler(lane, make(lane)))
                })
                .unwrap_or(false);
            debug_assert!(applied, "node {node} is not a shared module; cannot override scheduler");
        }
    }

    fn node_index(&self, node: NodeId) -> Option<usize> {
        self.node_ids.iter().position(|&id| id == node)
    }

    fn eval_and_wake(&mut self, node: usize, optimistic: bool) {
        self.dirty.clear();
        let (inputs, outputs) = &self.node_ports[node];
        let mut io = LaneIo::tracked(
            &mut self.channels,
            inputs,
            outputs,
            &self.channel_widths,
            &mut self.dirty,
        );
        if optimistic {
            self.controllers[node].eval_optimistic(&mut io);
        } else {
            self.controllers[node].eval(&mut io);
        }
        self.controller_evals += 1;
        for &channel in &self.dirty {
            let producer = self.channel_producer[channel] as usize;
            let consumer = self.channel_consumer[channel] as usize;
            if producer == node && consumer == node {
                // Self-loop channel: re-enqueue the writer (see the scalar
                // engine for the full rationale) — a stable eval stops
                // producing changes, an oscillating one exhausts the budget.
                if self.reads_channels[node] {
                    self.worklist.push(node, self.rank[node] as usize);
                }
                continue;
            }
            for endpoint in [producer, consumer] {
                if endpoint != node && self.reads_channels[endpoint] {
                    self.worklist.push(endpoint, self.rank[endpoint] as usize);
                }
            }
        }
    }

    fn seed_worklist(&mut self) {
        for rank in 0..self.seed_buckets.len() {
            let bucket = &self.seed_buckets[rank];
            self.worklist.buckets[rank].extend_from_slice(bucket);
            for &node in bucket {
                self.worklist.queued[node as usize] = true;
            }
            self.worklist.len += bucket.len();
        }
        self.worklist.cursor = 0;
    }

    fn drain_worklist(&mut self, optimistic: bool, evals: &mut u64, eval_cap: u64) -> bool {
        while let Some(node) = self.worklist.pop() {
            *evals += 1;
            self.settle_iterations += 1;
            if *evals > eval_cap {
                self.oscillating.clear();
                self.oscillating.push(node as u32);
                while let Some(pending) = self.worklist.pop() {
                    self.oscillating.push(pending as u32);
                }
                return false;
            }
            self.eval_and_wake(node, optimistic);
        }
        true
    }

    fn settle_event_driven(&mut self) -> bool {
        debug_assert_eq!(self.worklist.len, 0, "worklist drained at end of previous cycle");
        let eval_cap =
            (self.settle_budget() as u64).saturating_mul(self.controllers.len().max(1) as u64);
        let mut evals_this_cycle = 0u64;

        self.seed_worklist();
        if !self.optimistic_nodes.is_empty() {
            if !self.drain_worklist(true, &mut evals_this_cycle, eval_cap) {
                return false;
            }
            for index in 0..self.optimistic_nodes.len() {
                let node = self.optimistic_nodes[index] as usize;
                self.worklist.push(node, self.rank[node] as usize);
            }
        }
        self.drain_worklist(false, &mut evals_this_cycle, eval_cap)
    }

    fn oscillation_witness(&self) -> OscillationWitness {
        let mut nodes: Vec<(NodeId, &'static str)> = self
            .oscillating
            .iter()
            .map(|&node| (self.node_ids[node as usize], self.node_kinds[node as usize]))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let mut channels: Vec<elastic_core::ChannelId> =
            self.dirty.iter().map(|&channel| self.channel_ids[channel]).collect();
        channels.sort_unstable();
        channels.dedup();
        OscillationWitness { nodes, channels }
    }

    fn record_traces(&mut self) {
        for lane in 0..LANES {
            for channel in 0..self.channels.channel_count() {
                self.state_scratch[channel] = self.channels.lane_state(channel, lane);
            }
            self.traces[lane].record(&self.state_scratch);
        }
    }

    fn accumulate_divergence(&mut self) {
        for channel in 0..self.channels.channel_count() {
            let fv = self.channels.forward_valid[channel];
            let fs = self.channels.forward_stop[channel];
            let bv = self.channels.backward_valid[channel];
            let bs = self.channels.backward_stop[channel];
            let mut diff = (fv ^ spread_lane0(fv))
                | (fs ^ spread_lane0(fs))
                | (bv ^ spread_lane0(bv))
                | (bs ^ spread_lane0(bs));
            let column = &self.channels.data[channel * LANES..][..LANES];
            let lane0 = column[0];
            for (lane, &value) in column.iter().enumerate().skip(1) {
                if value != lane0 {
                    diff |= 1u64 << lane;
                }
            }
            self.divergence[channel] |= diff;
        }
    }

    /// Simulates one clock cycle across all lanes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalLoop`] when the control words fail
    /// to settle.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.channels.clear();
        if !self.settle_event_driven() {
            return Err(SimError::CombinationalLoop {
                cycle: self.cycle,
                witness: self.oscillation_witness(),
            });
        }
        if self.config.record_trace {
            self.record_traces();
        }
        if self.config.track_divergence {
            self.accumulate_divergence();
        }
        for (index, controller) in self.controllers.iter_mut().enumerate() {
            let (inputs, outputs) = &self.node_ports[index];
            let io = LaneIo::untracked(&mut self.channels, inputs, outputs, &self.channel_widths);
            controller.commit(&io);
        }
        self.cycle += 1;
        Ok(())
    }

    /// Simulates `cycles` clock cycles across all lanes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LaneSimulation::step`].
    pub fn run(&mut self, cycles: u64) -> Result<(), SimError> {
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(())
    }

    /// One lane's accumulated report — field-for-field what the scalar
    /// engine's [`crate::Simulation::report`] returns for that lane's
    /// scenario, except that `settle_iterations` / `controller_evals`
    /// count **word** evaluations (shared across lanes) and
    /// [`SimulationReport::lane_divergence`] carries the whole divergence
    /// map.
    ///
    /// # Panics
    ///
    /// When `lane >= LANES`.
    pub fn report(&self, lane: usize) -> SimulationReport {
        assert!(lane < LANES, "lane {lane} out of range");
        let mut report = SimulationReport {
            cycles: self.cycle,
            settle_iterations: self.settle_iterations,
            controller_evals: self.controller_evals,
            trace_bytes: self.traces[lane].heap_bytes() as u64,
            lane_divergence: self.divergence.clone(),
            ..SimulationReport::default()
        };
        for (index, controller) in self.controllers.iter().enumerate() {
            let node = self.node_ids[index];
            let stats = controller.stats(lane);
            report.node_stats.insert(node, stats);
            match self.node_kinds[index] {
                "sink" => {
                    if let Some(stream) = controller.transfer_stream(lane) {
                        report.sink_streams.insert(node, stream.to_vec());
                    }
                }
                "source" => {
                    report.source_kills.insert(node, stats.killed_tokens);
                }
                "shared" => {
                    let (transfers_per_user, kills_per_user) =
                        controller.per_user_stats(lane).unwrap_or_default();
                    report.shared_stats.insert(
                        node,
                        SharedModuleStats {
                            mispredictions: stats.mispredictions,
                            transfers_per_user,
                            kills_per_user,
                        },
                    );
                }
                "commit" => {
                    if let Some(lane_stats) = controller.commit_stats(lane) {
                        report.commit_stats.insert(node, lane_stats);
                    }
                }
                _ => {}
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_mask_covers_the_edge_widths() {
        assert_eq!(width_mask(0), 0);
        assert_eq!(width_mask(1), 1);
        assert_eq!(width_mask(8), 0xFF);
        assert_eq!(width_mask(63), u64::MAX >> 1);
        assert_eq!(width_mask(64), u64::MAX);
    }

    #[test]
    fn spread_lane0_broadcasts_bit_zero() {
        assert_eq!(spread_lane0(0), 0);
        assert_eq!(spread_lane0(1), u64::MAX);
        assert_eq!(spread_lane0(0b10), 0);
        assert_eq!(spread_lane0(u64::MAX), u64::MAX);
    }

    #[test]
    fn for_each_lane_visits_set_bits_in_order() {
        let mut seen = Vec::new();
        for_each_lane(0b1010_0001, |lane| seen.push(lane));
        assert_eq!(seen, vec![0, 5, 7]);
        for_each_lane(0, |_| panic!("no bits set"));
    }
}
