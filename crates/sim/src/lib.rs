//! # elastic-sim
//!
//! A cycle-accurate simulator for synchronous elastic (SELF) netlists, the
//! evaluation substrate of the *Speculation in Elastic Systems* reproduction.
//!
//! The paper evaluates its speculative designs by generating Verilog for the
//! elastic controllers and simulating them together with a datapath model;
//! this crate plays that role in pure Rust. Each netlist node becomes a small
//! **controller** implementing the SELF handshake — elastic buffers with
//! configurable forward/backward latency, lazy joins, eager forks,
//! early-evaluation multiplexors that inject anti-tokens, and the speculative
//! shared module with a pluggable [`elastic_core::Scheduler`]. Channels carry
//! the full `(V+, S+, V-, S-)` control tuple plus a 64-bit data word; a clock
//! cycle is simulated by driving the combinational controllers to a fixed
//! point and then committing all sequential state at once.
//!
//! The fixed point is reached **event-driven**: controllers are seeded into a
//! worklist ordered by a static topological rank of the zero-delay control
//! dependency graph, every signal write is compare-and-set, and only the
//! controllers observing a changed channel are re-evaluated (see
//! [`engine`] for the algorithm and `README.md` for the design notes).
//! Registered-fed regions settle in one pass, mutually observing chains in a
//! few re-wake waves; the per-cycle work is proportional to the number of
//! signal changes, not `iterations × nodes`. The naive
//! full-sweep engine survives as [`SettleStrategy::FullSweep`], the oracle of
//! the engine-equivalence test suite.
//!
//! Main entry points:
//!
//! * [`Simulation`] — build from a [`elastic_core::Netlist`], run cycles,
//!   collect a [`SimulationReport`]; [`Simulation::reset`] (and the
//!   sink-pattern/scheduler variants) rewinds sequential state without
//!   re-validating or re-ranking, so sweeps re-run one build thousands of
//!   times;
//! * [`Trace`] — columnar, bit-packed per-channel per-cycle recording (four
//!   one-bit signal planes plus sparse width-adaptive data columns, ~4 bits
//!   per control channel per cycle) with streaming accessors
//!   ([`Trace::channel_iter`], [`Trace::states_at`],
//!   [`Trace::transfer_stream`]), used to reproduce Table 1 and by
//!   `elastic-verify`;
//! * [`scenarios`] — ready-to-run experiment setups for every figure/table of
//!   the paper, combining the netlist library of `elastic-core`, the
//!   workload generators of `elastic-datapath` and the schedulers of
//!   `elastic-predict`; the `*_sweep` variants fan independent runs across
//!   threads deterministically via [`sweep::parallel_map`], and per-worker
//!   state (one resettable simulation per thread) rides along via
//!   [`sweep::parallel_map_with`].
//!
//! ```
//! use elastic_core::library::{fig1a, Fig1Config};
//! use elastic_sim::{SimConfig, Simulation};
//!
//! let handles = fig1a(&Fig1Config::default());
//! let mut sim = Simulation::new(&handles.netlist, &SimConfig::default()).unwrap();
//! let report = sim.run(100).unwrap();
//! assert!(report.sink_transfers(handles.sink) > 90, "the Figure-1(a) loop runs at ~1 token/cycle");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codegen;
mod compiled;
pub mod controller;
pub mod controllers;
pub mod engine;
pub mod faults;
pub mod lanes;
pub mod metrics;
pub mod monitor;
pub mod scenarios;
pub mod signal;
pub mod sweep;
pub mod trace;

pub use engine::{OscillationWitness, SettleStrategy, SimConfig, SimError, Simulation};
pub use faults::{ByzantineScheduler, FaultKind, FaultPlan, FaultSpec, FaultStats};
pub use lanes::{LaneConfig, LaneSimulation, SchedulerFactory, LANES};
pub use metrics::{SharedModuleStats, SimulationReport};
pub use monitor::{CycleMonitor, MonitorViolation};
pub use signal::{ChannelPhase, ChannelState, TraceSymbol};
pub use trace::Trace;
