//! Simulation reports: throughput, transfer streams, prediction statistics.

use std::collections::BTreeMap;

use elastic_core::NodeId;

use crate::controller::NodeStats;
use crate::faults::FaultStats;

/// Statistics of one speculative shared module over a simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SharedModuleStats {
    /// Cycles in which a misprediction was detected.
    pub mispredictions: u64,
    /// Forward transfers per user channel (how often each user actually got
    /// the unit *and* the consumer used the result).
    pub transfers_per_user: Vec<u64>,
    /// Tokens per user channel that were cancelled by consumer anti-tokens.
    pub kills_per_user: Vec<u64>,
}

impl SharedModuleStats {
    /// Total useful transfers through the shared module.
    pub fn total_transfers(&self) -> u64 {
        self.transfers_per_user.iter().sum()
    }

    /// Fraction of decided outcomes (transfers plus kills) that were
    /// mispredicted; `None` when nothing was decided.
    pub fn misprediction_rate(&self) -> Option<f64> {
        let decided = self.total_transfers() + self.kills_per_user.iter().sum::<u64>();
        if decided == 0 {
            None
        } else {
            Some(self.mispredictions as f64 / decided as f64)
        }
    }
}

/// Statistics of one in-order commit stage over a simulation run.
///
/// The per-lane **peak occupancy** is the run-ahead the scheduler actually
/// achieved: a commit stage of depth `d` lets up to `d` speculative results
/// park per lane ahead of the resolution point, and the peak records how much
/// of that head-room a given workload ever used — the empirical side of the
/// depth-dependent area/occupancy model in `elastic-analysis`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommitStageStats {
    /// Configured per-lane FIFO depth.
    pub depth: u32,
    /// Results committed (delivered in operand order) per lane.
    pub commits_per_lane: Vec<u64>,
    /// Wrong-path results squashed in place per lane.
    pub squashes_per_lane: Vec<u64>,
    /// Highest simultaneous occupancy each lane ever reached.
    pub peak_occupancy_per_lane: Vec<u64>,
}

impl CommitStageStats {
    /// Total results committed across all lanes.
    pub fn total_commits(&self) -> u64 {
        self.commits_per_lane.iter().sum()
    }

    /// Total wrong-path results squashed across all lanes.
    pub fn total_squashes(&self) -> u64 {
        self.squashes_per_lane.iter().sum()
    }

    /// Mean of the per-lane peak occupancies; `None` for a lane-less stage.
    pub fn mean_peak_occupancy(&self) -> Option<f64> {
        if self.peak_occupancy_per_lane.is_empty() {
            None
        } else {
            Some(
                self.peak_occupancy_per_lane.iter().sum::<u64>() as f64
                    / self.peak_occupancy_per_lane.len() as f64,
            )
        }
    }
}

/// Summary of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimulationReport {
    /// Number of simulated cycles.
    pub cycles: u64,
    /// Settle iterations accumulated over all cycles: worklist pops for the
    /// event-driven engine, full sweeps for the reference engine. Exposed so
    /// that the asymptotic win of the worklist settle phase is observable.
    pub settle_iterations: u64,
    /// `Controller::eval` invocations accumulated over all cycles.
    pub controller_evals: u64,
    /// Heap bytes held by the recorded trace (bit-planes plus data columns;
    /// 0 when tracing is disabled). Together with
    /// [`SimulationReport::trace_bytes_per_cycle`] this is the observable
    /// behind the trace-memory numbers of `BENCH_trace_mem.json`.
    pub trace_bytes: u64,
    /// Transfer streams observed at each sink: `(cycle, value)` pairs.
    pub sink_streams: BTreeMap<NodeId, Vec<(u64, u64)>>,
    /// Tokens cancelled at each source by anti-tokens (speculation discards).
    pub source_kills: BTreeMap<NodeId, u64>,
    /// Per-node controller statistics.
    pub node_stats: BTreeMap<NodeId, NodeStats>,
    /// Per-shared-module speculation statistics.
    pub shared_stats: BTreeMap<NodeId, SharedModuleStats>,
    /// Per-commit-stage lane statistics (commits, squashes, peak occupancy).
    pub commit_stats: BTreeMap<NodeId, CommitStageStats>,
    /// Fault-injection counters (all zero when no [`crate::faults::FaultPlan`]
    /// was armed — a clean run).
    pub faults: FaultStats,
    /// `true` when the run was cut short by the wall-clock watchdog of
    /// [`crate::Simulation::run_with_deadline`]; the report then covers only
    /// the cycles that completed.
    pub deadline_exceeded: bool,
    /// Per-channel lane-divergence map from the 64-lane engine
    /// ([`crate::LaneSimulation::report`]), in dense channel order: bit `ℓ`
    /// of word `c` is set when lane `ℓ` ever differed from lane 0 on
    /// channel `c` (any control rail or the data column). Empty for the
    /// scalar engines and when divergence tracking is off.
    pub lane_divergence: Vec<u64>,
}

impl SimulationReport {
    /// Number of tokens accepted by the given sink.
    pub fn sink_transfers(&self, sink: NodeId) -> u64 {
        self.sink_streams.get(&sink).map(|s| s.len() as u64).unwrap_or(0)
    }

    /// The values accepted by the given sink, in transfer order.
    pub fn sink_values(&self, sink: NodeId) -> Vec<u64> {
        self.sink_streams
            .get(&sink)
            .map(|stream| stream.iter().map(|&(_, value)| value).collect())
            .unwrap_or_default()
    }

    /// Throughput at the given sink in tokens per cycle.
    pub fn throughput(&self, sink: NodeId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.sink_transfers(sink) as f64 / self.cycles as f64
        }
    }

    /// Total mispredictions across all shared modules.
    pub fn total_mispredictions(&self) -> u64 {
        self.shared_stats.values().map(|s| s.mispredictions).sum()
    }

    /// Total wrong-path results squashed across all commit stages.
    pub fn total_squashes(&self) -> u64 {
        self.commit_stats.values().map(|s| s.total_squashes()).sum()
    }

    /// Mean peak lane occupancy across all commit stages — how far ahead of
    /// the resolution point the schedulers actually ran; `None` when the
    /// design has no commit stage.
    pub fn mean_commit_occupancy(&self) -> Option<f64> {
        let peaks: Vec<f64> =
            self.commit_stats.values().filter_map(|s| s.mean_peak_occupancy()).collect();
        if peaks.is_empty() {
            None
        } else {
            Some(peaks.iter().sum::<f64>() / peaks.len() as f64)
        }
    }

    /// Trace memory per simulated cycle in bytes (0 when tracing was off).
    pub fn trace_bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.trace_bytes as f64 / self.cycles as f64
        }
    }

    /// Renders a short human-readable summary.
    pub fn summary(&self) -> String {
        let sinks: Vec<String> = self
            .sink_streams
            .iter()
            .map(|(sink, stream)| {
                format!("{sink}: {} transfers ({:.3}/cycle)", stream.len(), self.throughput(*sink))
            })
            .collect();
        format!(
            "{} cycles; sinks [{}]; {} misprediction(s)",
            self.cycles,
            sinks.join(", "),
            self.total_mispredictions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_transfers_over_cycles() {
        let mut report = SimulationReport { cycles: 100, ..SimulationReport::default() };
        let sink = NodeId::new(3);
        report.sink_streams.insert(sink, (0..50).map(|i| (i, i)).collect());
        assert_eq!(report.sink_transfers(sink), 50);
        assert!((report.throughput(sink) - 0.5).abs() < 1e-9);
        assert_eq!(report.sink_values(sink).len(), 50);
        assert_eq!(report.throughput(NodeId::new(9)), 0.0);
    }

    #[test]
    fn trace_bytes_per_cycle_divides_by_the_cycle_count() {
        let report =
            SimulationReport { cycles: 100, trace_bytes: 1600, ..SimulationReport::default() };
        assert!((report.trace_bytes_per_cycle() - 16.0).abs() < 1e-9);
        assert_eq!(SimulationReport::default().trace_bytes_per_cycle(), 0.0);
    }

    #[test]
    fn shared_stats_compute_misprediction_rate() {
        let stats = SharedModuleStats {
            mispredictions: 5,
            transfers_per_user: vec![40, 5],
            kills_per_user: vec![5, 50],
        };
        assert_eq!(stats.total_transfers(), 45);
        let rate = stats.misprediction_rate().unwrap();
        assert!((rate - 0.05).abs() < 1e-9);
        assert_eq!(SharedModuleStats::default().misprediction_rate(), None);
    }

    #[test]
    fn commit_stats_aggregate_lanes() {
        let stats = CommitStageStats {
            depth: 4,
            commits_per_lane: vec![10, 6],
            squashes_per_lane: vec![2, 3],
            peak_occupancy_per_lane: vec![4, 2],
        };
        assert_eq!(stats.total_commits(), 16);
        assert_eq!(stats.total_squashes(), 5);
        assert!((stats.mean_peak_occupancy().unwrap() - 3.0).abs() < 1e-9);
        assert_eq!(CommitStageStats::default().mean_peak_occupancy(), None);

        let mut report = SimulationReport::default();
        report.commit_stats.insert(NodeId::new(7), stats);
        assert_eq!(report.total_squashes(), 5);
        assert!((report.mean_commit_occupancy().unwrap() - 3.0).abs() < 1e-9);
        assert_eq!(SimulationReport::default().mean_commit_occupancy(), None);
    }

    #[test]
    fn summary_mentions_sinks_and_mispredictions() {
        let mut report = SimulationReport { cycles: 10, ..SimulationReport::default() };
        report.sink_streams.insert(NodeId::new(1), vec![(0, 1)]);
        report.shared_stats.insert(
            NodeId::new(2),
            SharedModuleStats { mispredictions: 2, ..SharedModuleStats::default() },
        );
        let text = report.summary();
        assert!(text.contains("10 cycles"));
        assert!(text.contains("misprediction"));
        assert_eq!(report.total_mispredictions(), 2);
    }
}
