//! Streaming runtime monitors: fail-fast invariant checking during a run.
//!
//! The trace-based checkers of `elastic-verify` deliver an *end-of-run*
//! verdict; a monitor instead observes the settled channel signals **every
//! cycle**, as the simulation produces them, and trips the moment an
//! invariant breaks — with a precise `(channel, cycle, invariant)` locus.
//! [`crate::Simulation::run_monitored`] drives any set of monitors and turns
//! the first trip into [`crate::SimError::MonitorTripped`], so a faulted run
//! stops at the violation instead of simulating garbage for thousands of
//! cycles and leaving the diagnosis to a post-mortem.
//!
//! The trait lives in `elastic-sim` (the engine must drive it); the concrete
//! SELF-invariant monitors — protocol, progress/deadlock, leads-to,
//! reference-stream scoreboard — live in `elastic-verify::monitor`, next to
//! the trace checkers they mirror.

use std::fmt;

use elastic_core::ChannelId;

use crate::signal::ChannelState;

/// The locus of one runtime-monitor trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorViolation {
    /// Name of the monitor that tripped.
    pub monitor: &'static str,
    /// The invariant that broke (e.g. `Retry+`, `Progress`, `LeadsTo`).
    pub invariant: &'static str,
    /// The channel at fault, when the invariant is channel-local.
    pub channel: Option<ChannelId>,
    /// The cycle in which the invariant was violated. For one-cycle-delayed
    /// detections (persistence checks compare consecutive cycles) this is
    /// the cycle of the offending state, one before the detection cycle.
    pub cycle: u64,
    /// Human-readable diagnosis (channel names, signal values, wait-for
    /// analysis — whatever the monitor can say about *why*).
    pub details: String,
}

impl fmt::Display for MonitorViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} violated at cycle {}", self.monitor, self.invariant, self.cycle)?;
        if let Some(channel) = self.channel {
            write!(f, " on channel {channel}")?;
        }
        if !self.details.is_empty() {
            write!(f, ": {}", self.details)?;
        }
        Ok(())
    }
}

/// A streaming invariant checker driven by the engine once per cycle.
///
/// `observe` receives the **settled** signals of the cycle (after fault
/// injection, before the clock edge is visible to the next cycle), indexed
/// densely in the netlist's `live_channels()` enumeration order — the same
/// order [`crate::Trace`] records. Implementations must be deterministic;
/// the first `Err` aborts the run fail-fast.
pub trait CycleMonitor: fmt::Debug + Send {
    /// Stable monitor name (the `monitor` field of any violation it emits).
    fn name(&self) -> &'static str;

    /// Checks one cycle's settled signals.
    ///
    /// # Errors
    ///
    /// The violation that aborts the run, if an invariant broke.
    fn observe(&mut self, cycle: u64, channels: &[ChannelState]) -> Result<(), MonitorViolation>;

    /// End-of-run check (completeness obligations that only make sense once
    /// the run is over, e.g. a reference stream that must be fully
    /// reproduced). The default does nothing.
    ///
    /// # Errors
    ///
    /// The violation that fails the run retrospectively.
    fn finish(&mut self, cycles: u64) -> Result<(), MonitorViolation> {
        let _ = cycles;
        Ok(())
    }

    /// Rewinds the monitor to its initial state so it can observe a fresh
    /// run (mirrors [`crate::Simulation::reset`]).
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_render_their_locus() {
        let violation = MonitorViolation {
            monitor: "protocol",
            invariant: "Retry+",
            channel: Some(ChannelId::new(3)),
            cycle: 17,
            details: "stopped token retracted".into(),
        };
        let text = violation.to_string();
        assert!(text.contains("protocol"));
        assert!(text.contains("Retry+"));
        assert!(text.contains("cycle 17"));
        assert!(text.contains("retracted"));

        let bare = MonitorViolation {
            monitor: "progress",
            invariant: "Progress",
            channel: None,
            cycle: 2,
            details: String::new(),
        };
        assert!(!bare.to_string().contains("channel"));
    }
}
