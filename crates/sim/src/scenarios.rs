//! Ready-to-run experiment scenarios for the paper's figures and tables.
//!
//! Each function combines a netlist from `elastic_core::library`, workloads
//! from `elastic_datapath::workload` and (where relevant) a scheduler from
//! `elastic-predict`, runs the cycle-accurate simulation and returns the
//! metrics the paper reports. The benchmark harness (`crates/bench`) and the
//! runnable examples are thin wrappers over this module, so every number in
//! `EXPERIMENTS.md` can be regenerated from library code alone.

use elastic_core::kind::DataStream;
use elastic_core::library::{
    self, Fig1Config, Fig1Handles, ResilientConfig, Table1Handles, VarLatencyConfig,
};
use elastic_core::{NodeId, SchedulerKind};
use elastic_datapath::workload;

use crate::engine::{SimConfig, SimError, Simulation};
use crate::metrics::SimulationReport;
use crate::sweep::parallel_map;
use crate::trace::Trace;

/// The four Figure-1 design points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig1Variant {
    /// Figure 1(a): the non-speculative loop.
    NonSpeculative,
    /// Figure 1(b): bubble insertion on the critical path.
    BubbleInsertion,
    /// Figure 1(c): Shannon decomposition (duplicated logic).
    Shannon,
    /// Figure 1(d): speculation with a shared module.
    Speculation,
}

impl Fig1Variant {
    /// All four variants in paper order.
    pub fn all() -> [Fig1Variant; 4] {
        [
            Fig1Variant::NonSpeculative,
            Fig1Variant::BubbleInsertion,
            Fig1Variant::Shannon,
            Fig1Variant::Speculation,
        ]
    }

    /// Paper label of the variant.
    pub fn label(&self) -> &'static str {
        match self {
            Fig1Variant::NonSpeculative => "fig1a-nonspeculative",
            Fig1Variant::BubbleInsertion => "fig1b-bubble",
            Fig1Variant::Shannon => "fig1c-shannon",
            Fig1Variant::Speculation => "fig1d-speculation",
        }
    }
}

/// Parameters of a Figure-1 experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Scenario {
    /// Which design point to build.
    pub variant: Fig1Variant,
    /// Probability that the select stream chooses data input 1 ("taken").
    pub taken_rate: f64,
    /// Scheduler policy for the speculative variant.
    pub scheduler: SchedulerKind,
    /// Number of cycles to simulate.
    pub cycles: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Fig1Scenario {
    fn default() -> Self {
        Fig1Scenario {
            variant: Fig1Variant::Speculation,
            taken_rate: 0.3,
            scheduler: SchedulerKind::LastTaken,
            cycles: 1000,
            seed: 1,
        }
    }
}

/// Outcome of a Figure-1 experiment run.
#[derive(Debug, Clone)]
pub struct Fig1Outcome {
    /// The design point that was simulated.
    pub variant: Fig1Variant,
    /// Tokens delivered to the sink per cycle.
    pub throughput: f64,
    /// Mispredictions observed in the shared module (speculative variant only).
    pub mispredictions: u64,
    /// The constructed design (for follow-up analysis: area, cycle time, …).
    pub handles: Fig1Handles,
    /// The full simulation report.
    pub report: SimulationReport,
}

/// Builds the netlist for one Figure-1 design point with a select stream of
/// the given taken bias.
pub fn build_fig1(scenario: &Fig1Scenario) -> Fig1Handles {
    let values = workload::biased_select_values(8, scenario.taken_rate, 4096, scenario.seed);
    let config = Fig1Config {
        src0_data: DataStream::List(values.clone()),
        src1_data: DataStream::List(values.iter().map(|v| v ^ 0x80).collect()),
        scheduler: scenario.scheduler.clone(),
        ..Fig1Config::default()
    };
    match scenario.variant {
        Fig1Variant::NonSpeculative => library::fig1a(&config),
        Fig1Variant::BubbleInsertion => library::fig1b(&config),
        Fig1Variant::Shannon => library::fig1c(&config),
        Fig1Variant::Speculation => library::fig1d(&config),
    }
}

/// Runs one Figure-1 design point.
///
/// # Errors
///
/// Propagates simulation failures (which would indicate a bug in the
/// transformation or controller models).
pub fn run_fig1(scenario: &Fig1Scenario) -> Result<Fig1Outcome, SimError> {
    let handles = build_fig1(scenario);
    let mut sim = Simulation::new(
        &handles.netlist,
        &SimConfig { record_trace: false, ..SimConfig::default() },
    )?;
    let report = sim.run(scenario.cycles)?;
    Ok(Fig1Outcome {
        variant: scenario.variant,
        throughput: report.throughput(handles.sink),
        mispredictions: report.total_mispredictions(),
        handles,
        report,
    })
}

/// Runs a batch of Figure-1 design points in parallel (one simulation per
/// thread, results in input order).
///
/// Every run builds its own netlist and simulation from the scenario alone,
/// so the outcome vector is identical to mapping [`run_fig1`] sequentially —
/// same throughputs, same misprediction counts, same seeds — just faster on
/// multi-core hosts.
///
/// # Errors
///
/// Returns the first (in input order) simulation failure, like the
/// sequential loop it replaces.
pub fn run_fig1_sweep(scenarios: &[Fig1Scenario]) -> Result<Vec<Fig1Outcome>, SimError> {
    parallel_map(scenarios, |_, scenario| run_fig1(scenario)).into_iter().collect()
}

/// Runs the Figure-6 comparison at several error rates in parallel, results
/// in input order (the parallel counterpart of mapping [`run_var_latency`]).
///
/// # Errors
///
/// Returns the first (in input order) simulation failure.
pub fn run_var_latency_sweep(
    error_rates: &[f64],
    cycles: u64,
    seed: u64,
) -> Result<Vec<VarLatencyOutcome>, SimError> {
    parallel_map(error_rates, |_, &error_rate| run_var_latency(error_rate, cycles, seed))
        .into_iter()
        .collect()
}

/// Runs the Figure-7 comparison at several soft-error rates in parallel,
/// results in input order (the parallel counterpart of mapping
/// [`run_resilient`]).
///
/// # Errors
///
/// Returns the first (in input order) simulation failure.
pub fn run_resilient_sweep(
    upset_rates: &[f64],
    cycles: u64,
    seed: u64,
) -> Result<Vec<ResilientOutcome>, SimError> {
    parallel_map(upset_rates, |_, &upset_rate| run_resilient(upset_rate, cycles, seed))
        .into_iter()
        .collect()
}

/// Runs the Table-1 reproduction: the Figure-1(d) structure with the paper's
/// pinned select and schedule streams, traced cycle by cycle.
///
/// Returns the netlist handles, the recorded trace and the simulation report.
/// The returned [`Trace`] is the columnar bit-packed store — cloning it out
/// of the simulation costs a few plane words and data columns, not
/// `16 · channels` bytes per cycle — and is consumed through its streaming
/// accessors ([`Trace::channel_iter`], [`Trace::symbol_row`],
/// [`Trace::render_table`]).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_table1(cycles: u64) -> Result<(Table1Handles, Trace, SimulationReport), SimError> {
    let handles = library::table1();
    let mut sim = Simulation::new(&handles.netlist, &SimConfig::default())?;
    let report = sim.run(cycles)?;
    Ok((handles, sim.trace().clone(), report))
}

/// Outcome of the variable-latency comparison (Figure 6).
#[derive(Debug, Clone)]
pub struct VarLatencyOutcome {
    /// Fraction of operand pairs whose approximation fails.
    pub error_rate: f64,
    /// Throughput of the stalling design of Figure 6(a).
    pub stalling_throughput: f64,
    /// Throughput of the speculative design of Figure 6(b).
    pub speculative_throughput: f64,
    /// Mispredictions (replays) observed in the speculative design.
    pub replays: u64,
    /// The stalling design, for cost analysis.
    pub stalling: elastic_core::library::VarLatencyHandles,
    /// The speculative design, for cost analysis.
    pub speculative: elastic_core::library::VarLatencyHandles,
}

/// Runs the Figure-6 comparison at one approximation-error rate.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_var_latency(
    error_rate: f64,
    cycles: u64,
    seed: u64,
) -> Result<VarLatencyOutcome, SimError> {
    let (operands_a, operands_b) =
        workload::approx_error_operands(8, 4, error_rate, cycles as usize + 8, seed);
    let config = VarLatencyConfig {
        width: 8,
        spec_bits: 4,
        operands_a,
        operands_b,
        ..VarLatencyConfig::default()
    };

    let stalling = library::variable_latency_stalling(&config);
    let mut sim = Simulation::new(
        &stalling.netlist,
        &SimConfig { record_trace: false, ..SimConfig::default() },
    )?;
    let stalling_report = sim.run(cycles)?;

    let speculative = library::variable_latency_speculative(&config);
    let mut sim = Simulation::new(
        &speculative.netlist,
        &SimConfig { record_trace: false, ..SimConfig::default() },
    )?;
    let speculative_report = sim.run(cycles)?;

    Ok(VarLatencyOutcome {
        error_rate,
        stalling_throughput: stalling_report.throughput(stalling.sink),
        speculative_throughput: speculative_report.throughput(speculative.sink),
        replays: speculative_report.total_mispredictions(),
        stalling,
        speculative,
    })
}

/// Outcome of the resilient-adder comparison (Figure 7).
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// Probability of a soft error hitting the stored codeword per cycle.
    pub upset_rate: f64,
    /// Throughput of the unprotected accumulator baseline.
    pub unprotected_throughput: f64,
    /// Throughput of the non-speculative resilient design of Figure 7(a).
    pub nonspeculative_throughput: f64,
    /// Throughput of the speculative resilient design of Figure 7(b).
    pub speculative_throughput: f64,
    /// Replays (mispredictions) observed in the speculative design.
    pub replays: u64,
    /// The three designs, for cost analysis.
    pub designs: ResilientDesigns,
}

/// The three resilient-accumulator design points.
#[derive(Debug, Clone)]
pub struct ResilientDesigns {
    /// Unprotected baseline.
    pub unprotected: elastic_core::library::ResilientHandles,
    /// Figure 7(a).
    pub nonspeculative: elastic_core::library::ResilientHandles,
    /// Figure 7(b).
    pub speculative: elastic_core::library::ResilientHandles,
}

/// Runs the Figure-7 comparison at one soft-error rate.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_resilient(
    upset_rate: f64,
    cycles: u64,
    seed: u64,
) -> Result<ResilientOutcome, SimError> {
    let data_width = 32u8;
    let codeword_width = elastic_core::op::secded_codeword_width(data_width);
    let operands = workload::uniform_operands(data_width, cycles as usize + 8, seed);
    let error_masks =
        workload::soft_error_masks(codeword_width, upset_rate, cycles as usize + 8, seed ^ 0xABCD);
    let config = ResilientConfig { data_width, operands, error_masks };

    let unprotected = library::resilient_unprotected(&config);
    let nonspeculative = library::resilient_nonspeculative(&config);
    let speculative = library::resilient_speculative(&config);

    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    let unprotected_report = Simulation::new(&unprotected.netlist, &quiet)?.run(cycles)?;
    let nonspeculative_report = Simulation::new(&nonspeculative.netlist, &quiet)?.run(cycles)?;
    let speculative_report = Simulation::new(&speculative.netlist, &quiet)?.run(cycles)?;

    Ok(ResilientOutcome {
        upset_rate,
        unprotected_throughput: unprotected_report.throughput(unprotected.sink),
        nonspeculative_throughput: nonspeculative_report.throughput(nonspeculative.sink),
        speculative_throughput: speculative_report.throughput(speculative.sink),
        replays: speculative_report.total_mispredictions(),
        designs: ResilientDesigns { unprotected, nonspeculative, speculative },
    })
}

/// Sink node of the handles produced by [`build_fig1`] (convenience for
/// callers that only keep the netlist).
pub fn fig1_sink(handles: &Fig1Handles) -> NodeId {
    handles.sink
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_nonspeculative_runs_at_full_throughput() {
        let scenario = Fig1Scenario {
            variant: Fig1Variant::NonSpeculative,
            cycles: 200,
            ..Fig1Scenario::default()
        };
        let outcome = run_fig1(&scenario).unwrap();
        assert!(
            outcome.throughput > 0.9,
            "fig1(a) should run at ~1 token/cycle, got {}",
            outcome.throughput
        );
    }

    #[test]
    fn fig1_bubble_insertion_halves_the_throughput() {
        let scenario = Fig1Scenario {
            variant: Fig1Variant::BubbleInsertion,
            cycles: 400,
            ..Fig1Scenario::default()
        };
        let outcome = run_fig1(&scenario).unwrap();
        assert!(
            (outcome.throughput - 0.5).abs() < 0.05,
            "fig1(b) throughput should be ~1/2, got {}",
            outcome.throughput
        );
    }

    #[test]
    fn fig1_shannon_restores_full_throughput() {
        let scenario =
            Fig1Scenario { variant: Fig1Variant::Shannon, cycles: 400, ..Fig1Scenario::default() };
        let outcome = run_fig1(&scenario).unwrap();
        assert!(
            outcome.throughput > 0.9,
            "fig1(c) should run at ~1 token/cycle, got {}",
            outcome.throughput
        );
    }

    #[test]
    fn fig1_speculation_approaches_shannon_with_a_biased_stream() {
        let biased = run_fig1(&Fig1Scenario {
            variant: Fig1Variant::Speculation,
            taken_rate: 0.05,
            scheduler: SchedulerKind::LastTaken,
            cycles: 600,
            seed: 3,
        })
        .unwrap();
        assert!(
            biased.throughput > 0.85,
            "a highly biased select stream should keep speculation near 1 token/cycle, got {}",
            biased.throughput
        );
        let adversarial = run_fig1(&Fig1Scenario {
            variant: Fig1Variant::Speculation,
            taken_rate: 0.5,
            scheduler: SchedulerKind::Static(0),
            cycles: 600,
            seed: 3,
        })
        .unwrap();
        assert!(
            adversarial.throughput < biased.throughput,
            "random selects with a static scheduler must mispredict more"
        );
        assert!(adversarial.mispredictions > 0);
    }

    #[test]
    fn parallel_fig1_sweep_matches_sequential_runs() {
        let scenarios: Vec<Fig1Scenario> = Fig1Variant::all()
            .into_iter()
            .map(|variant| Fig1Scenario { variant, cycles: 300, ..Fig1Scenario::default() })
            .collect();
        let parallel = run_fig1_sweep(&scenarios).unwrap();
        for (scenario, outcome) in scenarios.iter().zip(&parallel) {
            let sequential = run_fig1(scenario).unwrap();
            assert_eq!(outcome.variant, scenario.variant, "input order preserved");
            assert_eq!(outcome.throughput, sequential.throughput);
            assert_eq!(outcome.mispredictions, sequential.mispredictions);
            assert_eq!(outcome.report.sink_streams, sequential.report.sink_streams);
        }
    }

    #[test]
    fn parallel_resilient_sweep_matches_sequential_runs() {
        let rates = [0.0, 0.05, 0.1];
        let parallel = run_resilient_sweep(&rates, 150, 11).unwrap();
        for (&rate, outcome) in rates.iter().zip(&parallel) {
            let sequential = run_resilient(rate, 150, 11).unwrap();
            assert_eq!(outcome.upset_rate, rate, "input order preserved");
            assert_eq!(outcome.speculative_throughput, sequential.speculative_throughput);
            assert_eq!(outcome.replays, sequential.replays);
        }
    }

    #[test]
    fn var_latency_speculation_beats_stalling_at_low_error_rates() {
        let outcome = run_var_latency(0.1, 300, 5).unwrap();
        assert!(
            outcome.speculative_throughput >= outcome.stalling_throughput - 0.02,
            "speculative {} vs stalling {}",
            outcome.speculative_throughput,
            outcome.stalling_throughput
        );
        assert!(outcome.stalling_throughput > 0.7);
    }

    #[test]
    fn resilient_speculation_recovers_the_unprotected_throughput_when_error_free() {
        let outcome = run_resilient(0.0, 300, 7).unwrap();
        assert!(
            outcome.unprotected_throughput > 0.9,
            "unprotected accumulator should run at ~1, got {}",
            outcome.unprotected_throughput
        );
        assert!(
            outcome.speculative_throughput > outcome.nonspeculative_throughput + 0.2,
            "speculation must recover the SECDED pipeline stage: spec {} vs nonspec {}",
            outcome.speculative_throughput,
            outcome.nonspeculative_throughput
        );
        assert_eq!(outcome.replays, 0, "no soft errors, no replays");
    }

    #[test]
    fn resilient_speculation_loses_one_cycle_per_error() {
        let clean = run_resilient(0.0, 400, 11).unwrap();
        let noisy = run_resilient(0.05, 400, 11).unwrap();
        assert!(noisy.replays > 0);
        assert!(
            noisy.speculative_throughput < clean.speculative_throughput,
            "soft errors must cost replay cycles"
        );
        assert!(
            noisy.speculative_throughput > clean.speculative_throughput - 0.15,
            "a 5% upset rate should cost roughly 5% of the cycles"
        );
    }
}
