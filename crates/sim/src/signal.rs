//! Channel signal state: the SELF handshake tuple plus the data word.

/// The value of one elastic channel during one clock cycle.
///
/// Signal ownership follows the SELF protocol: the **producer** (the node
/// whose output port the channel leaves) drives `forward_valid` (`V+`),
/// `data` and `backward_stop` (`S-`); the **consumer** drives `forward_stop`
/// (`S+`) and `backward_valid` (`V-`). Tokens travel forward under
/// `(V+, S+)`, anti-tokens travel backward under `(V-, S-)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelState {
    /// `V+`: the producer offers a token.
    pub forward_valid: bool,
    /// `S+`: the consumer refuses the token this cycle.
    pub forward_stop: bool,
    /// `V-`: the consumer sends an anti-token backwards.
    pub backward_valid: bool,
    /// `S-`: the producer refuses the anti-token this cycle.
    pub backward_stop: bool,
    /// The data word accompanying `V+`.
    pub data: u64,
}

impl ChannelState {
    /// `true` when a token transfers through the channel this cycle
    /// (`V+ ∧ ¬S+`), unless it is annihilated by a simultaneous anti-token.
    pub fn forward_transfer(&self) -> bool {
        self.forward_valid && !self.forward_stop && !self.backward_transfer()
    }

    /// `true` when an anti-token transfers backwards (`V- ∧ ¬S-`).
    pub fn backward_transfer(&self) -> bool {
        self.backward_valid && !self.backward_stop
    }

    /// `true` when a token and an anti-token meet on the channel and cancel
    /// each other this cycle.
    pub fn annihilation(&self) -> bool {
        self.forward_valid && self.backward_transfer()
    }

    /// `true` when the producer offers a token that the consumer stops
    /// (a *Retry* cycle of the forward handshake).
    pub fn forward_retry(&self) -> bool {
        self.forward_valid && self.forward_stop && !self.backward_transfer()
    }

    /// Classification of the forward handshake for this cycle.
    pub fn forward_phase(&self) -> ChannelPhase {
        if self.forward_transfer() || self.annihilation() {
            ChannelPhase::Transfer
        } else if self.forward_retry() {
            ChannelPhase::Retry
        } else {
            ChannelPhase::Idle
        }
    }

    /// Classification of the backward (anti-token) handshake for this cycle.
    pub fn backward_phase(&self) -> ChannelPhase {
        if self.backward_transfer() {
            ChannelPhase::Transfer
        } else if self.backward_valid {
            ChannelPhase::Retry
        } else {
            ChannelPhase::Idle
        }
    }

    /// The symbol used in Table-1 style traces: a data token, an anti-token
    /// (`-` in the paper), or a bubble (`*`).
    pub fn symbol(&self) -> TraceSymbol {
        if self.backward_valid {
            TraceSymbol::AntiToken
        } else if self.forward_valid {
            TraceSymbol::Token(self.data)
        } else {
            TraceSymbol::Bubble
        }
    }
}

/// Phase of one direction of the SELF handshake, following the protocol's
/// `(I*R*T)*` language: Idle, Retry or Transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelPhase {
    /// No valid item offered.
    Idle,
    /// A valid item is offered but stopped.
    Retry,
    /// A valid item is accepted (or cancels against its dual).
    Transfer,
}

/// The per-cycle channel content as printed in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceSymbol {
    /// A valid data token with its value.
    Token(u64),
    /// An anti-token travelling backwards (`-` in the paper).
    AntiToken,
    /// Neither a token nor an anti-token (`*` in the paper).
    Bubble,
}

impl std::fmt::Display for TraceSymbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSymbol::Token(value) => write!(f, "{value:#x}"),
            TraceSymbol::AntiToken => write!(f, "-"),
            TraceSymbol::Bubble => write!(f, "*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_requires_valid_and_not_stop() {
        let state = ChannelState { forward_valid: true, ..ChannelState::default() };
        assert!(state.forward_transfer());
        assert_eq!(state.forward_phase(), ChannelPhase::Transfer);

        let stopped = ChannelState { forward_valid: true, forward_stop: true, ..state };
        assert!(!stopped.forward_transfer());
        assert_eq!(stopped.forward_phase(), ChannelPhase::Retry);

        let idle = ChannelState::default();
        assert_eq!(idle.forward_phase(), ChannelPhase::Idle);
    }

    #[test]
    fn annihilation_consumes_both_token_and_anti_token() {
        let state =
            ChannelState { forward_valid: true, backward_valid: true, ..ChannelState::default() };
        assert!(state.annihilation());
        assert!(!state.forward_transfer(), "an annihilated token is not delivered downstream");
        assert!(state.backward_transfer());
        assert_eq!(state.forward_phase(), ChannelPhase::Transfer);
    }

    #[test]
    fn stopped_anti_tokens_are_backward_retries() {
        let state =
            ChannelState { backward_valid: true, backward_stop: true, ..ChannelState::default() };
        assert_eq!(state.backward_phase(), ChannelPhase::Retry);
        assert!(!state.backward_transfer());
    }

    #[test]
    fn symbols_match_the_paper_notation() {
        let token = ChannelState { forward_valid: true, data: 0xA1, ..ChannelState::default() };
        assert_eq!(token.symbol(), TraceSymbol::Token(0xA1));
        assert_eq!(token.symbol().to_string(), "0xa1");

        let anti = ChannelState { backward_valid: true, ..ChannelState::default() };
        assert_eq!(anti.symbol(), TraceSymbol::AntiToken);
        assert_eq!(anti.symbol().to_string(), "-");

        assert_eq!(ChannelState::default().symbol(), TraceSymbol::Bubble);
        assert_eq!(ChannelState::default().symbol().to_string(), "*");
    }
}
