//! Deterministic parallel execution of independent simulation runs.
//!
//! Scenario sweeps (Figure-1 design points, Figure-6/7 rate curves) and the
//! bounded exploration of `elastic-verify` are embarrassingly parallel: every
//! run builds its own [`crate::Simulation`] from shared read-only inputs.
//! [`parallel_map`] fans such runs across OS threads with `std::thread::scope`
//! (the container image has no access to crates.io, so `rayon` is not
//! available) and collects the results **in input order**, so a parallel
//! sweep is observationally identical to the sequential loop it replaces:
//! same results, same order, same seeds.
//!
//! Work is handed out via an atomic cursor, so threads steal the next index
//! whenever they finish one — imbalanced run lengths (e.g. exploration
//! patterns that deadlock early) do not serialize the sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for a sweep of `items` independent runs:
/// the available hardware parallelism, capped by the item count.
pub fn sweep_threads(items: usize) -> usize {
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hardware.min(items).max(1)
}

/// Applies `run` to every index/item pair of `items` in parallel and returns
/// the results in input order.
///
/// `run` must be deterministic per item for the sweep to be reproducible —
/// all the sweeps in this workspace derive their seeds from the item, never
/// from global state. Panics in `run` propagate to the caller.
pub fn parallel_map<T, R, F>(items: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, || (), |(), index, item| run(index, item))
}

/// [`parallel_map`] with per-worker scratch state: every worker thread builds
/// one `S` via `init` — lazily, on its first item — and hands a mutable
/// reference to every `run` it executes.
///
/// This is the backbone of the zero-rebuild exploration sweeps: the scratch
/// state is a [`crate::Simulation`], built **once per worker thread** and
/// [`crate::Simulation::reset`] per item, instead of `netlist.clone()` +
/// `Simulation::new` per run. For results to stay input-order deterministic,
/// `run` must leave `S` in an item-independent state (a reset simulation
/// qualifies) — the item→worker assignment is scheduling-dependent.
///
/// Workers steal the next index from an atomic cursor whenever they finish
/// one, so imbalanced run lengths do not serialize the sweep; a worker that
/// never receives an item never calls `init`.
pub fn parallel_map_with<T, S, R, I, F>(items: &[T], init: I, run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = sweep_threads(items.len());
    if threads <= 1 {
        let mut state: Option<S> = None;
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| run(state.get_or_insert_with(&init), index, item))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state: Option<S> = None;
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    let result = run(state.get_or_insert_with(&init), index, &items[index]);
                    slots.lock().expect("no panics while holding the slot lock")[index] =
                        Some(result);
                }
            });
        }
    });

    slots
        .into_inner()
        .expect("worker threads have exited")
        .iter_mut()
        .map(|slot| slot.take().expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, |_, &item| item * 2);
        assert_eq!(doubled, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u64> = (0..257).collect();
        let results = parallel_map(&items, |index, &item| {
            counter.fetch_add(1, Ordering::Relaxed);
            (index as u64, item)
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert!(results.iter().all(|&(index, item)| index == item));
    }

    #[test]
    fn empty_and_single_item_sweeps_work() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |_, &item| item).is_empty());
        assert_eq!(parallel_map(&[42u64], |_, &item| item + 1), vec![43]);
    }

    #[test]
    fn per_worker_state_is_initialized_at_most_once_per_thread() {
        let inits = AtomicU64::new(0);
        let items: Vec<u64> = (0..64).collect();
        let results = parallel_map_with(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |scratch, _, &item| {
                *scratch += 1;
                (item, *scratch)
            },
        );
        let threads = sweep_threads(items.len()) as u64;
        let init_count = inits.load(Ordering::Relaxed);
        assert!(init_count >= 1 && init_count <= threads, "{init_count} inits, {threads} workers");
        // Every item was processed exactly once, in order, and the per-worker
        // counters account for all of them together.
        assert!(results.iter().enumerate().all(|(index, &(item, _))| index as u64 == item));
        // The scratch counters are per worker, so no counter can exceed the
        // total item count and every run observed a counter of at least 1.
        assert!(results.iter().all(|&(_, seen)| (1..=64).contains(&seen)));
    }

    #[test]
    fn thread_count_is_capped_by_item_count() {
        assert_eq!(sweep_threads(0), 1);
        assert_eq!(sweep_threads(1), 1);
        assert!(sweep_threads(1_000_000) >= 1);
    }
}
