//! Deterministic parallel execution of independent simulation runs.
//!
//! Scenario sweeps (Figure-1 design points, Figure-6/7 rate curves) and the
//! bounded exploration of `elastic-verify` are embarrassingly parallel: every
//! run builds its own [`crate::Simulation`] from shared read-only inputs.
//! [`parallel_map`] fans such runs across OS threads with `std::thread::scope`
//! (the container image has no access to crates.io, so `rayon` is not
//! available) and collects the results **in input order**, so a parallel
//! sweep is observationally identical to the sequential loop it replaces:
//! same results, same order, same seeds.
//!
//! Work is handed out via an atomic cursor, so threads steal the next index
//! whenever they finish one — imbalanced run lengths (e.g. exploration
//! patterns that deadlock early) do not serialize the sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for a sweep of `items` independent runs:
/// the available hardware parallelism, capped by the item count.
pub fn sweep_threads(items: usize) -> usize {
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hardware.min(items).max(1)
}

/// Applies `run` to every index/item pair of `items` in parallel and returns
/// the results in input order.
///
/// `run` must be deterministic per item for the sweep to be reproducible —
/// all the sweeps in this workspace derive their seeds from the item, never
/// from global state. Panics in `run` propagate to the caller.
pub fn parallel_map<T, R, F>(items: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = sweep_threads(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(index, item)| run(index, item)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let result = run(index, &items[index]);
                slots.lock().expect("no panics while holding the slot lock")[index] = Some(result);
            });
        }
    });

    slots
        .into_inner()
        .expect("worker threads have exited")
        .iter_mut()
        .map(|slot| slot.take().expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, |_, &item| item * 2);
        assert_eq!(doubled, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u64> = (0..257).collect();
        let results = parallel_map(&items, |index, &item| {
            counter.fetch_add(1, Ordering::Relaxed);
            (index as u64, item)
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert!(results.iter().all(|&(index, item)| index == item));
    }

    #[test]
    fn empty_and_single_item_sweeps_work() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |_, &item| item).is_empty());
        assert_eq!(parallel_map(&[42u64], |_, &item| item + 1), vec![43]);
    }

    #[test]
    fn thread_count_is_capped_by_item_count() {
        assert_eq!(sweep_threads(0), 1);
        assert_eq!(sweep_threads(1), 1);
        assert!(sweep_threads(1_000_000) >= 1);
    }
}
