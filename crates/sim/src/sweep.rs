//! Deterministic parallel execution of independent simulation runs.
//!
//! Scenario sweeps (Figure-1 design points, Figure-6/7 rate curves) and the
//! bounded exploration of `elastic-verify` are embarrassingly parallel: every
//! run builds its own [`crate::Simulation`] from shared read-only inputs.
//! [`parallel_map`] fans such runs across OS threads with `std::thread::scope`
//! (the container image has no access to crates.io, so `rayon` is not
//! available) and collects the results **in input order**, so a parallel
//! sweep is observationally identical to the sequential loop it replaces:
//! same results, same order, same seeds.
//!
//! Work is handed out via an atomic cursor, so threads steal the next index
//! whenever they finish one — imbalanced run lengths (e.g. exploration
//! patterns that deadlock early) do not serialize the sweep.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of worker threads used for a sweep of `items` independent runs:
/// the available hardware parallelism, capped by the item count.
pub fn sweep_threads(items: usize) -> usize {
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hardware.min(items).max(1)
}

/// A panic captured from one sweep scenario by [`parallel_map_catch`] /
/// [`parallel_map_with_catch`]: the input index that panicked plus the
/// panic payload rendered as text. With deterministic, item-derived seeds
/// (the convention of every sweep in this workspace) the index **is** the
/// reproducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioPanic {
    /// Input index of the scenario that panicked.
    pub index: usize,
    /// The panic message (`&str`/`String` payloads; otherwise a placeholder).
    pub message: String,
}

impl fmt::Display for ScenarioPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario {} panicked: {}", self.index, self.message)
    }
}

impl ScenarioPanic {
    fn from_payload(index: usize, payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        ScenarioPanic { index, message }
    }
}

/// Why one scenario of a deadline-bounded sweep
/// ([`parallel_map_with_deadline`]) failed: it panicked, or it overran its
/// per-case wall-clock budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioFailure {
    /// The scenario panicked; per-scenario isolation as in
    /// [`parallel_map_with_catch`].
    Panic(ScenarioPanic),
    /// The scenario ran past its wall-clock budget. The deadline is
    /// *cooperative* — the run closure receives the deadline `Instant` and is
    /// expected to bail out at it (the engine's
    /// [`crate::Simulation::run_with_deadline`] polls every 64 cycles) — so
    /// the overrun is detected when the closure returns, its result is
    /// discarded, and the worker's scratch state is re-initialised for the
    /// next item.
    DeadlineExceeded {
        /// Input index of the scenario that overran.
        index: usize,
        /// Wall-clock time the scenario actually took.
        elapsed: Duration,
        /// The per-case budget it was given.
        budget: Duration,
    },
}

impl fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioFailure::Panic(panic) => panic.fmt(f),
            ScenarioFailure::DeadlineExceeded { index, elapsed, budget } => write!(
                f,
                "scenario {index} exceeded its {budget:?} wall-clock deadline ({elapsed:?} \
                 elapsed)"
            ),
        }
    }
}

/// Applies `run` to every index/item pair of `items` in parallel and returns
/// the results in input order.
///
/// `run` must be deterministic per item for the sweep to be reproducible —
/// all the sweeps in this workspace derive their seeds from the item, never
/// from global state. A panic in `run` still propagates to the caller, but
/// only after the whole sweep has completed (see [`parallel_map_with`]);
/// use [`parallel_map_catch`] to receive panics as per-scenario results
/// instead.
pub fn parallel_map<T, R, F>(items: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, || (), |(), index, item| run(index, item))
}

/// [`parallel_map`] with per-scenario panic isolation: every `run` is
/// wrapped in [`catch_unwind`], so one panicking scenario comes back as
/// `Err(`[`ScenarioPanic`]`)` — carrying its input index — while every other
/// scenario's result is delivered intact.
pub fn parallel_map_catch<T, R, F>(items: &[T], run: F) -> Vec<Result<R, ScenarioPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with_catch(items, || (), |(), index, item| run(index, item))
}

/// [`parallel_map`] with per-worker scratch state: every worker thread builds
/// one `S` via `init` — lazily, on its first item — and hands a mutable
/// reference to every `run` it executes.
///
/// This is the backbone of the zero-rebuild exploration sweeps: the scratch
/// state is a [`crate::Simulation`], built **once per worker thread** and
/// [`crate::Simulation::reset`] per item, instead of `netlist.clone()` +
/// `Simulation::new` per run. For results to stay input-order deterministic,
/// `run` must leave `S` in an item-independent state (a reset simulation
/// qualifies) — the item→worker assignment is scheduling-dependent.
///
/// Workers steal the next index from an atomic cursor whenever they finish
/// one, so imbalanced run lengths do not serialize the sweep; a worker that
/// never receives an item never calls `init`.
///
/// # Panics
///
/// A panic in `run` is re-raised in the caller — but only **after** the
/// whole sweep has completed: the panic is caught per scenario
/// ([`parallel_map_with_catch`] is the engine underneath), so it cannot
/// poison the result collection or abort the sibling scenarios mid-flight.
/// Callers that want the surviving results alongside the failure should use
/// [`parallel_map_with_catch`] directly.
pub fn parallel_map_with<T, S, R, I, F>(items: &[T], init: I, run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let results = parallel_map_with_catch(items, init, run);
    let mut collected = Vec::with_capacity(results.len());
    let mut first_panic: Option<ScenarioPanic> = None;
    let mut panics = 0usize;
    for result in results {
        match result {
            Ok(value) => collected.push(value),
            Err(panic) => {
                panics += 1;
                first_panic.get_or_insert(panic);
            }
        }
    }
    if let Some(panic) = first_panic {
        panic!("{panics} sweep scenario(s) panicked; first: {panic}");
    }
    collected
}

/// [`parallel_map_with`] with per-scenario panic isolation.
///
/// Every `run` invocation is wrapped in [`catch_unwind`]: a panicking
/// scenario yields `Err(`[`ScenarioPanic`]`)` in its input-order slot — the
/// index identifies the scenario (and, by the item-derived-seed convention,
/// the seed) — and the sweep carries on. The panicking worker's scratch
/// state is **discarded** (the unwind may have left it inconsistent) and
/// lazily re-`init`-ed for its next item, preserving the contract that
/// results never depend on the item→worker assignment.
pub fn parallel_map_with_catch<T, S, R, I, F>(
    items: &[T],
    init: I,
    run: F,
) -> Vec<Result<R, ScenarioPanic>>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    parallel_drive(items, |state: &mut Option<S>, index, item| {
        let outcome =
            catch_unwind(AssertUnwindSafe(|| run(state.get_or_insert_with(&init), index, item)));
        outcome.map_err(|payload| {
            *state = None;
            ScenarioPanic::from_payload(index, payload)
        })
    })
}

/// [`parallel_map_with_catch`] with a **per-case wall-clock deadline** on top
/// of the panic isolation: every `run` receives the `Instant` by which it
/// must finish (case start + `budget`), and a scenario that returns after
/// that instant comes back as
/// `Err(`[`ScenarioFailure::DeadlineExceeded`]`)` — its result discarded,
/// its worker's scratch state re-`init`-ed — instead of poisoning the batch.
///
/// The deadline is *cooperative*: this function cannot preempt a wedged
/// closure, it bounds the damage once the closure yields. Pair it with the
/// engine's deadline-polling entry points
/// ([`crate::Simulation::run_with_deadline`] /
/// [`crate::Simulation::run_monitored`]), which check the instant every 64
/// cycles — a wedged *case* (oscillating settle, pathological netlist) then
/// times out inside the simulator and the sweep reports it here, while the
/// other cases of the batch complete normally.
pub fn parallel_map_with_deadline<T, S, R, I, F>(
    items: &[T],
    init: I,
    budget: Duration,
    run: F,
) -> Vec<Result<R, ScenarioFailure>>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T, Instant) -> R + Sync,
{
    parallel_drive(items, |state: &mut Option<S>, index, item| {
        let started = Instant::now();
        let deadline = started + budget;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run(state.get_or_insert_with(&init), index, item, deadline)
        }));
        match outcome {
            Err(payload) => {
                *state = None;
                Err(ScenarioFailure::Panic(ScenarioPanic::from_payload(index, payload)))
            }
            Ok(value) => {
                let elapsed = started.elapsed();
                if elapsed > budget {
                    // The case ran long: whatever partial result it produced
                    // is not trustworthy sweep output, and the scratch state
                    // may have been abandoned mid-scenario by a cooperative
                    // bail-out — discard both.
                    *state = None;
                    Err(ScenarioFailure::DeadlineExceeded { index, elapsed, budget })
                } else {
                    Ok(value)
                }
            }
        }
    })
}

/// Fans `items` across the worker pool in blocks of up to
/// [`crate::LANES`] scenarios, for workloads that advance one block per
/// 64-lane simulation instance ([`crate::LaneSimulation`]).
///
/// `items` is chunked in input order; each worker thread keeps one scratch
/// state `S` (by convention a [`crate::LaneSimulation`], built once per
/// worker and reset per block) and `run` maps one whole block — it receives
/// the input index of the block's first item plus the block's items, and
/// must return exactly one result per item. Results come back flattened in
/// input order, so a lane sweep is observationally identical to the
/// per-item sweep it replaces: same results, same order.
///
/// This is the word-parallel counterpart of [`parallel_map_with`]: the
/// thread pool provides the coarse parallelism, the 64 lanes inside each
/// scratch simulation provide the fine-grained scenario parallelism —
/// `threads × 64` concurrent scenarios.
///
/// # Panics
///
/// When `run` returns a block of the wrong length, and (after the sweep
/// completes) when `run` panicked — the same deferred re-raise as
/// [`parallel_map_with`].
pub fn lane_map<T, S, R, I, F>(items: &[T], init: I, run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &[T]) -> Vec<R> + Sync,
{
    let blocks: Vec<&[T]> = items.chunks(crate::LANES).collect();
    let nested = parallel_map_with(&blocks, init, |scratch, block_index, block| {
        let results = run(scratch, block_index * crate::LANES, block);
        assert_eq!(
            results.len(),
            block.len(),
            "lane_map block starting at item {} returned {} results for {} items",
            block_index * crate::LANES,
            results.len(),
            block.len()
        );
        results
    });
    nested.into_iter().flatten().collect()
}

/// The work-stealing scaffold under every sweep variant: hands out indices
/// via an atomic cursor, keeps one lazily-initialised scratch slot per
/// worker, and collects results in input order. `run_one` must not unwind
/// (the public wrappers catch scenario panics before they reach it).
fn parallel_drive<T, S, R, E, F>(items: &[T], run_one: F) -> Vec<Result<R, E>>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&mut Option<S>, usize, &T) -> Result<R, E> + Sync,
{
    let threads = sweep_threads(items.len());
    if threads <= 1 {
        let mut state: Option<S> = None;
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| run_one(&mut state, index, item))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<R, E>>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state: Option<S> = None;
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    let result = run_one(&mut state, index, &items[index]);
                    // `run_one` cannot unwind (the scenario body is caught
                    // above), so nothing can poison the slot mutex.
                    slots.lock().expect("no panics while holding the slot lock")[index] =
                        Some(result);
                }
            });
        }
    });

    slots
        .into_inner()
        .expect("worker threads have exited")
        .iter_mut()
        .map(|slot| slot.take().expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, |_, &item| item * 2);
        assert_eq!(doubled, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u64> = (0..257).collect();
        let results = parallel_map(&items, |index, &item| {
            counter.fetch_add(1, Ordering::Relaxed);
            (index as u64, item)
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert!(results.iter().all(|&(index, item)| index == item));
    }

    #[test]
    fn empty_and_single_item_sweeps_work() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |_, &item| item).is_empty());
        assert_eq!(parallel_map(&[42u64], |_, &item| item + 1), vec![43]);
    }

    #[test]
    fn per_worker_state_is_initialized_at_most_once_per_thread() {
        let inits = AtomicU64::new(0);
        let items: Vec<u64> = (0..64).collect();
        let results = parallel_map_with(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |scratch, _, &item| {
                *scratch += 1;
                (item, *scratch)
            },
        );
        let threads = sweep_threads(items.len()) as u64;
        let init_count = inits.load(Ordering::Relaxed);
        assert!(init_count >= 1 && init_count <= threads, "{init_count} inits, {threads} workers");
        // Every item was processed exactly once, in order, and the per-worker
        // counters account for all of them together.
        assert!(results.iter().enumerate().all(|(index, &(item, _))| index as u64 == item));
        // The scratch counters are per worker, so no counter can exceed the
        // total item count and every run observed a counter of at least 1.
        assert!(results.iter().all(|&(_, seen)| (1..=64).contains(&seen)));
    }

    #[test]
    fn thread_count_is_capped_by_item_count() {
        assert_eq!(sweep_threads(0), 1);
        assert_eq!(sweep_threads(1), 1);
        assert!(sweep_threads(1_000_000) >= 1);
    }

    #[test]
    fn a_panicking_scenario_leaves_every_other_result_intact() {
        let items: Vec<u64> = (0..64).collect();
        let results = parallel_map_catch(&items, |_, &item| {
            assert!(item != 17, "poisoned scenario 17");
            item * 2
        });
        assert_eq!(results.len(), 64);
        for (index, result) in results.iter().enumerate() {
            if index == 17 {
                let panic = result.as_ref().unwrap_err();
                assert_eq!(panic.index, 17);
                assert!(panic.message.contains("poisoned scenario 17"), "{panic}");
                assert!(panic.to_string().contains("scenario 17"));
            } else {
                assert_eq!(*result.as_ref().unwrap(), index as u64 * 2);
            }
        }
    }

    #[test]
    fn parallel_map_with_reports_panics_only_after_the_sweep_completes() {
        let completed = AtomicU64::new(0);
        let items: Vec<u64> = (0..32).collect();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, |_, &item| {
                assert!(item != 5, "scenario 5 exploded");
                completed.fetch_add(1, Ordering::Relaxed);
                item
            })
        }));
        let message = *outcome.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("1 sweep scenario(s) panicked"), "{message}");
        assert!(message.contains("scenario 5"), "{message}");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            31,
            "every other scenario ran to completion despite the panic"
        );
    }

    #[test]
    fn a_wedged_case_times_out_without_stalling_the_batch() {
        let items: Vec<u64> = (0..8).collect();
        let results = parallel_map_with_deadline(
            &items,
            || (),
            Duration::from_millis(40),
            |(), _, &item, deadline| {
                if item == 3 {
                    // A cooperative wedge: spins until past its deadline,
                    // the way a deadline-polling simulation bails out.
                    while Instant::now() < deadline + Duration::from_millis(5) {
                        std::thread::yield_now();
                    }
                }
                item * 2
            },
        );
        assert_eq!(results.len(), 8);
        for (index, result) in results.iter().enumerate() {
            if index == 3 {
                match result.as_ref().unwrap_err() {
                    ScenarioFailure::DeadlineExceeded { index, elapsed, budget } => {
                        assert_eq!(*index, 3);
                        assert!(elapsed > budget, "{elapsed:?} vs {budget:?}");
                    }
                    other => panic!("expected a deadline failure, got {other}"),
                }
            } else {
                assert_eq!(*result.as_ref().unwrap(), index as u64 * 2);
            }
        }
    }

    #[test]
    fn deadline_sweeps_still_isolate_panics_and_discard_scratch() {
        let items: Vec<u64> = (0..12).collect();
        let results = parallel_map_with_deadline(
            &items,
            || false,
            Duration::from_secs(5),
            |poisoned: &mut bool, _, &item, _deadline| {
                assert!(!*poisoned, "poisoned scratch state reused");
                *poisoned = true;
                assert!(item != 7, "die at 7");
                *poisoned = false;
                item
            },
        );
        let failures: Vec<&ScenarioFailure> =
            results.iter().filter_map(|r| r.as_ref().err()).collect();
        assert_eq!(failures.len(), 1);
        match failures[0] {
            ScenarioFailure::Panic(panic) => {
                assert_eq!(panic.index, 7);
                assert!(panic.message.contains("die at 7"), "{panic}");
            }
            other => panic!("expected a panic failure, got {other}"),
        }
    }

    #[test]
    fn lane_map_flattens_blocks_in_input_order() {
        // 150 items → blocks of 64 / 64 / 22; every result must land in its
        // item's input-order slot, and each block must see its own start
        // index and contiguous items.
        let items: Vec<u64> = (0..150).collect();
        let results = lane_map(
            &items,
            || 0u64,
            |calls, start, block| {
                *calls += 1;
                assert!(block.len() <= crate::LANES);
                assert_eq!(block[0], start as u64, "block items start at the block index");
                block.iter().map(|&item| item * 3).collect()
            },
        );
        assert_eq!(results, (0..150).map(|i| i * 3).collect::<Vec<_>>());
        assert!(lane_map(&Vec::<u64>::new(), || (), |(), _, b| vec![0u64; b.len()]).is_empty());
    }

    #[test]
    fn lane_map_rejects_blocks_of_the_wrong_length() {
        let items: Vec<u64> = (0..10).collect();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            lane_map(&items, || (), |(), _, _| vec![0u64; 3])
        }));
        let message = *outcome.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("lane_map block"), "{message}");
    }

    #[test]
    fn a_panicking_worker_discards_its_scratch_state() {
        // Every run marks the scratch state poisoned on entry and clears it
        // on a successful exit; the scenario that panics leaves the mark
        // set. If a worker reused that state for a later item, the entry
        // check would trip with a *different* message — so "exactly one
        // failure, with the original message" proves the state was
        // discarded, independent of the item→worker assignment.
        let items: Vec<u64> = (0..16).collect();
        let results = parallel_map_with_catch(
            &items,
            || false,
            |poisoned: &mut bool, _, &item| {
                assert!(!*poisoned, "poisoned scratch state reused");
                *poisoned = true;
                assert!(item != 3, "die at 3");
                *poisoned = false;
                item
            },
        );
        let failures: Vec<&ScenarioPanic> =
            results.iter().filter_map(|r| r.as_ref().err()).collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 3);
        assert!(failures[0].message.contains("die at 3"), "{}", failures[0]);
    }
}
