//! Columnar, bit-packed per-cycle per-channel trace recording.
//!
//! The trace stores the settled channel signals of every simulated cycle.
//! It is the raw material for:
//!
//! * reproducing Table 1 of the paper ([`Trace::symbol_row`] prints a channel
//!   the way the table does: data value, `-` for an anti-token, `*` for a
//!   bubble),
//! * the protocol/temporal property checkers of `elastic-verify`,
//! * transfer-stream extraction for transfer-equivalence checks.
//!
//! # Storage layout
//!
//! The store is struct-of-arrays, not array-of-structs. A
//! [`ChannelState`] is 16 bytes; recording a `Vec<ChannelState>` per cycle
//! (the previous representation) costs `16 · channels` bytes per cycle and
//! one allocation per cycle. Instead the trace keeps:
//!
//! * **four bit-planes** — one `u64` plane word per channel per 64 cycles for
//!   each of `V+`, `S+`, `V-` and `S-`. Words pack *across cycles*: bit
//!   `t % 64` of the word at index `(t / 64) · channels + c` is the signal of
//!   channel `c` in cycle `t`. One cycle therefore costs 4 **bits** per
//!   channel, and [`Trace::record`] only allocates when a new 64-cycle word
//!   block starts;
//! * **sparse data columns** — the 64-bit data word is stored per channel in
//!   a `DataColumn`, materialised lazily on the first *nonzero* value the
//!   channel ever carries (control-only channels cost nothing) and sized to
//!   the narrowest of `u8`/`u16`/`u32`/`u64` that fits both the channel's
//!   declared width and every recorded value (widening is automatic, so the
//!   encoding is lossless for arbitrary values).
//!
//! Consumers read the trace through streaming accessors —
//! [`Trace::channel_iter`] (one channel over all cycles),
//! [`Trace::states_at`] (all channels of one cycle) and
//! [`Trace::transfer_stream`] — none of which materialise a
//! `Vec<ChannelState>`.

use std::collections::BTreeMap;

use elastic_core::{ChannelId, Netlist};

use crate::signal::{ChannelState, TraceSymbol};

/// Number of bit-planes (`V+`, `S+`, `V-`, `S-`).
const PLANES: usize = 4;

/// The lazily materialised, width-adaptive data column of one channel.
///
/// `Zero` means every value recorded so far was `0` — nothing is stored. The
/// first nonzero value materialises a vector in the narrowest element type
/// that fits both the channel's declared width and that value, backfilled
/// with the zeros recorded before; later values that do not fit widen the
/// column in place. The representation of a column is therefore a pure
/// function of the recorded value sequence (plus the width hint), which
/// keeps `Trace` equality meaningful.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum DataColumn {
    /// Every recorded value was zero; no storage.
    #[default]
    Zero,
    /// Values fit in 8 bits.
    U8(Vec<u8>),
    /// Values fit in 16 bits.
    U16(Vec<u16>),
    /// Values fit in 32 bits.
    U32(Vec<u32>),
    /// Full 64-bit values.
    U64(Vec<u64>),
}

/// The narrowest column class (0..=3 for u8/u16/u32/u64) that holds `value`.
fn class_for_value(value: u64) -> u8 {
    if value <= u64::from(u8::MAX) {
        0
    } else if value <= u64::from(u16::MAX) {
        1
    } else if value <= u64::from(u32::MAX) {
        2
    } else {
        3
    }
}

/// The narrowest column class that holds any value of `width` bits.
fn class_for_width(width: u8) -> u8 {
    match width {
        0..=8 => 0,
        9..=16 => 1,
        17..=32 => 2,
        _ => 3,
    }
}

impl DataColumn {
    /// Appends the value of cycle `cycle` (all earlier cycles must have been
    /// pushed already). `width_hint` sizes the first materialisation.
    fn push(&mut self, value: u64, cycle: usize, width_hint: u8) {
        if matches!(self, DataColumn::Zero) {
            if value == 0 {
                return;
            }
            // First nonzero value: materialise, backfilling the zero prefix.
            *self = match class_for_width(width_hint).max(class_for_value(value)) {
                0 => DataColumn::U8(vec![0; cycle]),
                1 => DataColumn::U16(vec![0; cycle]),
                2 => DataColumn::U32(vec![0; cycle]),
                _ => DataColumn::U64(vec![0; cycle]),
            };
        }
        if class_for_value(value) > self.class() {
            self.widen_to(class_for_value(value));
        }
        match self {
            DataColumn::Zero => unreachable!("materialised above"),
            DataColumn::U8(column) => column.push(value as u8),
            DataColumn::U16(column) => column.push(value as u16),
            DataColumn::U32(column) => column.push(value as u32),
            DataColumn::U64(column) => column.push(value),
        }
    }

    fn class(&self) -> u8 {
        match self {
            DataColumn::Zero => 0,
            DataColumn::U8(_) => 0,
            DataColumn::U16(_) => 1,
            DataColumn::U32(_) => 2,
            DataColumn::U64(_) => 3,
        }
    }

    /// Re-encodes the stored values in a wider element type.
    fn widen_to(&mut self, class: u8) {
        let values: Vec<u64> = match self {
            DataColumn::Zero => Vec::new(),
            DataColumn::U8(column) => column.iter().map(|&v| u64::from(v)).collect(),
            DataColumn::U16(column) => column.iter().map(|&v| u64::from(v)).collect(),
            DataColumn::U32(column) => column.iter().map(|&v| u64::from(v)).collect(),
            DataColumn::U64(column) => std::mem::take(column),
        };
        *self = match class {
            1 => DataColumn::U16(values.iter().map(|&v| v as u16).collect()),
            2 => DataColumn::U32(values.iter().map(|&v| v as u32).collect()),
            _ => DataColumn::U64(values),
        };
    }

    /// The value recorded for `cycle` (0 for never-materialised columns).
    fn get(&self, cycle: usize) -> u64 {
        match self {
            DataColumn::Zero => 0,
            DataColumn::U8(column) => u64::from(column[cycle]),
            DataColumn::U16(column) => u64::from(column[cycle]),
            DataColumn::U32(column) => u64::from(column[cycle]),
            DataColumn::U64(column) => column[cycle],
        }
    }

    /// Heap bytes held by the column.
    fn heap_bytes(&self) -> usize {
        match self {
            DataColumn::Zero => 0,
            DataColumn::U8(column) => column.capacity(),
            DataColumn::U16(column) => column.capacity() * 2,
            DataColumn::U32(column) => column.capacity() * 4,
            DataColumn::U64(column) => column.capacity() * 8,
        }
    }
}

/// A recorded simulation trace (columnar, bit-packed — see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Maps channel ids to dense channel indices.
    channel_index: BTreeMap<ChannelId, usize>,
    /// Channel names in index order (for reports).
    channel_names: Vec<String>,
    /// Declared channel widths in index order (data-column sizing hint).
    channel_widths: Vec<u8>,
    /// Number of recorded cycles.
    cycles: usize,
    /// Bit-planes `[V+, S+, V-, S-]`; see the module docs for the layout.
    planes: [Vec<u64>; PLANES],
    /// Per-channel data columns (lazily materialised).
    data: Vec<DataColumn>,
}

impl Trace {
    /// Creates an empty trace for the channels of `netlist`, in a fixed order.
    pub fn new(netlist: &Netlist) -> Self {
        Self::with_channels(
            netlist
                .live_channels()
                .map(|channel| (channel.id, channel.name.clone(), channel.width)),
        )
    }

    /// Creates an empty trace over an explicit channel set — `(id, name,
    /// width)` triples in recording order. Useful for tools and tests that
    /// have no [`Netlist`] at hand; [`Trace::new`] delegates here.
    pub fn with_channels(channels: impl IntoIterator<Item = (ChannelId, String, u8)>) -> Self {
        let mut channel_index = BTreeMap::new();
        let mut channel_names = Vec::new();
        let mut channel_widths = Vec::new();
        for (index, (id, name, width)) in channels.into_iter().enumerate() {
            channel_index.insert(id, index);
            channel_names.push(name);
            channel_widths.push(width);
        }
        let data = vec![DataColumn::Zero; channel_names.len()];
        Trace {
            channel_index,
            channel_names,
            channel_widths,
            cycles: 0,
            planes: Default::default(),
            data,
        }
    }

    /// Records the settled signals of one cycle (called by the engine).
    ///
    /// Writes four bits per channel into the current plane words and appends
    /// to the materialised data columns; allocation only happens when a new
    /// 64-cycle word block begins (or a column materialises/widens).
    ///
    /// # Panics
    ///
    /// Panics when `states` does not have one entry per trace channel.
    pub fn record(&mut self, states: &[ChannelState]) {
        let channels = self.channel_names.len();
        assert_eq!(states.len(), channels, "one state per trace channel");
        let block = (self.cycles / 64) * channels;
        if self.cycles.is_multiple_of(64) {
            for plane in &mut self.planes {
                plane.resize(block + channels, 0);
            }
        }
        let shift = self.cycles % 64;
        let [fv, fs, bv, bs] = &mut self.planes;
        for (c, state) in states.iter().enumerate() {
            // Branchless bit writes: booleans shift straight into the planes.
            fv[block + c] |= u64::from(state.forward_valid) << shift;
            fs[block + c] |= u64::from(state.forward_stop) << shift;
            bv[block + c] |= u64::from(state.backward_valid) << shift;
            bs[block + c] |= u64::from(state.backward_stop) << shift;
            if state.data != 0 || !matches!(self.data[c], DataColumn::Zero) {
                self.data[c].push(state.data, self.cycles, self.channel_widths[c]);
            }
        }
        self.cycles += 1;
    }

    /// Forgets every recorded cycle while keeping the channel set and the
    /// bit-plane allocations (data columns restart in their unmaterialised
    /// state, so a cleared trace is indistinguishable from a fresh one).
    pub fn clear(&mut self) {
        for plane in &mut self.planes {
            plane.clear();
        }
        for column in &mut self.data {
            *column = DataColumn::Zero;
        }
        self.cycles = 0;
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.cycles
    }

    /// `true` when no cycle has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles == 0
    }

    /// Number of channels per recorded cycle.
    pub fn channel_count(&self) -> usize {
        self.channel_names.len()
    }

    /// Reassembles the state of channel index `c` during cycle `t`.
    fn state_by_index(&self, c: usize, t: usize) -> ChannelState {
        let word = (t / 64) * self.channel_names.len() + c;
        let bit = t % 64;
        ChannelState {
            forward_valid: self.planes[0][word] >> bit & 1 == 1,
            forward_stop: self.planes[1][word] >> bit & 1 == 1,
            backward_valid: self.planes[2][word] >> bit & 1 == 1,
            backward_stop: self.planes[3][word] >> bit & 1 == 1,
            data: self.data[c].get(t),
        }
    }

    /// The state of a channel during a given cycle.
    pub fn state(&self, channel: ChannelId, cycle: usize) -> Option<ChannelState> {
        let index = *self.channel_index.get(&channel)?;
        (cycle < self.cycles).then(|| self.state_by_index(index, cycle))
    }

    /// Streams the full per-cycle history of a channel, oldest cycle first.
    ///
    /// Unknown channels yield an empty iterator (matching the behaviour of
    /// the dense store this replaces). The iterator is cheap — it decodes one
    /// `ChannelState` per step straight from the bit-planes, without ever
    /// materialising the history.
    pub fn channel_iter(&self, channel: ChannelId) -> ChannelIter<'_> {
        match self.channel_index.get(&channel) {
            Some(&index) => ChannelIter { trace: self, channel: index, cycle: 0, end: self.cycles },
            None => ChannelIter { trace: self, channel: 0, cycle: 0, end: 0 },
        }
    }

    /// Streams the states of every channel (in trace channel order) during
    /// one cycle, or `None` for a cycle that was never recorded.
    pub fn states_at(&self, cycle: usize) -> Option<StatesAt<'_>> {
        (cycle < self.cycles).then_some(StatesAt {
            trace: self,
            cycle,
            channel: 0,
            end: self.channel_names.len(),
        })
    }

    /// The Table-1 style symbol row of a channel (token value / `-` / `*`).
    pub fn symbol_row(&self, channel: ChannelId) -> Vec<TraceSymbol> {
        self.channel_iter(channel).map(|state| state.symbol()).collect()
    }

    /// Streams the transfer stream of a channel: the data values of the
    /// cycles in which a forward transfer completed, in order.
    pub fn transfer_stream(&self, channel: ChannelId) -> impl Iterator<Item = u64> + '_ {
        self.channel_iter(channel).filter(ChannelState::forward_transfer).map(|state| state.data)
    }

    /// Iterator over `(channel id, channel name)` pairs in trace order.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &str)> {
        self.channel_index.iter().map(move |(&id, &index)| (id, self.channel_names[index].as_str()))
    }

    /// Heap bytes currently held by the recorded signals: the four bit-planes
    /// plus the materialised data-column payloads. Excludes the fixed
    /// per-channel metadata (names, index map, column headers), which exists
    /// before the first recorded cycle and does not grow with the recording —
    /// so an empty trace reports 0.
    pub fn heap_bytes(&self) -> usize {
        let planes: usize = self.planes.iter().map(|plane| plane.capacity() * 8).sum();
        let data: usize = self.data.iter().map(DataColumn::heap_bytes).sum();
        planes + data
    }

    /// Bytes the dense `Vec<ChannelState>`-per-cycle representation this
    /// store replaced would need for the same recording — the baseline of the
    /// compression ratio reported in `BENCH_trace_mem.json`.
    pub fn dense_bytes(&self) -> usize {
        self.cycles * self.channel_names.len() * std::mem::size_of::<ChannelState>()
    }

    /// Renders a compact textual table of the given channels over all cycles
    /// (one row per channel), in the style of Table 1 of the paper.
    pub fn render_table(&self, channels: &[(ChannelId, &str)]) -> String {
        let mut out = String::new();
        let cycles = self.len();
        out.push_str("cycle      ");
        for t in 0..cycles {
            out.push_str(&format!("{t:>6}"));
        }
        out.push('\n');
        for (channel, label) in channels {
            out.push_str(&format!("{label:<11}"));
            for symbol in self.symbol_row(*channel) {
                out.push_str(&format!("{:>6}", symbol.to_string()));
            }
            out.push('\n');
        }
        out
    }
}

/// Streaming per-cycle history of one channel (see [`Trace::channel_iter`]).
#[derive(Debug, Clone)]
pub struct ChannelIter<'a> {
    trace: &'a Trace,
    channel: usize,
    cycle: usize,
    end: usize,
}

impl Iterator for ChannelIter<'_> {
    type Item = ChannelState;

    fn next(&mut self) -> Option<ChannelState> {
        if self.cycle >= self.end {
            return None;
        }
        let state = self.trace.state_by_index(self.channel, self.cycle);
        self.cycle += 1;
        Some(state)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.end - self.cycle;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ChannelIter<'_> {}

/// Streaming per-channel states of one cycle (see [`Trace::states_at`]).
#[derive(Debug, Clone)]
pub struct StatesAt<'a> {
    trace: &'a Trace,
    cycle: usize,
    channel: usize,
    end: usize,
}

impl Iterator for StatesAt<'_> {
    type Item = ChannelState;

    fn next(&mut self) -> Option<ChannelState> {
        if self.channel >= self.end {
            return None;
        }
        let state = self.trace.state_by_index(self.channel, self.cycle);
        self.channel += 1;
        Some(state)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.end - self.channel;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for StatesAt<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::kind::{SinkSpec, SourceSpec};
    use elastic_core::{Netlist, Port};

    fn tiny_netlist() -> (Netlist, ChannelId) {
        let mut n = Netlist::new("t");
        let src = n.add_source("src", SourceSpec::always());
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        let ch = n.connect_named("wire", Port::output(src, 0), Port::input(sink, 0), 8).unwrap();
        (n, ch)
    }

    fn history(trace: &Trace, channel: ChannelId) -> Vec<ChannelState> {
        trace.channel_iter(channel).collect()
    }

    #[test]
    fn records_and_replays_channel_history() {
        let (netlist, channel) = tiny_netlist();
        let mut trace = Trace::new(&netlist);
        assert!(trace.is_empty());
        trace.record(&[ChannelState { forward_valid: true, data: 5, ..ChannelState::default() }]);
        trace.record(&[ChannelState::default()]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.channel_count(), 1);
        let history = history(&trace, channel);
        assert!(history[0].forward_valid);
        assert!(!history[1].forward_valid);
        assert_eq!(trace.transfer_stream(channel).collect::<Vec<_>>(), vec![5]);
        assert_eq!(trace.state(channel, 0).unwrap().data, 5);
        assert!(trace.state(channel, 7).is_none());
        assert!(trace.states_at(7).is_none());
        let row: Vec<ChannelState> = trace.states_at(0).unwrap().collect();
        assert_eq!(row.len(), 1);
        assert_eq!(row[0].data, 5);
    }

    #[test]
    fn symbol_rows_and_tables_follow_the_paper_notation() {
        let (netlist, channel) = tiny_netlist();
        let mut trace = Trace::new(&netlist);
        trace.record(&[ChannelState {
            forward_valid: true,
            data: 0xA1,
            ..ChannelState::default()
        }]);
        trace.record(&[ChannelState { backward_valid: true, ..ChannelState::default() }]);
        trace.record(&[ChannelState::default()]);
        let row = trace.symbol_row(channel);
        assert_eq!(
            row,
            vec![TraceSymbol::Token(0xA1), TraceSymbol::AntiToken, TraceSymbol::Bubble]
        );
        let table = trace.render_table(&[(channel, "wire")]);
        assert!(table.contains("wire"));
        assert!(table.contains('-'));
        assert!(table.contains('*'));
    }

    #[test]
    fn unknown_channels_yield_empty_histories() {
        let (netlist, _channel) = tiny_netlist();
        let trace = Trace::new(&netlist);
        assert!(history(&trace, ChannelId::new(99)).is_empty());
        assert!(trace.symbol_row(ChannelId::new(99)).is_empty());
    }

    #[test]
    fn packing_crosses_word_boundaries_losslessly() {
        let (netlist, channel) = tiny_netlist();
        let mut trace = Trace::new(&netlist);
        // 200 cycles exercise four word blocks; a deterministic but irregular
        // pattern covers every signal.
        let states: Vec<ChannelState> = (0..200u64)
            .map(|t| ChannelState {
                forward_valid: t % 3 == 0,
                forward_stop: t % 5 == 1,
                backward_valid: t % 7 == 2,
                backward_stop: t % 11 == 3,
                data: if t % 4 == 0 { t * 31 } else { 0 },
            })
            .collect();
        for state in &states {
            trace.record(std::slice::from_ref(state));
        }
        assert_eq!(history(&trace, channel), states);
        for (t, expected) in states.iter().enumerate() {
            assert_eq!(trace.state(channel, t).unwrap(), *expected, "cycle {t}");
        }
    }

    #[test]
    fn data_columns_stay_empty_for_control_only_channels() {
        let (netlist, _channel) = tiny_netlist();
        let mut trace = Trace::new(&netlist);
        for _ in 0..128 {
            trace.record(&[ChannelState { forward_valid: true, ..ChannelState::default() }]);
        }
        // No nonzero data ever: the column never materialises, so 128 cycles
        // of one channel cost two plane words per plane (plus slack) — far
        // below the dense 16 bytes/cycle.
        assert!(matches!(trace.data[0], DataColumn::Zero));
        assert!(trace.heap_bytes() < trace.dense_bytes());
    }

    #[test]
    fn data_columns_widen_to_fit_recorded_values() {
        let (netlist, channel) = tiny_netlist();
        let mut trace = Trace::new(&netlist);
        let values = [0u64, 7, 300, 0, u64::from(u32::MAX) + 9];
        for &data in &values {
            trace.record(&[ChannelState { data, ..ChannelState::default() }]);
        }
        let replayed: Vec<u64> = trace.channel_iter(channel).map(|s| s.data).collect();
        assert_eq!(replayed, values);
        assert!(matches!(trace.data[0], DataColumn::U64(_)));
    }

    #[test]
    fn clear_resets_to_a_fresh_trace() {
        let (netlist, channel) = tiny_netlist();
        let mut trace = Trace::new(&netlist);
        trace.record(&[ChannelState { forward_valid: true, data: 9, ..ChannelState::default() }]);
        trace.clear();
        assert!(trace.is_empty());
        assert_eq!(trace, Trace::new(&netlist));
        trace.record(&[ChannelState { forward_valid: true, data: 9, ..ChannelState::default() }]);
        assert_eq!(trace.state(channel, 0).unwrap().data, 9);
        let mut fresh = Trace::new(&netlist);
        fresh.record(&[ChannelState { forward_valid: true, data: 9, ..ChannelState::default() }]);
        assert_eq!(trace, fresh, "a cleared trace re-records identically to a fresh one");
    }

    #[test]
    fn packed_storage_beats_the_dense_layout_by_4x_on_data_channels() {
        let (netlist, _channel) = tiny_netlist();
        let mut trace = Trace::new(&netlist);
        for t in 0..4096u64 {
            trace.record(&[ChannelState {
                forward_valid: true,
                data: t % 251,
                ..ChannelState::default()
            }]);
        }
        // 8-bit data channel: 4 bits of flags + 1 byte of data per cycle vs
        // 16 dense bytes.
        assert!(
            trace.heap_bytes() * 4 <= trace.dense_bytes(),
            "packed {} bytes vs dense {} bytes",
            trace.heap_bytes(),
            trace.dense_bytes()
        );
    }
}
