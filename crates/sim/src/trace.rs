//! Per-cycle, per-channel trace recording.
//!
//! The trace stores the settled channel signals of every simulated cycle.
//! It is the raw material for:
//!
//! * reproducing Table 1 of the paper ([`Trace::symbol_row`] prints a channel
//!   the way the table does: data value, `-` for an anti-token, `*` for a
//!   bubble),
//! * the protocol/temporal property checkers of `elastic-verify`,
//! * transfer-stream extraction for transfer-equivalence checks.

use std::collections::BTreeMap;

use elastic_core::{ChannelId, Netlist};

use crate::signal::{ChannelState, TraceSymbol};

/// A recorded simulation trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// `cycles[t][c]` is the state of channel index `c` during cycle `t`.
    cycles: Vec<Vec<ChannelState>>,
    /// Maps channel ids to indices into the per-cycle vectors.
    channel_index: BTreeMap<ChannelId, usize>,
    /// Channel names in index order (for reports).
    channel_names: Vec<String>,
}

impl Trace {
    /// Creates an empty trace for the channels of `netlist`, in a fixed order.
    pub fn new(netlist: &Netlist) -> Self {
        let mut channel_index = BTreeMap::new();
        let mut channel_names = Vec::new();
        for (index, channel) in netlist.live_channels().enumerate() {
            channel_index.insert(channel.id, index);
            channel_names.push(channel.name.clone());
        }
        Trace { cycles: Vec::new(), channel_index, channel_names }
    }

    /// Records the settled signals of one cycle (called by the engine).
    pub fn record(&mut self, states: &[ChannelState]) {
        self.cycles.push(states.to_vec());
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// The raw per-cycle channel states, `rows()[t][c]` being channel index
    /// `c` during cycle `t` (used by the engine-equivalence tests).
    pub fn rows(&self) -> &[Vec<ChannelState>] {
        &self.cycles
    }

    /// `true` when no cycle has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Number of channels per recorded cycle.
    pub fn channel_count(&self) -> usize {
        self.channel_names.len()
    }

    /// The state of a channel during a given cycle.
    pub fn state(&self, channel: ChannelId, cycle: usize) -> Option<ChannelState> {
        let index = *self.channel_index.get(&channel)?;
        self.cycles.get(cycle).and_then(|states| states.get(index)).copied()
    }

    /// The full per-cycle history of a channel.
    pub fn channel_history(&self, channel: ChannelId) -> Vec<ChannelState> {
        match self.channel_index.get(&channel) {
            Some(&index) => self.cycles.iter().map(|states| states[index]).collect(),
            None => Vec::new(),
        }
    }

    /// The Table-1 style symbol row of a channel (token value / `-` / `*`).
    pub fn symbol_row(&self, channel: ChannelId) -> Vec<TraceSymbol> {
        self.channel_history(channel).iter().map(ChannelState::symbol).collect()
    }

    /// The transfer stream of a channel: the data values of the cycles in
    /// which a forward transfer completed, in order.
    pub fn transfer_stream(&self, channel: ChannelId) -> Vec<u64> {
        self.channel_history(channel)
            .iter()
            .filter(|state| state.forward_transfer())
            .map(|state| state.data)
            .collect()
    }

    /// Iterator over `(channel id, channel name)` pairs in trace order.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &str)> {
        self.channel_index.iter().map(move |(&id, &index)| (id, self.channel_names[index].as_str()))
    }

    /// Renders a compact textual table of the given channels over all cycles
    /// (one row per channel), in the style of Table 1 of the paper.
    pub fn render_table(&self, channels: &[(ChannelId, &str)]) -> String {
        let mut out = String::new();
        let cycles = self.len();
        out.push_str("cycle      ");
        for t in 0..cycles {
            out.push_str(&format!("{t:>6}"));
        }
        out.push('\n');
        for (channel, label) in channels {
            out.push_str(&format!("{label:<11}"));
            for symbol in self.symbol_row(*channel) {
                out.push_str(&format!("{:>6}", symbol.to_string()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::kind::{SinkSpec, SourceSpec};
    use elastic_core::{Netlist, Port};

    fn tiny_netlist() -> (Netlist, ChannelId) {
        let mut n = Netlist::new("t");
        let src = n.add_source("src", SourceSpec::always());
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        let ch = n.connect_named("wire", Port::output(src, 0), Port::input(sink, 0), 8).unwrap();
        (n, ch)
    }

    #[test]
    fn records_and_replays_channel_history() {
        let (netlist, channel) = tiny_netlist();
        let mut trace = Trace::new(&netlist);
        assert!(trace.is_empty());
        trace.record(&[ChannelState { forward_valid: true, data: 5, ..ChannelState::default() }]);
        trace.record(&[ChannelState::default()]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.channel_count(), 1);
        let history = trace.channel_history(channel);
        assert!(history[0].forward_valid);
        assert!(!history[1].forward_valid);
        assert_eq!(trace.transfer_stream(channel), vec![5]);
        assert_eq!(trace.state(channel, 0).unwrap().data, 5);
        assert!(trace.state(channel, 7).is_none());
    }

    #[test]
    fn symbol_rows_and_tables_follow_the_paper_notation() {
        let (netlist, channel) = tiny_netlist();
        let mut trace = Trace::new(&netlist);
        trace.record(&[ChannelState {
            forward_valid: true,
            data: 0xA1,
            ..ChannelState::default()
        }]);
        trace.record(&[ChannelState { backward_valid: true, ..ChannelState::default() }]);
        trace.record(&[ChannelState::default()]);
        let row = trace.symbol_row(channel);
        assert_eq!(
            row,
            vec![TraceSymbol::Token(0xA1), TraceSymbol::AntiToken, TraceSymbol::Bubble]
        );
        let table = trace.render_table(&[(channel, "wire")]);
        assert!(table.contains("wire"));
        assert!(table.contains('-'));
        assert!(table.contains('*'));
    }

    #[test]
    fn unknown_channels_yield_empty_histories() {
        let (netlist, _channel) = tiny_netlist();
        let trace = Trace::new(&netlist);
        assert!(trace.channel_history(ChannelId::new(99)).is_empty());
        assert!(trace.symbol_row(ChannelId::new(99)).is_empty());
    }
}
