//! Engine equivalence: the event-driven worklist settle phase must be
//! observationally identical to the naive full-sweep reference on every
//! paper scenario — bit-identical traces and reports, with strictly fewer
//! controller evaluations.

use elastic_core::library;
use elastic_core::Netlist;
use elastic_sim::scenarios::{build_fig1, Fig1Scenario, Fig1Variant};
use elastic_sim::{SettleStrategy, SimConfig, Simulation, SimulationReport};

fn run_with(
    netlist: &Netlist,
    strategy: SettleStrategy,
    cycles: u64,
) -> (Simulation, SimulationReport) {
    let config = SimConfig { settle: strategy, ..SimConfig::default() };
    let mut sim = Simulation::new(netlist, &config).expect("paper netlists simulate");
    let report = sim.run(cycles).expect("paper netlists settle");
    (sim, report)
}

/// Runs `netlist` under both settle strategies and asserts equivalence of
/// everything observable: the full per-cycle per-channel trace and every
/// report field except the engine-effort counters.
fn assert_engines_equivalent(name: &str, netlist: &Netlist, cycles: u64) {
    let (event_sim, event_report) = run_with(netlist, SettleStrategy::EventDriven, cycles);
    let (sweep_sim, sweep_report) = run_with(netlist, SettleStrategy::FullSweep, cycles);

    // The packed stores must be identical as a whole …
    assert_eq!(event_sim.trace(), sweep_sim.trace(), "{name}: traces must be bit-identical");
    // … and decode to the same signals cycle for cycle against the FullSweep
    // oracle, which exercises the bit-plane/data-column decoding paths.
    assert_eq!(event_sim.trace().len(), cycles as usize, "{name}: every cycle recorded");
    for cycle in 0..event_sim.trace().len() {
        let packed: Vec<_> = event_sim.trace().states_at(cycle).expect("recorded").collect();
        let oracle: Vec<_> = sweep_sim.trace().states_at(cycle).expect("recorded").collect();
        assert_eq!(packed, oracle, "{name}: cycle {cycle} decodes identically");
    }
    assert_eq!(event_report.cycles, sweep_report.cycles, "{name}: cycles");
    assert_eq!(event_report.sink_streams, sweep_report.sink_streams, "{name}: sink streams");
    assert_eq!(event_report.source_kills, sweep_report.source_kills, "{name}: source kills");
    assert_eq!(event_report.node_stats, sweep_report.node_stats, "{name}: node stats");
    assert_eq!(event_report.shared_stats, sweep_report.shared_stats, "{name}: shared stats");
    assert!(
        event_report.controller_evals < sweep_report.controller_evals,
        "{name}: the worklist engine must do strictly less work \
         (event-driven {} evals vs full-sweep {})",
        event_report.controller_evals,
        sweep_report.controller_evals
    );
}

#[test]
fn all_fig1_variants_are_engine_equivalent() {
    for variant in Fig1Variant::all() {
        let scenario = Fig1Scenario { variant, cycles: 400, ..Fig1Scenario::default() };
        let handles = build_fig1(&scenario);
        assert_engines_equivalent(variant.label(), &handles.netlist, scenario.cycles);
    }
}

#[test]
fn fig1d_speculation_is_engine_equivalent_across_select_biases() {
    for (taken_rate, seed) in [(0.05, 3u64), (0.5, 9), (0.95, 17)] {
        let scenario = Fig1Scenario {
            variant: Fig1Variant::Speculation,
            taken_rate,
            cycles: 300,
            seed,
            ..Fig1Scenario::default()
        };
        let handles = build_fig1(&scenario);
        assert_engines_equivalent(
            &format!("fig1d taken_rate={taken_rate}"),
            &handles.netlist,
            scenario.cycles,
        );
    }
}

#[test]
fn the_table1_trace_is_engine_equivalent() {
    let handles = library::table1();
    assert_engines_equivalent("table1", &handles.netlist, 64);
}

#[test]
fn the_resilient_speculative_design_is_engine_equivalent() {
    for (upset, seed) in [(0u64, 7u64), (0x10, 13)] {
        let config = library::ResilientConfig {
            data_width: 32,
            operands: (1..200).collect(),
            error_masks: vec![0, upset, 0, 0, upset, 0],
        };
        let handles = library::resilient_speculative(&config);
        assert_engines_equivalent(&format!("fig7b seed={seed}"), &handles.netlist, 200);
    }
}

#[test]
fn a_deep_zero_backward_chain_is_engine_equivalent() {
    // The asymptotic-win case of the sim_speed bench: stop/kill waves cross
    // 64 Lb=0 buffers combinationally under a stalling sink, so the worklist
    // pops nodes far outside the seeded rank order.
    use elastic_core::kind::{BackpressurePattern, BufferSpec};

    let n = library::deep_pipeline(
        64,
        BufferSpec::zero_backward(0),
        BackpressurePattern::List(vec![true, false, false, true]),
    );
    assert_engines_equivalent("zb-chain64", &n, 300);
}

#[test]
fn a_lazy_fork_behind_a_join_settles_under_both_engines() {
    // Regression (found by the elastic-gen differential fuzzer): the lazy
    // fork's eval used to write its branch valids twice per call — once
    // optimistically, once gated by all-branches-ready. The full-sweep
    // engine's convergence test counts every write, so a lazy fork whose
    // consumer stops it oscillated forever and was misreported as a
    // combinational loop, while the worklist engine (which terminates on
    // worklist drain) settled fine.
    use elastic_core::kind::{ForkSpec, FunctionSpec, SinkSpec, SourceSpec};
    use elastic_core::{Netlist, Op, Port};

    let mut n = Netlist::new("lazy_fork_regression");
    let src = n.add_source("src", SourceSpec::always());
    let fork = n.add_fork("fork", ForkSpec::lazy(3));
    let f = n.add_function("f", FunctionSpec::with_inputs(Op::Inc, 1));
    let s0 = n.add_sink("s0", SinkSpec::always_ready());
    let s1 = n.add_sink("s1", SinkSpec::always_ready());
    let s2 = n.add_sink("s2", SinkSpec::always_ready());
    n.connect(Port::output(src, 0), Port::input(fork, 0), 8).unwrap();
    n.connect(Port::output(fork, 0), Port::input(f, 0), 8).unwrap();
    n.connect(Port::output(f, 0), Port::input(s0, 0), 8).unwrap();
    n.connect(Port::output(fork, 1), Port::input(s1, 0), 8).unwrap();
    n.connect(Port::output(fork, 2), Port::input(s2, 0), 8).unwrap();

    assert_engines_equivalent("lazy-fork-join", &n, 100);
}

#[test]
fn the_variable_latency_designs_are_engine_equivalent() {
    let config = library::VarLatencyConfig {
        width: 8,
        spec_bits: 4,
        operands_a: (0..160).map(|i| i * 7 % 251).collect(),
        operands_b: (0..160).map(|i| i * 13 % 241).collect(),
        ..library::VarLatencyConfig::default()
    };
    let stalling = library::variable_latency_stalling(&config);
    assert_engines_equivalent("fig6a", &stalling.netlist, 150);
    let speculative = library::variable_latency_speculative(&config);
    assert_engines_equivalent("fig6b", &speculative.netlist, 150);
}
