//! Engine equivalence: the event-driven worklist settle phase must be
//! observationally identical to the naive full-sweep reference on every
//! paper scenario — bit-identical traces and reports, with strictly fewer
//! controller evaluations. The compiled settle backend
//! ([`SettleStrategy::Compiled`]) joins the same matrix: same traces, same
//! reports, and never more dynamic controller evaluations than the
//! event-driven engine.

use elastic_core::library;
use elastic_core::{Netlist, NodeId};
use elastic_sim::scenarios::{build_fig1, Fig1Scenario, Fig1Variant};
use elastic_sim::{
    LaneConfig, LaneSimulation, SettleStrategy, SimConfig, Simulation, SimulationReport, LANES,
};

fn run_with(
    netlist: &Netlist,
    strategy: SettleStrategy,
    cycles: u64,
) -> (Simulation, SimulationReport) {
    let config = SimConfig { settle: strategy, ..SimConfig::default() };
    let mut sim = Simulation::new(netlist, &config).expect("paper netlists simulate");
    let report = sim.run(cycles).expect("paper netlists settle");
    (sim, report)
}

/// Runs `netlist` under all three settle strategies and asserts equivalence
/// of everything observable: the full per-cycle per-channel trace and every
/// report field except the engine-effort counters.
fn assert_engines_equivalent(name: &str, netlist: &Netlist, cycles: u64) {
    let (event_sim, event_report) = run_with(netlist, SettleStrategy::EventDriven, cycles);
    let (sweep_sim, sweep_report) = run_with(netlist, SettleStrategy::FullSweep, cycles);
    let (compiled_sim, compiled_report) = run_with(netlist, SettleStrategy::Compiled, cycles);

    // The packed stores must be identical as a whole …
    assert_eq!(event_sim.trace(), sweep_sim.trace(), "{name}: traces must be bit-identical");
    assert_eq!(
        event_sim.trace(),
        compiled_sim.trace(),
        "{name}: compiled trace must be bit-identical"
    );
    // … and decode to the same signals cycle for cycle against the FullSweep
    // oracle, which exercises the bit-plane/data-column decoding paths.
    assert_eq!(event_sim.trace().len(), cycles as usize, "{name}: every cycle recorded");
    for cycle in 0..event_sim.trace().len() {
        let packed: Vec<_> = event_sim.trace().states_at(cycle).expect("recorded").collect();
        let oracle: Vec<_> = sweep_sim.trace().states_at(cycle).expect("recorded").collect();
        assert_eq!(packed, oracle, "{name}: cycle {cycle} decodes identically");
    }
    for (strategy, report) in [("full-sweep", &sweep_report), ("compiled", &compiled_report)] {
        assert_eq!(event_report.cycles, report.cycles, "{name}/{strategy}: cycles");
        assert_eq!(
            event_report.sink_streams, report.sink_streams,
            "{name}/{strategy}: sink streams"
        );
        assert_eq!(
            event_report.source_kills, report.source_kills,
            "{name}/{strategy}: source kills"
        );
        assert_eq!(event_report.node_stats, report.node_stats, "{name}/{strategy}: node stats");
        assert_eq!(
            event_report.shared_stats, report.shared_stats,
            "{name}/{strategy}: shared stats"
        );
    }
    assert!(
        event_report.controller_evals < sweep_report.controller_evals,
        "{name}: the worklist engine must do strictly less work \
         (event-driven {} evals vs full-sweep {})",
        event_report.controller_evals,
        sweep_report.controller_evals
    );
    assert!(
        compiled_report.controller_evals <= event_report.controller_evals,
        "{name}: fusing controllers must never add dynamic evals \
         (compiled {} evals vs event-driven {})",
        compiled_report.controller_evals,
        event_report.controller_evals
    );
}

/// The lane-0 contract, broadcast form: a 64-lane simulation whose lanes
/// all see the default environment must reproduce the scalar EventDriven
/// engine bit-identically **in every lane** — trace and report — and its
/// divergence map must stay empty.
fn assert_lane_broadcast_identity(name: &str, netlist: &Netlist, cycles: u64) {
    let (scalar_sim, scalar_report) = run_with(netlist, SettleStrategy::EventDriven, cycles);
    let lane_config = LaneConfig { track_divergence: true, ..LaneConfig::default() };
    let mut lane_sim = LaneSimulation::new(netlist, &lane_config).expect("paper netlists simulate");
    lane_sim.run(cycles).expect("paper netlists settle");

    assert_eq!(
        lane_sim.divergent_lanes(),
        0,
        "{name}: broadcast lanes must never diverge from lane 0"
    );
    for lane in 0..LANES {
        assert_eq!(
            lane_sim.trace(lane),
            scalar_sim.trace(),
            "{name}: lane {lane} trace must be bit-identical to the scalar engine"
        );
        let lane_report = lane_sim.report(lane);
        assert_eq!(lane_report.cycles, scalar_report.cycles, "{name}: lane {lane} cycles");
        assert_eq!(
            lane_report.sink_streams, scalar_report.sink_streams,
            "{name}: lane {lane} sink streams"
        );
        assert_eq!(
            lane_report.source_kills, scalar_report.source_kills,
            "{name}: lane {lane} source kills"
        );
        assert_eq!(
            lane_report.node_stats, scalar_report.node_stats,
            "{name}: lane {lane} node stats"
        );
        assert_eq!(
            lane_report.shared_stats, scalar_report.shared_stats,
            "{name}: lane {lane} shared stats"
        );
        assert_eq!(
            lane_report.commit_stats, scalar_report.commit_stats,
            "{name}: lane {lane} commit stats"
        );
    }
}

fn sink_ids(netlist: &Netlist) -> Vec<NodeId> {
    netlist.live_nodes().filter(|n| n.kind.kind_name() == "sink").map(|n| n.id).collect()
}

#[test]
fn all_fig1_variants_are_engine_equivalent() {
    for variant in Fig1Variant::all() {
        let scenario = Fig1Scenario { variant, cycles: 400, ..Fig1Scenario::default() };
        let handles = build_fig1(&scenario);
        assert_engines_equivalent(variant.label(), &handles.netlist, scenario.cycles);
    }
}

#[test]
fn fig1d_speculation_is_engine_equivalent_across_select_biases() {
    for (taken_rate, seed) in [(0.05, 3u64), (0.5, 9), (0.95, 17)] {
        let scenario = Fig1Scenario {
            variant: Fig1Variant::Speculation,
            taken_rate,
            cycles: 300,
            seed,
            ..Fig1Scenario::default()
        };
        let handles = build_fig1(&scenario);
        assert_engines_equivalent(
            &format!("fig1d taken_rate={taken_rate}"),
            &handles.netlist,
            scenario.cycles,
        );
    }
}

#[test]
fn the_table1_trace_is_engine_equivalent() {
    let handles = library::table1();
    assert_engines_equivalent("table1", &handles.netlist, 64);
}

#[test]
fn the_resilient_speculative_design_is_engine_equivalent() {
    for (upset, seed) in [(0u64, 7u64), (0x10, 13)] {
        let config = library::ResilientConfig {
            data_width: 32,
            operands: (1..200).collect(),
            error_masks: vec![0, upset, 0, 0, upset, 0],
        };
        let handles = library::resilient_speculative(&config);
        assert_engines_equivalent(&format!("fig7b seed={seed}"), &handles.netlist, 200);
    }
}

#[test]
fn a_deep_zero_backward_chain_is_engine_equivalent() {
    // The asymptotic-win case of the sim_speed bench: stop/kill waves cross
    // 64 Lb=0 buffers combinationally under a stalling sink, so the worklist
    // pops nodes far outside the seeded rank order.
    use elastic_core::kind::{BackpressurePattern, BufferSpec};

    let n = library::deep_pipeline(
        64,
        BufferSpec::zero_backward(0),
        BackpressurePattern::List(vec![true, false, false, true]),
    );
    assert_engines_equivalent("zb-chain64", &n, 300);
}

/// The lazy-fork-behind-a-join regression netlist (found by the
/// elastic-gen differential fuzzer — see the test below), also reused by
/// the lane-broadcast oracle because it exercises the optimistic two-pass.
fn lazy_fork_regression_netlist() -> Netlist {
    use elastic_core::kind::{ForkSpec, FunctionSpec, SinkSpec, SourceSpec};
    use elastic_core::{Op, Port};

    let mut n = Netlist::new("lazy_fork_regression");
    let src = n.add_source("src", SourceSpec::always());
    let fork = n.add_fork("fork", ForkSpec::lazy(3));
    let f = n.add_function("f", FunctionSpec::with_inputs(Op::Inc, 1));
    let s0 = n.add_sink("s0", SinkSpec::always_ready());
    let s1 = n.add_sink("s1", SinkSpec::always_ready());
    let s2 = n.add_sink("s2", SinkSpec::always_ready());
    n.connect(Port::output(src, 0), Port::input(fork, 0), 8).unwrap();
    n.connect(Port::output(fork, 0), Port::input(f, 0), 8).unwrap();
    n.connect(Port::output(f, 0), Port::input(s0, 0), 8).unwrap();
    n.connect(Port::output(fork, 1), Port::input(s1, 0), 8).unwrap();
    n.connect(Port::output(fork, 2), Port::input(s2, 0), 8).unwrap();
    n
}

#[test]
fn a_lazy_fork_behind_a_join_settles_under_both_engines() {
    // Regression (found by the elastic-gen differential fuzzer): the lazy
    // fork's eval used to write its branch valids twice per call — once
    // optimistically, once gated by all-branches-ready. The full-sweep
    // engine's convergence test counts every write, so a lazy fork whose
    // consumer stops it oscillated forever and was misreported as a
    // combinational loop, while the worklist engine (which terminates on
    // worklist drain) settled fine.
    assert_engines_equivalent("lazy-fork-join", &lazy_fork_regression_netlist(), 100);
}

#[test]
fn the_variable_latency_designs_are_engine_equivalent() {
    let config = library::VarLatencyConfig {
        width: 8,
        spec_bits: 4,
        operands_a: (0..160).map(|i| i * 7 % 251).collect(),
        operands_b: (0..160).map(|i| i * 13 % 241).collect(),
        ..library::VarLatencyConfig::default()
    };
    let stalling = library::variable_latency_stalling(&config);
    assert_engines_equivalent("fig6a", &stalling.netlist, 150);
    let speculative = library::variable_latency_speculative(&config);
    assert_engines_equivalent("fig6b", &speculative.netlist, 150);
}

// ---------------------------------------------------------------------------
// 64-lane engine: the lane-0 / broadcast bit-identity contract
// ---------------------------------------------------------------------------

#[test]
fn all_fig1_variants_are_lane_broadcast_identical() {
    for variant in Fig1Variant::all() {
        let scenario = Fig1Scenario { variant, cycles: 400, ..Fig1Scenario::default() };
        let handles = build_fig1(&scenario);
        assert_lane_broadcast_identity(variant.label(), &handles.netlist, scenario.cycles);
    }
}

#[test]
fn fig1d_speculation_is_lane_broadcast_identical_across_select_biases() {
    for (taken_rate, seed) in [(0.05, 3u64), (0.5, 9), (0.95, 17)] {
        let scenario = Fig1Scenario {
            variant: Fig1Variant::Speculation,
            taken_rate,
            cycles: 300,
            seed,
            ..Fig1Scenario::default()
        };
        let handles = build_fig1(&scenario);
        assert_lane_broadcast_identity(
            &format!("fig1d taken_rate={taken_rate}"),
            &handles.netlist,
            scenario.cycles,
        );
    }
}

#[test]
fn the_remaining_paper_designs_are_lane_broadcast_identical() {
    let handles = library::table1();
    assert_lane_broadcast_identity("table1", &handles.netlist, 64);

    let config = library::ResilientConfig {
        data_width: 32,
        operands: (1..200).collect(),
        error_masks: vec![0, 0x10, 0, 0, 0x10, 0],
    };
    let handles = library::resilient_speculative(&config);
    assert_lane_broadcast_identity("fig7b", &handles.netlist, 200);

    let config = library::VarLatencyConfig {
        width: 8,
        spec_bits: 4,
        operands_a: (0..160).map(|i| i * 7 % 251).collect(),
        operands_b: (0..160).map(|i| i * 13 % 241).collect(),
        ..library::VarLatencyConfig::default()
    };
    let stalling = library::variable_latency_stalling(&config);
    assert_lane_broadcast_identity("fig6a", &stalling.netlist, 150);
    let speculative = library::variable_latency_speculative(&config);
    assert_lane_broadcast_identity("fig6b", &speculative.netlist, 150);
}

#[test]
fn structural_stress_designs_are_lane_broadcast_identical() {
    use elastic_core::kind::{BackpressurePattern, BufferSpec};

    let n = library::deep_pipeline(
        64,
        BufferSpec::zero_backward(0),
        BackpressurePattern::List(vec![true, false, false, true]),
    );
    assert_lane_broadcast_identity("zb-chain64", &n, 300);

    assert_lane_broadcast_identity("lazy-fork-join", &lazy_fork_regression_netlist(), 100);
}

/// Deterministic per-lane sink pattern: six stop/go bits derived from the
/// lane index (lane 0 keeps the default always-ready environment so the
/// divergence map's reference lane is the unperturbed run).
fn lane_pattern(lane: usize) -> elastic_core::kind::BackpressurePattern {
    let bits = (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58;
    elastic_core::kind::BackpressurePattern::List(
        (0..6).map(|i| lane != 0 && bits & (1 << i) != 0).collect(),
    )
}

#[test]
fn per_lane_sink_environments_match_per_lane_scalar_runs() {
    // The production posture: 64 *different* environments in one
    // simulation instance. Every lane must still be bit-identical to a
    // scalar run given that lane's environment — the strong form of the
    // lane-0 contract — and the divergence map must light up.
    let cycles = 200;
    let scenario = Fig1Scenario { cycles, ..Fig1Scenario::default() };
    let handles = build_fig1(&scenario);
    let sinks = sink_ids(&handles.netlist);
    assert!(!sinks.is_empty(), "fig1 designs have sinks");
    let patterns: Vec<_> = (0..LANES).map(lane_pattern).collect();

    let lane_config = LaneConfig { track_divergence: true, ..LaneConfig::default() };
    let mut lane_sim = LaneSimulation::new(&handles.netlist, &lane_config).unwrap();
    let overrides: Vec<_> = sinks.iter().map(|&sink| (sink, patterns.clone())).collect();
    lane_sim.reset_with_lane_sink_patterns(&overrides);
    lane_sim.run(cycles).unwrap();

    let mut scalar = Simulation::new(&handles.netlist, &SimConfig::default()).unwrap();
    for lane in 0..LANES {
        let scalar_overrides: Vec<_> =
            sinks.iter().map(|&sink| (sink, lane_pattern(lane))).collect();
        scalar.reset_with_sink_patterns(&scalar_overrides);
        let scalar_report = scalar.run(cycles).unwrap();
        assert_eq!(
            lane_sim.trace(lane),
            scalar.trace(),
            "lane {lane} trace must match its scalar environment run"
        );
        let lane_report = lane_sim.report(lane);
        assert_eq!(lane_report.sink_streams, scalar_report.sink_streams, "lane {lane} streams");
        assert_eq!(lane_report.node_stats, scalar_report.node_stats, "lane {lane} node stats");
    }
    assert_ne!(
        lane_sim.divergent_lanes(),
        0,
        "distinct environments must show up in the divergence map"
    );
    assert_eq!(
        lane_sim.divergent_lanes() & 1,
        0,
        "lane 0 is the divergence reference and never marks itself"
    );
    assert_eq!(lane_sim.report(0).lane_divergence, lane_sim.divergence_map().to_vec());
}

/// Deterministic per-lane source offer pattern: six offer/withhold bits
/// derived from the lane index (lane 0 keeps offering every cycle so the
/// unperturbed environment stays in the block).
fn lane_offer_pattern(lane: usize) -> elastic_core::kind::SourcePattern {
    let bits = (lane as u64).wrapping_mul(0xD134_2543_DE82_EF95) >> 58;
    elastic_core::kind::SourcePattern::List(
        (0..6).map(|i| lane == 0 || bits & (1 << i) != 0).collect(),
    )
}

fn source_ids(netlist: &Netlist) -> Vec<NodeId> {
    netlist.live_nodes().filter(|n| n.kind.kind_name() == "source").map(|n| n.id).collect()
}

#[test]
fn per_lane_source_environments_match_per_lane_scalar_runs() {
    // The source-side mirror of the per-lane sink test: 64 different
    // token-offer environments in one instance, each lane bit-identical to
    // a scalar run given that lane's offer pattern.
    let cycles = 200;
    let scenario = Fig1Scenario { cycles, ..Fig1Scenario::default() };
    let handles = build_fig1(&scenario);
    let sources = source_ids(&handles.netlist);
    assert!(!sources.is_empty(), "fig1 designs have sources");
    let patterns: Vec<_> = (0..LANES).map(lane_offer_pattern).collect();

    let mut lane_sim = LaneSimulation::new(&handles.netlist, &LaneConfig::default()).unwrap();
    let overrides: Vec<_> = sources.iter().map(|&source| (source, patterns.clone())).collect();
    lane_sim.reset_with_lane_source_patterns(&overrides);
    lane_sim.run(cycles).unwrap();

    let mut scalar = Simulation::new(&handles.netlist, &SimConfig::default()).unwrap();
    for lane in 0..LANES {
        let scalar_overrides: Vec<_> =
            sources.iter().map(|&source| (source, lane_offer_pattern(lane))).collect();
        scalar.reset_with_source_patterns(&scalar_overrides);
        let scalar_report = scalar.run(cycles).unwrap();
        assert_eq!(
            lane_sim.trace(lane),
            scalar.trace(),
            "lane {lane} trace must match its scalar offer-pattern run"
        );
        let lane_report = lane_sim.report(lane);
        assert_eq!(lane_report.sink_streams, scalar_report.sink_streams, "lane {lane} streams");
        assert_eq!(lane_report.node_stats, scalar_report.node_stats, "lane {lane} node stats");
    }
}

#[test]
fn lane_blocked_scheduler_injection_matches_per_lane_scalar_runs() {
    // Lane-blocked scheduler injection: every lane gets a freshly built
    // scheduler from the per-lane factory, and must be bit-identical to a
    // scalar run overridden with the same policy. Table 1's shared module
    // has two user channels, so the static policies genuinely differ.
    use elastic_core::scheduler::StaticScheduler;
    use elastic_core::Scheduler;

    let cycles = 200;
    let handles = library::table1();
    let shared: Vec<(NodeId, usize)> = handles
        .netlist
        .live_nodes()
        .filter_map(|n| match &n.kind {
            elastic_core::NodeKind::Shared(spec) => Some((n.id, spec.users)),
            _ => None,
        })
        .collect();
    assert!(!shared.is_empty(), "table1 has a shared module");

    let mut lane_sim = LaneSimulation::new(&handles.netlist, &LaneConfig::default()).unwrap();
    let factories: Vec<(NodeId, Box<elastic_sim::SchedulerFactory<'_>>)> = shared
        .iter()
        .map(|&(node, users)| {
            let make: Box<elastic_sim::SchedulerFactory<'_>> =
                Box::new(move |lane| Box::new(StaticScheduler::new(lane % users)) as _);
            (node, make)
        })
        .collect();
    let overrides: Vec<(NodeId, &elastic_sim::SchedulerFactory<'_>)> =
        factories.iter().map(|(node, make)| (*node, make.as_ref())).collect();
    lane_sim.reset_with_schedulers(&overrides);
    lane_sim.run(cycles).unwrap();

    let mut scalar = Simulation::new(&handles.netlist, &SimConfig::default()).unwrap();
    let mut distinct_streams = std::collections::BTreeSet::new();
    for lane in 0..LANES {
        let scalar_overrides: Vec<(NodeId, Box<dyn Scheduler>)> = shared
            .iter()
            .map(|&(node, users)| {
                (node, Box::new(StaticScheduler::new(lane % users)) as Box<dyn Scheduler>)
            })
            .collect();
        scalar.reset_with_schedulers(scalar_overrides);
        let scalar_report = scalar.run(cycles).unwrap();
        assert_eq!(
            lane_sim.trace(lane),
            scalar.trace(),
            "lane {lane} trace must match its scalar scheduler run"
        );
        let lane_report = lane_sim.report(lane);
        assert_eq!(lane_report.sink_streams, scalar_report.sink_streams, "lane {lane} streams");
        assert_eq!(lane_report.shared_stats, scalar_report.shared_stats, "lane {lane} shared");
        distinct_streams.insert(format!("{:?}", lane_report.sink_streams));
    }
    assert!(
        distinct_streams.len() > 1,
        "the injected policies must actually change behaviour across lanes"
    );
}

#[test]
fn a_wedged_lane_block_deadlines_without_poisoning_sibling_workers() {
    use elastic_sim::sweep::{parallel_map_with_deadline, ScenarioFailure};
    use std::time::{Duration, Instant};

    // Four lane blocks of 64 sink environments each, swept with a per-case
    // wall-clock budget. Block 1 wedges (cooperatively spins past its
    // deadline, the way a pathological lane batch would); the sibling
    // blocks must come back intact and bit-equal to an undisturbed sweep.
    let cycles = 60;
    let scenario = Fig1Scenario { cycles, ..Fig1Scenario::default() };
    let handles = build_fig1(&scenario);
    let sinks = sink_ids(&handles.netlist);
    let blocks: Vec<usize> = (0..4).collect();

    let sweep_block = |sim: &mut LaneSimulation, block: usize| -> Vec<u64> {
        let patterns: Vec<_> =
            (0..LANES).map(|lane| lane_pattern((block * LANES + lane) % 61)).collect();
        let overrides: Vec<_> = sinks.iter().map(|&sink| (sink, patterns.clone())).collect();
        sim.reset_with_lane_sink_patterns(&overrides);
        sim.run(cycles).unwrap();
        (0..LANES).map(|lane| sim.report(lane).sink_transfers(sinks[0])).collect()
    };

    let lane_config = LaneConfig { record_trace: false, ..LaneConfig::default() };
    let expected: Vec<Vec<u64>> = {
        let mut sim = LaneSimulation::new(&handles.netlist, &lane_config).unwrap();
        blocks.iter().map(|&block| sweep_block(&mut sim, block)).collect()
    };

    let budget = Duration::from_millis(150);
    let results = parallel_map_with_deadline(
        &blocks,
        || LaneSimulation::new(&handles.netlist, &lane_config).unwrap(),
        budget,
        |sim, _, &block, deadline| {
            if block == 1 {
                while Instant::now() < deadline + Duration::from_millis(5) {
                    std::thread::yield_now();
                }
            }
            sweep_block(sim, block)
        },
    );

    assert_eq!(results.len(), 4);
    for (block, result) in results.iter().enumerate() {
        if block == 1 {
            match result.as_ref().unwrap_err() {
                ScenarioFailure::DeadlineExceeded { index, .. } => assert_eq!(*index, 1),
                other => panic!("expected a deadline failure, got {other}"),
            }
        } else {
            assert_eq!(
                result.as_ref().unwrap(),
                &expected[block],
                "sibling block {block} must be unaffected by the wedged block"
            );
        }
    }
}
