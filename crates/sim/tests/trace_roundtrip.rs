//! Property test: the columnar bit-packed trace encodes and decodes
//! **losslessly** on arbitrary `ChannelState` sequences — every streaming
//! accessor replays exactly what was recorded, across word-block boundaries,
//! data-column materialisation and in-place width promotion.

use elastic_core::ChannelId;
use elastic_sim::{ChannelState, Trace};
use proptest::prelude::*;

/// Decodes one sampled word into a `ChannelState`. The low four bits drive
/// the handshake flags; the data word cycles through the four column width
/// classes (including zero, so columns materialise lazily and promote
/// mid-recording).
fn state_from_word(word: u64) -> ChannelState {
    let data = match (word >> 4) % 5 {
        0 => 0,
        1 => (word >> 8) & 0xFF,
        2 => (word >> 8) & 0xFFFF,
        3 => (word >> 8) & 0xFFFF_FFFF,
        _ => word >> 8 | 1 << 63,
    };
    ChannelState {
        forward_valid: word & 1 != 0,
        forward_stop: word & 2 != 0,
        backward_valid: word & 4 != 0,
        backward_stop: word & 8 != 0,
        data,
    }
}

/// Builds a trace over `channels` synthetic 8-bit channels (the narrow width
/// hint forces the data columns to widen on the fly for large values).
fn empty_trace(channels: usize) -> (Trace, Vec<ChannelId>) {
    let ids: Vec<ChannelId> = (0..channels).map(|i| ChannelId::new(i as u32)).collect();
    let trace = Trace::with_channels(ids.iter().map(|&id| (id, format!("ch{}", id.index()), 8u8)));
    (trace, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_encode_decode_is_identity(
        words in proptest::collection::vec(any::<u64>(), 0..400),
        channels in 1usize..5,
    ) {
        let cycles = words.len() / channels;
        let rows: Vec<Vec<ChannelState>> = (0..cycles)
            .map(|t| (0..channels).map(|c| state_from_word(words[t * channels + c])).collect())
            .collect();

        let (mut trace, ids) = empty_trace(channels);
        for row in &rows {
            trace.record(row);
        }
        prop_assert_eq!(trace.len(), cycles);
        prop_assert_eq!(trace.channel_count(), channels);

        // channel_iter replays each channel's column exactly.
        for (c, &id) in ids.iter().enumerate() {
            let replayed: Vec<ChannelState> = trace.channel_iter(id).collect();
            let original: Vec<ChannelState> = rows.iter().map(|row| row[c]).collect();
            prop_assert_eq!(&replayed, &original, "channel {}", c);
            // transfer_stream is the filtered view of the same column.
            let transfers: Vec<u64> = trace.transfer_stream(id).collect();
            let expected: Vec<u64> = original
                .iter()
                .filter(|state| state.forward_transfer())
                .map(|state| state.data)
                .collect();
            prop_assert_eq!(transfers, expected, "channel {}", c);
        }

        // states_at replays each cycle's row exactly; state() agrees point-wise.
        for (t, row) in rows.iter().enumerate() {
            let replayed: Vec<ChannelState> = trace.states_at(t).expect("recorded").collect();
            prop_assert_eq!(&replayed, row, "cycle {}", t);
            for (c, &id) in ids.iter().enumerate() {
                prop_assert_eq!(trace.state(id, t), Some(row[c]));
            }
        }
        prop_assert!(trace.states_at(cycles).is_none());

        // A second identical recording produces an identical (Eq) trace.
        let (mut again, _) = empty_trace(channels);
        for row in &rows {
            again.record(row);
        }
        prop_assert_eq!(&again, &trace);

        // clear() rewinds to a genuinely fresh store.
        again.clear();
        let (fresh, _) = empty_trace(channels);
        prop_assert_eq!(again, fresh);
    }
}
