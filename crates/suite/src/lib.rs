//! # elastic-suite
//!
//! Umbrella crate of the *Speculation in Elastic Systems* reproduction. It
//! re-exports the workspace crates under one roof so that the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`)
//! have a single dependency, and provides a couple of small helpers shared by
//! both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use elastic_analysis as analysis;
pub use elastic_core as core;
pub use elastic_datapath as datapath;
pub use elastic_hdl as hdl;
pub use elastic_predict as predict;
pub use elastic_sim as sim;
pub use elastic_verify as verify;

/// Formats a throughput figure the way the reports in `EXPERIMENTS.md` do.
pub fn format_throughput(throughput: f64) -> String {
    format!("{throughput:.3} tokens/cycle")
}

/// Formats a relative change as a signed percentage.
pub fn format_percent(fraction: f64) -> String {
    format!("{:+.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers_are_stable() {
        assert_eq!(format_throughput(0.5), "0.500 tokens/cycle");
        assert_eq!(format_percent(0.091), "+9.1%");
        assert_eq!(format_percent(-0.36), "-36.0%");
    }
}
