//! # elastic-suite
//!
//! Umbrella crate of the *Speculation in Elastic Systems* reproduction. It
//! re-exports the workspace crates under one roof so that the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`)
//! have a single dependency, and provides a couple of small helpers shared by
//! both.
//!
//! The root `README.md` is included below — its quickstart snippet compiles
//! as a doctest of this crate, so the documented entry point cannot rot.
#![doc = include_str!("../../../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use elastic_analysis as analysis;
pub use elastic_core as core;
pub use elastic_datapath as datapath;
pub use elastic_explore as explore;
pub use elastic_hdl as hdl;
pub use elastic_predict as predict;
pub use elastic_serve as serve;
pub use elastic_sim as sim;
pub use elastic_verify as verify;

/// Builds the feed-forward speculation target shared by the commit-depth
/// benchmark (`examples/commit_depth.rs`) and its equivalence test
/// (`tests/commit_depth.rs`): sel/a/b sources into a lazy mux, an opaque
/// block behind it, and a sink driven by `backpressure`. Returns
/// `(netlist, mux, sink)`. The select stream and the back-pressure pattern
/// are the two knobs the depth sweep varies; everything else — widths, the
/// opaque op, node names — is pinned here so the benchmark measures exactly
/// the design the test verifies.
pub fn feedforward_mux_design(
    select: elastic_core::kind::DataStream,
    backpressure: elastic_core::kind::BackpressurePattern,
) -> (elastic_core::Netlist, elastic_core::NodeId, elastic_core::NodeId) {
    use elastic_core::kind::{DataStream, MuxSpec, SinkSpec, SourcePattern, SourceSpec};
    use elastic_core::{Netlist, Port};

    let mut n = Netlist::new("ff_commit_depth");
    let sel = n.add_source(
        "sel",
        SourceSpec { pattern: SourcePattern::Always, data: select, consume_on_kill: true },
    );
    let a = n.add_source("a", SourceSpec { data: DataStream::Counter, ..SourceSpec::always() });
    let b = n.add_source("b", SourceSpec { data: DataStream::Const(0x5A), ..SourceSpec::always() });
    let mux = n.add_mux("mux", MuxSpec::lazy(2));
    let f = n.add_op("f", elastic_core::op::opaque("F", 6, 120));
    let sink = n.add_sink("sink", SinkSpec { backpressure });
    n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
    n.connect(Port::output(a, 0), Port::input(mux, 1), 8).unwrap();
    n.connect(Port::output(b, 0), Port::input(mux, 2), 8).unwrap();
    n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
    n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();
    n.validate().unwrap();
    (n, mux, sink)
}

/// Formats a throughput figure the way the reports in `EXPERIMENTS.md` do.
pub fn format_throughput(throughput: f64) -> String {
    format!("{throughput:.3} tokens/cycle")
}

/// Formats a relative change as a signed percentage.
pub fn format_percent(fraction: f64) -> String {
    format!("{:+.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers_are_stable() {
        assert_eq!(format_throughput(0.5), "0.500 tokens/cycle");
        assert_eq!(format_percent(0.091), "+9.1%");
        assert_eq!(format_percent(-0.36), "-36.0%");
    }
}
