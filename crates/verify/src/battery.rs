//! The full verification battery for a transformation, in one call.
//!
//! The differential fuzzing harness of `elastic-gen` generates thousands of
//! netlist/transformation pairs; every pair must clear the same gauntlet the
//! hand-built paper scenarios clear in the unit tests: transfer equivalence
//! (Section 3.1), deadlock freedom and the scheduler leads-to property
//! (Section 4.1.1), token conservation through speculative shared modules
//! (Section 4.2) and the per-channel SELF protocol properties. This module
//! packages that gauntlet behind three harness entry points:
//!
//! * [`check_transform_battery`] — everything at once for one
//!   reference/transformed pair, with [`Verdict::notes`] recording which
//!   checks were vacuous for the design at hand (no shared modules → the
//!   conservation check has nothing to say, and a passed verdict must not
//!   pretend otherwise);
//! * [`check_equivalence_under_environments`] — transfer equivalence replayed
//!   under injected environment variations (source offer patterns and sink
//!   back-pressure patterns, matched to nodes by instance name), building
//!   **one simulation per design** and resetting it per variation via
//!   [`Simulation::reset_with_source_patterns`] /
//!   [`Simulation::reset_with_sink_patterns`];
//! * [`check_equivalence_across_schedulers`] — transfer equivalence of a
//!   speculative design for every given prediction policy (the paper's
//!   correctness claim quantifies over *all* schedulers satisfying leads-to;
//!   the scheduler may change performance, never the streams), injected via
//!   [`Simulation::reset_with_schedulers`] on a single build.

use elastic_core::kind::{BackpressurePattern, SourcePattern};
use elastic_core::{Netlist, NodeId, NodeKind, SchedulerKind};
use elastic_sim::{SimConfig, SimError, Simulation};

use crate::conservation::check_shared_module_conservation;
use crate::equivalence::{compare_transfer_streams, transfer_equivalent};
use crate::liveness::{check_deadlock_freedom, check_leads_to, LivenessOptions};
use crate::properties::{check_netlist_protocol, ProtocolOptions};
use crate::Verdict;

/// Configuration of [`check_transform_battery`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryOptions {
    /// Cycles simulated by the equivalence / conservation / protocol checks.
    pub cycles: u64,
    /// Options forwarded to the liveness checkers.
    pub liveness: LivenessOptions,
    /// Also check the per-channel SELF protocol properties on the transformed
    /// design's trace.
    pub check_protocol: bool,
}

impl Default for BatteryOptions {
    fn default() -> Self {
        BatteryOptions {
            cycles: 256,
            liveness: LivenessOptions { cycles: 256, ..LivenessOptions::default() },
            check_protocol: true,
        }
    }
}

fn has_shared_modules(netlist: &Netlist) -> bool {
    netlist.live_nodes().any(|n| matches!(n.kind, NodeKind::Shared(_)))
}

/// Runs the full battery on one reference/transformed pair.
///
/// Checks, in order: transfer equivalence of the pair, deadlock freedom of
/// the transformed design, the leads-to property and token conservation of
/// every shared module in it, and (optionally) the SELF protocol properties
/// on its trace. Checks that are vacuous for the design at hand — no shared
/// module to conserve tokens through — are recorded as coverage notes on the
/// verdict instead of silently counting as passed.
///
/// # Errors
///
/// Propagates simulation failures from either design (a transformed netlist
/// that no longer simulates is a finding, but of a different kind — callers
/// report it as a stage failure rather than a property violation).
pub fn check_transform_battery(
    reference: &Netlist,
    transformed: &Netlist,
    options: &BatteryOptions,
) -> Result<Verdict, SimError> {
    let mut verdict = Verdict::default();

    let equivalence = transfer_equivalent(reference, transformed, options.cycles)?;
    verdict.merge(equivalence.verdict);

    verdict.merge(check_deadlock_freedom(transformed, &options.liveness)?);

    if has_shared_modules(transformed) {
        verdict.merge(check_leads_to(transformed, &options.liveness)?);
        verdict.merge(check_shared_module_conservation(transformed, options.cycles)?);
    } else {
        verdict.note("no shared modules in the transformed design — leads-to and token-conservation checks are vacuous");
    }

    if options.check_protocol {
        verdict.merge(check_netlist_protocol(
            transformed,
            options.cycles,
            &ProtocolOptions::default(),
        )?);
    } else {
        verdict.note("SELF protocol properties not checked");
    }

    Ok(verdict)
}

/// One environment variation: offer/back-pressure overrides matched by node
/// *instance name*, so the same variation applies to both designs of a pair
/// even though their node ids differ.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnvironmentOverride {
    /// Label used in violation messages.
    pub label: String,
    /// `(source name, offer pattern)` replacements.
    pub sources: Vec<(String, SourcePattern)>,
    /// `(sink name, back-pressure pattern)` replacements.
    pub sinks: Vec<(String, BackpressurePattern)>,
}

fn named_overrides<T: Clone>(netlist: &Netlist, by_name: &[(String, T)]) -> Vec<(NodeId, T)> {
    by_name
        .iter()
        .filter_map(|(name, value)| netlist.find_node(name).map(|node| (node.id, value.clone())))
        .collect()
}

/// Checks transfer equivalence of a pair under every given environment
/// variation, reusing one [`Simulation`] per design across all variations.
///
/// Because overrides persist across resets, every variation must (and, as
/// produced by `elastic-gen`, does) name all the environment nodes it cares
/// about; nodes named in one variation and not the next keep the previous
/// override, so harnesses should override the full environment each time.
///
/// # Errors
///
/// Propagates simulation failures from either design.
pub fn check_equivalence_under_environments(
    reference: &Netlist,
    transformed: &Netlist,
    overrides: &[EnvironmentOverride],
    cycles: u64,
) -> Result<Verdict, SimError> {
    let mut verdict = Verdict::default();
    if overrides.is_empty() {
        verdict.note("no environment variations were injected");
        return Ok(verdict);
    }

    let config = SimConfig { record_trace: false, ..SimConfig::default() };
    let mut reference_sim = Simulation::new(reference, &config)?;
    let mut transformed_sim = Simulation::new(transformed, &config)?;

    for variation in overrides {
        for (sim, netlist) in [(&mut reference_sim, reference), (&mut transformed_sim, transformed)]
        {
            let sources = named_overrides(netlist, &variation.sources);
            let sinks = named_overrides(netlist, &variation.sinks);
            // A name that resolves in neither design would let the sweep
            // "pass" without ever applying the intended environment — note
            // it so the verdict stops claiming exhaustiveness.
            let unresolved =
                (variation.sources.len() - sources.len()) + (variation.sinks.len() - sinks.len());
            if unresolved > 0 {
                verdict.note(format!(
                    "environment `{}`: {unresolved} override name(s) not found in `{}`",
                    variation.label,
                    netlist.name()
                ));
            }
            sim.reset_with_source_patterns(&sources);
            // The second reset keeps the source overrides (they persist) and
            // installs the sink patterns of this variation on top.
            sim.reset_with_sink_patterns(&sinks);
        }
        let reference_report = reference_sim.run(cycles)?;
        let transformed_report = transformed_sim.run(cycles)?;
        let report = compare_transfer_streams(
            reference,
            &reference_report,
            transformed,
            &transformed_report,
        );
        for violation in report.verdict.violations {
            verdict.reject(format!("environment `{}`: {violation}", variation.label));
        }
        verdict.notes.extend(report.verdict.notes);
    }
    Ok(verdict)
}

/// Checks that the transfer streams of `transformed` match `reference` for
/// every given scheduler, injected into all of its shared modules on a single
/// build via [`Simulation::reset_with_schedulers`].
///
/// # Errors
///
/// Propagates simulation failures from either design.
pub fn check_equivalence_across_schedulers(
    reference: &Netlist,
    transformed: &Netlist,
    schedulers: &[SchedulerKind],
    cycles: u64,
) -> Result<Verdict, SimError> {
    let mut verdict = Verdict::default();
    let shared: Vec<(NodeId, usize)> = transformed
        .live_nodes()
        .filter_map(|n| match &n.kind {
            NodeKind::Shared(spec) => Some((n.id, spec.users)),
            _ => None,
        })
        .collect();
    if shared.is_empty() {
        verdict.note("no shared modules — scheduler injection is vacuous");
        return Ok(verdict);
    }
    if schedulers.is_empty() {
        verdict.note("no schedulers were injected");
        return Ok(verdict);
    }

    let config = SimConfig { record_trace: false, ..SimConfig::default() };
    let reference_report = Simulation::new(reference, &config)?.run(cycles)?;
    let mut transformed_sim = Simulation::new(transformed, &config)?;

    for scheduler in schedulers {
        transformed_sim.reset_with_schedulers(
            shared
                .iter()
                .map(|&(node, users)| (node, elastic_predict::from_kind(scheduler, users)))
                .collect(),
        );
        let transformed_report = transformed_sim.run(cycles)?;
        let report = compare_transfer_streams(
            reference,
            &reference_report,
            transformed,
            &transformed_report,
        );
        for violation in report.verdict.violations {
            verdict.reject(format!("scheduler {scheduler:?}: {violation}"));
        }
        verdict.notes.extend(report.verdict.notes);
    }
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::kind::DataStream;
    use elastic_core::library::{fig1a, Fig1Config};
    use elastic_core::transform::{speculate, SpeculateOptions};

    fn config() -> Fig1Config {
        Fig1Config {
            src0_data: DataStream::List(vec![2, 9, 4, 7, 1, 8, 3, 6]),
            src1_data: DataStream::List(vec![5, 0, 3, 8, 6, 2, 9, 1]),
            ..Fig1Config::default()
        }
    }

    fn speculated() -> (Netlist, Netlist) {
        let original = fig1a(&config());
        let mut transformed = original.netlist.clone();
        speculate(&mut transformed, original.mux, &SpeculateOptions::default()).unwrap();
        (original.netlist, transformed)
    }

    #[test]
    fn the_battery_passes_on_the_fig1_speculation() {
        let (reference, transformed) = speculated();
        let verdict =
            check_transform_battery(&reference, &transformed, &BatteryOptions::default()).unwrap();
        assert!(verdict.passed(), "{verdict}");
        assert!(verdict.is_exhaustive(), "fig1d has shared modules; nothing is vacuous: {verdict}");
    }

    #[test]
    fn vacuous_checks_are_reported_as_notes() {
        let (reference, _) = speculated();
        let verdict =
            check_transform_battery(&reference, &reference, &BatteryOptions::default()).unwrap();
        assert!(verdict.passed(), "{verdict}");
        assert!(!verdict.is_exhaustive(), "no shared modules → conservation must be noted");
        assert!(verdict.to_string().contains("vacuous"));
    }

    #[test]
    fn environment_injection_holds_equivalence_on_fig1() {
        let (reference, transformed) = speculated();
        let overrides = vec![
            EnvironmentOverride {
                label: "paced sources, stalling sink".into(),
                sources: vec![
                    ("src0".into(), SourcePattern::Every(2)),
                    ("src1".into(), SourcePattern::Always),
                ],
                sinks: vec![("sink".into(), BackpressurePattern::Every(3))],
            },
            EnvironmentOverride {
                label: "bursty".into(),
                sources: vec![
                    ("src0".into(), SourcePattern::List(vec![true, true, false])),
                    ("src1".into(), SourcePattern::Always),
                ],
                sinks: vec![("sink".into(), BackpressurePattern::Never)],
            },
        ];
        let verdict =
            check_equivalence_under_environments(&reference, &transformed, &overrides, 200)
                .unwrap();
        assert!(verdict.passed(), "{verdict}");
    }

    #[test]
    fn scheduler_injection_holds_equivalence_on_fig1() {
        let (reference, transformed) = speculated();
        let schedulers = [
            SchedulerKind::Static(0),
            SchedulerKind::Static(1),
            SchedulerKind::LastTaken,
            SchedulerKind::TwoBit,
            SchedulerKind::RoundRobin,
        ];
        let verdict =
            check_equivalence_across_schedulers(&reference, &transformed, &schedulers, 250)
                .unwrap();
        assert!(verdict.passed(), "{verdict}");
        // The reference design has no shared module, so running the injection
        // the other way round is vacuous and says so.
        let vacuous =
            check_equivalence_across_schedulers(&transformed, &reference, &schedulers, 50).unwrap();
        assert!(!vacuous.is_exhaustive());
    }

    #[test]
    fn a_broken_transformation_fails_the_battery() {
        // Sabotage: a "transformed" design whose F block silently increments
        // changes the streams; the battery must object.
        let (reference, _) = speculated();
        let original = fig1a(&config());
        let mut broken = original.netlist.clone();
        let f = broken.find_node("f").unwrap().id;
        if let Some(node) = broken.node_mut(f) {
            node.kind = NodeKind::Function(elastic_core::FunctionSpec::new(elastic_core::Op::Inc));
        }
        let verdict =
            check_transform_battery(&reference, &broken, &BatteryOptions::default()).unwrap();
        assert!(!verdict.passed());
    }
}
