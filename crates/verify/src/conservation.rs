//! Token conservation through speculative shared modules.
//!
//! The paper proves (by refinement checking with SMV) that a shared module
//! composed with an EB refines the EB specification: tokens are neither lost
//! nor reordered, for any scheduler satisfying the leads-to property. The
//! observable content of that proof is checked here dynamically: for every
//! user channel of every shared module, the sequence of tokens *offered* by
//! the producer equals the sequence of tokens that were either transferred
//! through the module or cancelled by anti-tokens — in the same order, with
//! nothing lost and nothing duplicated.

use elastic_core::{Netlist, NodeKind, Port};
use elastic_sim::{SimConfig, SimError, Simulation, Trace};

use crate::Verdict;

/// Per-channel conservation ledger: what was offered vs. what was consumed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChannelLedger {
    /// Values that completed a forward transfer, in order.
    pub transferred: Vec<u64>,
    /// Number of tokens cancelled by anti-tokens (their values are not
    /// required to be observable — the paper's anti-tokens carry no data).
    pub cancelled: usize,
    /// Number of cycles the channel spent in Retry (offered but stopped).
    pub retry_cycles: usize,
}

/// Extracts the conservation ledger of one channel from a trace.
///
/// An anti-token delivery counts as a cancellation whether or not a token was
/// simultaneously present on the channel (the cancellation then happens at
/// the producer); a forward transfer is only counted when no anti-token was
/// delivered in the same cycle.
pub fn channel_ledger(trace: &Trace, channel: elastic_core::ChannelId) -> ChannelLedger {
    let mut ledger = ChannelLedger::default();
    for state in trace.channel_iter(channel) {
        if state.backward_transfer() {
            ledger.cancelled += 1;
        } else if state.forward_transfer() {
            ledger.transferred.push(state.data);
        } else if state.forward_retry() {
            ledger.retry_cycles += 1;
        }
    }
    ledger
}

/// `true` when `needle` is a subsequence of `haystack` (order preserved),
/// comparing values masked to `width` bits.
///
/// The mask matters because the two ledgers live on *different channels*:
/// the shared module masks its result to its output channel's width, so a
/// 17-bit operand stream delivered through a 5-bit output wraps modulo 32 —
/// comparing raw values would flag a wrap as a reorder (a width artifact the
/// elastic-gen fuzzer hit on every feed-forward speculation whose moved
/// block narrowed the data path).
fn is_masked_subsequence(needle: &[u64], haystack: &[u64], width: u8) -> bool {
    let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
    let mut position = 0usize;
    for value in haystack {
        if position == needle.len() {
            break;
        }
        if value & mask == needle[position] & mask {
            position += 1;
        }
    }
    position == needle.len()
}

/// Checks token conservation around every shared module of a design.
///
/// The check runs the design, then verifies that on every shared-module input
/// channel the number of consumed tokens (transfers plus cancellations)
/// matches what the corresponding output channel accounted for, and that the
/// transferred values appear downstream in the same order they were offered
/// upstream (no reordering).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn check_shared_module_conservation(
    netlist: &Netlist,
    cycles: u64,
) -> Result<Verdict, SimError> {
    let mut sim = Simulation::new(netlist, &SimConfig::default())?;
    sim.run(cycles)?;
    let trace = sim.trace();
    let mut verdict = Verdict::default();

    for node in netlist.live_nodes() {
        let NodeKind::Shared(spec) = &node.kind else { continue };
        for user in 0..spec.users {
            // Compare the user's first operand channel with its output channel.
            let input_port = Port::input(node.id, user * spec.inputs_per_user);
            let output_port = Port::output(node.id, user);
            let (Some(input), Some(output)) =
                (netlist.channel_into(input_port), netlist.channel_from(output_port))
            else {
                continue;
            };
            let input_ledger = channel_ledger(trace, input.id);
            let output_ledger = channel_ledger(trace, output.id);

            // Every token consumed at the input (used or annihilated in place)
            // must show up at the output side as either a delivered result or
            // an anti-token cancellation — allowing one in-flight decision at
            // the end of the run.
            let consumed = input_ledger.transferred.len() + input_ledger.cancelled;
            let accounted = output_ledger.transferred.len() + output_ledger.cancelled;
            if consumed > accounted + 1 {
                verdict.reject(format!(
                    "shared module {} user {user}: {consumed} tokens entered but only \
                     {accounted} were delivered or cancelled (tokens lost)",
                    node.name
                ));
            }
            if accounted > consumed + 1 {
                verdict.reject(format!(
                    "shared module {} user {user}: {accounted} results left the module but only \
                     {consumed} tokens entered (tokens duplicated)",
                    node.name
                ));
            }
            // Order preservation: when the shared operation is a pure
            // pass-through (identity/opaque), the delivered results must be a
            // subsequence of the values consumed at the input (the missing
            // ones are exactly the tokens whose results were cancelled),
            // under the output channel's width mask — the module masks its
            // result at the producer like every other data entry point.
            if spec.op.is_identity_like()
                && spec.inputs_per_user == 1
                && !is_masked_subsequence(
                    &output_ledger.transferred,
                    &input_ledger.transferred,
                    output.width,
                )
            {
                verdict.reject(format!(
                    "shared module {} user {user}: results were reordered",
                    node.name
                ));
            }
        }
    }
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{fig1d, table1, Fig1Config};
    use elastic_core::SchedulerKind;

    #[test]
    fn speculation_conserves_tokens_in_the_fig1_loop() {
        for scheduler in [
            SchedulerKind::LastTaken,
            SchedulerKind::Static(0),
            SchedulerKind::RoundRobin,
            SchedulerKind::TwoBit,
        ] {
            let handles =
                fig1d(&Fig1Config { scheduler: scheduler.clone(), ..Fig1Config::default() });
            let verdict = check_shared_module_conservation(&handles.netlist, 300).unwrap();
            assert!(verdict.passed(), "scheduler {scheduler:?}: {verdict}");
        }
    }

    #[test]
    fn the_table1_module_conserves_tokens() {
        let handles = table1();
        let verdict = check_shared_module_conservation(&handles.netlist, 10).unwrap();
        assert!(verdict.passed(), "{verdict}");
    }

    #[test]
    fn narrowing_output_channels_do_not_flag_reordering() {
        // 17-bit operand streams through a pass-through shared module onto
        // 5-bit output channels: the results wrap modulo 32 at the producer
        // mask, which the order check must compare under — not flag as a
        // reorder once the counters pass 31.
        use elastic_core::kind::{BufferSpec, SharedSpec, SinkSpec, SourceSpec};
        use elastic_core::op::opaque;
        let mut n = elastic_core::Netlist::new("narrow");
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let shared = n.add_shared("sh", SharedSpec::new(2, opaque("F", 4, 50)));
        let eb0 = n.add_buffer("eb0", BufferSpec::standard(0));
        let eb1 = n.add_buffer("eb1", BufferSpec::standard(0));
        let sink0 = n.add_sink("sink0", elastic_core::SinkSpec::always_ready());
        let sink1 = n.add_sink("sink1", SinkSpec::always_ready());
        n.connect(Port::output(src0, 0), Port::input(shared, 0), 17).unwrap();
        n.connect(Port::output(src1, 0), Port::input(shared, 1), 17).unwrap();
        n.connect(Port::output(shared, 0), Port::input(eb0, 0), 5).unwrap();
        n.connect(Port::output(shared, 1), Port::input(eb1, 0), 5).unwrap();
        n.connect(Port::output(eb0, 0), Port::input(sink0, 0), 5).unwrap();
        n.connect(Port::output(eb1, 0), Port::input(sink1, 0), 5).unwrap();
        n.validate().unwrap();
        let verdict = check_shared_module_conservation(&n, 160).unwrap();
        assert!(verdict.passed(), "{verdict}");
    }

    #[test]
    fn ledgers_classify_transfers_cancellations_and_retries() {
        use elastic_sim::ChannelState;
        let mut n = elastic_core::Netlist::new("t");
        let src = n.add_source("src", elastic_core::SourceSpec::always());
        let sink = n.add_sink("sink", elastic_core::SinkSpec::always_ready());
        let ch = n.connect(Port::output(src, 0), Port::input(sink, 0), 8).unwrap();
        let mut trace = elastic_sim::Trace::new(&n);
        trace.record(&[ChannelState { forward_valid: true, data: 1, ..ChannelState::default() }]);
        trace.record(&[ChannelState {
            forward_valid: true,
            forward_stop: true,
            ..ChannelState::default()
        }]);
        trace.record(&[ChannelState {
            forward_valid: true,
            backward_valid: true,
            ..ChannelState::default()
        }]);
        let ledger = channel_ledger(&trace, ch);
        assert_eq!(ledger.transferred, vec![1]);
        assert_eq!(ledger.retry_cycles, 1);
        assert_eq!(ledger.cancelled, 1);
    }
}
