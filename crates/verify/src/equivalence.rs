//! Transfer equivalence between two elastic designs.
//!
//! Two elastic systems are *transfer equivalent* (Section 3.1, ref \[10\])
//! if, given identical input streams, their output transfer streams match —
//! the cycle at which each transfer happens is irrelevant, only the sequence
//! of transferred values counts. This is the correctness criterion for every
//! transformation in `elastic-core`: bubble insertion, retiming, Shannon
//! decomposition, sharing and the composite speculation pass must all leave
//! the transfer streams unchanged.
//!
//! Unlike the per-channel checkers of [`crate::properties`], this check
//! never touches a recorded trace: the sink controllers accumulate their
//! transfer streams directly, so both designs simulate with tracing off
//! (`record_trace: false`) and the comparison is allocation-free per cycle.

use elastic_core::{Netlist, NodeId};
use elastic_sim::{SimConfig, SimError, Simulation, SimulationReport};

use crate::Verdict;

/// Result of comparing the transfer streams of two designs.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// Number of values compared per sink (the shorter stream's length).
    pub compared: Vec<(String, usize)>,
    /// The verdict.
    pub verdict: Verdict,
}

/// Checks transfer equivalence of two netlists by simulation.
///
/// Both designs are simulated for `cycles` cycles; for every *sink name*
/// present in both netlists, the stream of transferred values of one design
/// must be a prefix of the other's (the faster design may simply have gotten
/// further within the cycle budget). Sinks are matched by instance name, so
/// the transformed design must keep the observation points of the original —
/// which all `elastic-core` transformations do.
///
/// # Errors
///
/// Propagates simulation failures from either design.
pub fn transfer_equivalent(
    reference: &Netlist,
    transformed: &Netlist,
    cycles: u64,
) -> Result<EquivalenceReport, SimError> {
    let config = SimConfig { record_trace: false, ..SimConfig::default() };
    let reference_report = Simulation::new(reference, &config)?.run(cycles)?;
    let transformed_report = Simulation::new(transformed, &config)?.run(cycles)?;
    Ok(compare_transfer_streams(reference, &reference_report, transformed, &transformed_report))
}

/// Compares the sink transfer streams of two already-simulated designs.
///
/// This is the report-level core of [`transfer_equivalent`], exposed so that
/// harnesses which drive the simulations themselves — e.g. the
/// environment/scheduler injection sweeps of [`crate::battery`], which build
/// one [`Simulation`] per design and reset it per variation — can reuse the
/// exact same prefix-comparison semantics: for every sink name present in the
/// reference design, one design's value stream must be a prefix of the
/// other's (sinks are matched by instance name).
pub fn compare_transfer_streams(
    reference: &Netlist,
    reference_report: &SimulationReport,
    transformed: &Netlist,
    transformed_report: &SimulationReport,
) -> EquivalenceReport {
    let mut verdict = Verdict::default();
    let mut compared = Vec::new();

    let reference_sinks: Vec<(String, NodeId)> = reference
        .live_nodes()
        .filter(|n| matches!(n.kind, elastic_core::NodeKind::Sink(_)))
        .map(|n| (n.name.clone(), n.id))
        .collect();
    if reference_sinks.is_empty() {
        verdict.reject("the reference design has no sinks to observe");
    }

    for (name, reference_sink) in reference_sinks {
        let Some(transformed_sink) = transformed
            .live_nodes()
            .find(|n| n.name == name && matches!(n.kind, elastic_core::NodeKind::Sink(_)))
            .map(|n| n.id)
        else {
            verdict.reject(format!("sink `{name}` is missing from the transformed design"));
            continue;
        };
        let reference_values = reference_report.sink_values(reference_sink);
        let transformed_values = transformed_report.sink_values(transformed_sink);
        let common = reference_values.len().min(transformed_values.len());
        if common == 0 && (!reference_values.is_empty() || !transformed_values.is_empty()) {
            verdict.reject(format!(
                "sink `{name}`: one design transferred nothing ({} vs {} values)",
                reference_values.len(),
                transformed_values.len()
            ));
            continue;
        }
        if reference_values[..common] != transformed_values[..common] {
            let index = reference_values[..common]
                .iter()
                .zip(&transformed_values[..common])
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            verdict.reject(format!(
                "sink `{name}`: transfer streams diverge at transfer {index} \
                 (reference {:#x}, transformed {:#x})",
                reference_values[index], transformed_values[index]
            ));
        }
        compared.push((name, common));
    }

    EquivalenceReport { compared, verdict }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{self, Fig1Config};
    use elastic_core::transform::{insert_bubble, speculate, SpeculateOptions};
    use elastic_core::SchedulerKind;

    fn config() -> Fig1Config {
        Fig1Config {
            src0_data: elastic_core::kind::DataStream::List(vec![3, 6, 1, 4, 9, 2, 7, 8]),
            src1_data: elastic_core::kind::DataStream::List(vec![5, 0, 2, 9, 6, 3, 1, 4]),
            ..Fig1Config::default()
        }
    }

    #[test]
    fn bubble_insertion_preserves_transfer_streams() {
        let original = library::fig1a(&config());
        let mut transformed = original.netlist.clone();
        let mux_out =
            transformed.channel_from(elastic_core::Port::output(original.mux, 0)).unwrap().id;
        insert_bubble(&mut transformed, mux_out).unwrap();
        let report = transfer_equivalent(&original.netlist, &transformed, 200).unwrap();
        assert!(report.verdict.passed(), "{}", report.verdict);
        assert!(report.compared.iter().any(|(_, n)| *n > 50));
    }

    #[test]
    fn speculation_preserves_transfer_streams_for_every_scheduler() {
        let original = library::fig1a(&config());
        for scheduler in [
            SchedulerKind::Static(0),
            SchedulerKind::Static(1),
            SchedulerKind::LastTaken,
            SchedulerKind::TwoBit,
            SchedulerKind::RoundRobin,
        ] {
            let mut transformed = original.netlist.clone();
            speculate(
                &mut transformed,
                original.mux,
                &SpeculateOptions { scheduler: scheduler.clone(), ..SpeculateOptions::default() },
            )
            .unwrap();
            let report = transfer_equivalent(&original.netlist, &transformed, 300).unwrap();
            assert!(
                report.verdict.passed(),
                "scheduler {scheduler:?} broke transfer equivalence: {}",
                report.verdict
            );
        }
    }

    #[test]
    fn a_functionally_different_design_is_rejected() {
        let original = library::fig1a(&config());
        // Changing F's data behaviour (identity -> increment) changes the stream.
        let mut different = original.netlist.clone();
        let f = different.find_node("f").unwrap().id;
        if let Some(node) = different.node_mut(f) {
            node.kind = elastic_core::NodeKind::Function(elastic_core::FunctionSpec::new(
                elastic_core::Op::Inc,
            ));
        }
        let report = transfer_equivalent(&original.netlist, &different, 100).unwrap();
        assert!(!report.verdict.passed());
    }

    #[test]
    fn missing_sinks_are_reported() {
        let original = library::fig1a(&config());
        let mut renamed = original.netlist.clone();
        let sink = renamed.find_node("sink").unwrap().id;
        if let Some(node) = renamed.node_mut(sink) {
            node.name = "observer".into();
        }
        let report = transfer_equivalent(&original.netlist, &renamed, 50).unwrap();
        assert!(!report.verdict.passed());
        assert!(report.verdict.to_string().contains("missing"));
    }
}
