//! Bounded exhaustive and randomized exploration of environment behaviour.
//!
//! The paper verifies its controllers with NuSMV over *all* environment
//! behaviours. This reproduction substitutes two dynamic techniques
//! (documented in `DESIGN.md`):
//!
//! * **bounded exhaustive exploration** — for a small depth `d`, every
//!   combination of per-cycle sink back-pressure *and* source token-offer
//!   patterns is enumerated (2^(d·(sinks+sources)) combinations, simulated
//!   64 at a time by the bit-parallel lane engine) and the SELF protocol
//!   plus deadlock-freedom are checked on each run. For the small
//!   controller compositions the paper verifies, this covers the same
//!   environment nondeterminism the model checker explores, up to the
//!   bound;
//! * **randomized adversarial scheduling** — shared modules are driven by
//!   seeded random schedulers (which on their own do not satisfy leads-to) to
//!   confirm that the controller's starvation override keeps the system live
//!   regardless of the prediction policy, as claimed in Section 4.2. The
//!   runs are packed into lane blocks via the engine's lane-blocked
//!   scheduler injection, one seeded scheduler per lane.

use elastic_core::kind::{BackpressurePattern, SourcePattern};
use elastic_core::{Netlist, NodeKind, Scheduler};
use elastic_predict::RandomScheduler;
use elastic_sim::sweep::lane_map;
use elastic_sim::{LaneConfig, LaneSimulation, SchedulerFactory, SimError, LANES};

use crate::liveness::{check_leads_to_on_trace, LivenessOptions};
use crate::properties::{check_trace, ProtocolOptions};
use crate::Verdict;

/// Options for the bounded exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorationOptions {
    /// Depth (in cycles) of the enumerated sink back-pressure and source
    /// token-offer patterns.
    pub pattern_depth: usize,
    /// Number of cycles to simulate per enumerated pattern (the pattern
    /// repeats cyclically).
    pub cycles_per_run: u64,
    /// Cap on the number of simulation runs. Each run is one 64-lane block
    /// covering [`LANES`] environment combinations, so up to
    /// `max_runs × 64` combinations are enumerated (safety valve for
    /// netlists with many sinks).
    pub max_runs: usize,
    /// Number of randomized adversarial-scheduler runs.
    pub random_scheduler_runs: usize,
    /// Seed for the randomized runs.
    pub seed: u64,
}

impl Default for ExplorationOptions {
    fn default() -> Self {
        ExplorationOptions {
            pattern_depth: 3,
            cycles_per_run: 48,
            max_runs: 256,
            random_scheduler_runs: 8,
            seed: 0xE1A5,
        }
    }
}

/// Largest pattern space the enumeration will attempt exhaustively:
/// `2^26` combinations, i.e. `2^20` lane blocks of [`LANES`] environments
/// each. One named constant feeds **both** the cap applied to the
/// combination count and the truncation note below — they used to be two
/// separate `20` literals, and the note's exhaustiveness reasoning silently
/// compared against the already-capped count.
pub const MAX_EXHAUSTIVE_PATTERN_BITS: usize = 26;

/// Coverage of an enumeration of `pattern_bits` environment bits under
/// `max_runs` lane blocks: `(explored, combinations)`. The combination
/// space is capped at [`MAX_EXHAUSTIVE_PATTERN_BITS`]; each run covers
/// [`LANES`] combinations, which is what makes `pattern_bits ≤ 26`
/// reachable exhaustively (the scalar enumeration topped out at `2^20`
/// *and* spent one full simulation run per combination).
fn enumeration_coverage(pattern_bits: usize, max_runs: usize) -> (usize, usize) {
    let combinations = 1usize << pattern_bits.min(MAX_EXHAUSTIVE_PATTERN_BITS);
    let explored = combinations.min(max_runs.saturating_mul(LANES));
    (explored, combinations)
}

fn sinks_of(netlist: &Netlist) -> Vec<elastic_core::NodeId> {
    netlist.live_nodes().filter(|n| matches!(n.kind, NodeKind::Sink(_))).map(|n| n.id).collect()
}

fn sources_of(netlist: &Netlist) -> Vec<elastic_core::NodeId> {
    netlist.live_nodes().filter(|n| matches!(n.kind, NodeKind::Source(_))).map(|n| n.id).collect()
}

fn shared_modules_of(netlist: &Netlist) -> Vec<(elastic_core::NodeId, usize)> {
    netlist
        .live_nodes()
        .filter_map(|n| match &n.kind {
            NodeKind::Shared(spec) => Some((n.id, spec.users)),
            _ => None,
        })
        .collect()
}

/// Exhaustively enumerates sink back-pressure and source token-offer
/// patterns up to the configured depth and checks protocol compliance and
/// progress on every run.
///
/// The combination index packs one bit per enumerated cycle per
/// environment endpoint: sink `s` owns bits `s·d .. s·d+d` (a set bit
/// asserts stop that cycle) and source `j` owns bits
/// `(sinks+j)·d .. (sinks+j)·d+d` (a set bit *withholds* the token offer
/// that cycle), so combination 0 is the nominal stop-free, always-offering
/// environment. Overriding a source's offer pattern keeps its data stream:
/// the sweep varies *when* tokens arrive, never their values — the same
/// space the scalar engine's `reset_with_sink_patterns` /
/// `reset_with_source_patterns` pair spans, one environment at a time.
///
/// The enumerated combinations are independent, so they are packed into
/// [`LANES`]-wide blocks and fanned across OS threads via
/// [`lane_map`] — **one [`LaneSimulation`] build per worker thread**: each
/// worker constructs the lane simulation once (the only `netlist`
/// validation, controller construction and rank computation it ever pays)
/// and replays every block assigned to it via
/// [`LaneSimulation::reset_with_lane_sink_patterns`] and
/// [`LaneSimulation::reset_with_lane_source_patterns`], simulating 64
/// environment combinations per run. Results are collected in combination
/// order, making the merged verdict (and the first counterexample reported
/// for a failing design) identical to the sequential rebuild-per-run
/// enumeration this replaces.
///
/// When the enumeration is truncated — more than
/// 2^[`MAX_EXHAUSTIVE_PATTERN_BITS`] theoretical combinations, or more
/// combinations than [`ExplorationOptions::max_runs`] lane blocks cover —
/// the verdict carries an explicit coverage [`note`](Verdict::note), so a
/// "passed" result cannot masquerade as exhaustive
/// (see [`Verdict::is_exhaustive`]).
///
/// # Errors
///
/// Propagates simulation failures (which themselves count as verification
/// failures of the design under test). A run failure wedges its whole lane
/// block; the error of the lowest-numbered failing block is returned,
/// attributed to that block's first combination.
pub fn explore_environments(
    netlist: &Netlist,
    options: &ExplorationOptions,
) -> Result<Verdict, SimError> {
    let sinks = sinks_of(netlist);
    let sources = sources_of(netlist);
    let pattern_bits = options.pattern_depth * (sinks.len() + sources.len());
    let (explored, combinations) = enumeration_coverage(pattern_bits, options.max_runs);
    let runs: Vec<usize> = (0..explored).collect();

    let config = LaneConfig { track_divergence: false, ..LaneConfig::default() };
    let protocol = ProtocolOptions { check_liveness: false, ..ProtocolOptions::default() };
    let failures = lane_map(
        &runs,
        || LaneSimulation::new(netlist, &config),
        |worker_sim, _, block| -> Vec<Result<Option<String>, SimError>> {
            // A block-level failure lands in the block's first result slot
            // (the merge loop below short-circuits on the first `Err` in
            // combination order, so the padding `Ok(None)` slots are never
            // reported).
            let block_failed = |error: SimError| {
                let mut results: Vec<Result<Option<String>, SimError>> =
                    Vec::with_capacity(block.len());
                results.push(Err(error));
                results.resize_with(block.len(), || Ok(None));
                results
            };
            let sim = match worker_sim {
                Ok(sim) => sim,
                // Construction failures depend only on the netlist, never on
                // the combination: rebuilding reproduces the same error for
                // this block's report (cold path, never hit by valid
                // designs).
                Err(_) => {
                    return block_failed(
                        LaneSimulation::new(netlist, &config)
                            .expect_err("simulation build failures are deterministic"),
                    )
                }
            };
            let sink_overrides: Vec<(elastic_core::NodeId, Vec<BackpressurePattern>)> = sinks
                .iter()
                .enumerate()
                .map(|(sink_index, &sink)| {
                    let patterns = block
                        .iter()
                        .map(|&combination| {
                            let mut pattern = Vec::with_capacity(options.pattern_depth);
                            for cycle in 0..options.pattern_depth {
                                let bit = sink_index * options.pattern_depth + cycle;
                                pattern.push((combination >> bit) & 1 == 1);
                            }
                            BackpressurePattern::List(pattern)
                        })
                        .collect();
                    (sink, patterns)
                })
                .collect();
            let source_overrides: Vec<(elastic_core::NodeId, Vec<SourcePattern>)> = sources
                .iter()
                .enumerate()
                .map(|(source_index, &source)| {
                    let patterns = block
                        .iter()
                        .map(|&combination| {
                            let mut pattern = Vec::with_capacity(options.pattern_depth);
                            for cycle in 0..options.pattern_depth {
                                let bit =
                                    (sinks.len() + source_index) * options.pattern_depth + cycle;
                                // A set source bit withholds the offer, so
                                // combination 0 keeps the nominal
                                // always-offering environment.
                                pattern.push((combination >> bit) & 1 == 0);
                            }
                            SourcePattern::List(pattern)
                        })
                        .collect();
                    (source, patterns)
                })
                .collect();
            // Both overrides persist across the reset the second call
            // performs, so the block ends up with this combination set's
            // sink *and* source environments (depth 0 enumerates the single
            // empty pattern — leave the specs' own patterns in force).
            if options.pattern_depth > 0 {
                sim.reset_with_lane_sink_patterns(&sink_overrides);
                sim.reset_with_lane_source_patterns(&source_overrides);
            } else {
                sim.reset();
            }
            if let Err(error) = sim.run(options.cycles_per_run) {
                return block_failed(error);
            }
            block
                .iter()
                .enumerate()
                .map(|(lane, &combination)| {
                    let run_verdict = check_trace(netlist, sim.trace(lane), &protocol);
                    if run_verdict.passed() {
                        Ok(None)
                    } else {
                        Ok(Some(format!("environment combination {combination}: {run_verdict}")))
                    }
                })
                .collect()
        },
    );

    let mut verdict = Verdict::default();
    if pattern_bits > MAX_EXHAUSTIVE_PATTERN_BITS || explored < combinations {
        verdict.note(format!(
            "coverage truncated: explored {explored} of 2^{pattern_bits} environment \
             combinations (pattern_depth {} over {} sink(s) + {} source(s), max_runs {} × \
             {LANES} lanes)",
            options.pattern_depth,
            sinks.len(),
            sources.len(),
            options.max_runs
        ));
    }
    for failure in failures {
        if let Some(reason) = failure? {
            verdict.reject(reason);
        }
    }
    Ok(verdict)
}

/// Drives every shared module with seeded adversarial random schedulers and
/// checks that the design stays protocol-compliant and starvation-free.
///
/// The randomized runs derive their scheduler seeds from the run index
/// alone and are packed into [`LANES`]-wide blocks via the lane engine's
/// lane-blocked scheduler injection
/// ([`LaneSimulation::reset_with_schedulers`] builds one freshly seeded
/// [`RandomScheduler`] per lane), so a whole block of adversarial runs
/// costs one word-level simulation — like [`explore_environments`], each
/// worker thread builds one simulation and replays every block assigned to
/// it. Results are merged in run order, so the verdict (and the run index
/// named in each violation) is identical to the sequential scalar
/// rebuild-per-run loop this replaces.
///
/// # Errors
///
/// Propagates simulation failures (lowest-numbered failing run first).
pub fn explore_adversarial_schedulers(
    netlist: &Netlist,
    options: &ExplorationOptions,
) -> Result<Verdict, SimError> {
    let shared = shared_modules_of(netlist);
    let mut verdict = Verdict::default();
    if shared.is_empty() {
        return Ok(verdict);
    }
    let config = LaneConfig { track_divergence: false, ..LaneConfig::default() };
    let protocol = ProtocolOptions::default();
    let liveness =
        LivenessOptions { cycles: options.cycles_per_run.max(200), ..LivenessOptions::default() };
    let scheduler_seed = |run: usize| -> u64 { options.seed ^ ((run as u64 + 1) * 0x9E37_79B9) };
    let runs: Vec<usize> = (0..options.random_scheduler_runs).collect();
    let failures = lane_map(
        &runs,
        || LaneSimulation::new(netlist, &config),
        |worker_sim, _, block| -> Vec<Result<Option<String>, SimError>> {
            let block_failed = |error: SimError| {
                let mut results: Vec<Result<Option<String>, SimError>> =
                    Vec::with_capacity(block.len());
                results.push(Err(error));
                results.resize_with(block.len(), || Ok(None));
                results
            };
            let sim = match worker_sim {
                Ok(sim) => sim,
                Err(_) => {
                    return block_failed(
                        LaneSimulation::new(netlist, &config)
                            .expect_err("simulation build failures are deterministic"),
                    )
                }
            };
            // Lane ℓ replays run `block[ℓ]`; lanes past a short final block
            // repeat the last run's seed and are never inspected.
            let factories: Vec<(elastic_core::NodeId, Box<SchedulerFactory<'_>>)> = shared
                .iter()
                .map(|&(node, users)| {
                    let make: Box<SchedulerFactory<'_>> = Box::new(move |lane| {
                        let run = block[lane.min(block.len() - 1)];
                        Box::new(RandomScheduler::new(users, scheduler_seed(run)))
                            as Box<dyn Scheduler>
                    });
                    (node, make)
                })
                .collect();
            let overrides: Vec<(elastic_core::NodeId, &SchedulerFactory<'_>)> =
                factories.iter().map(|(node, make)| (*node, make.as_ref())).collect();
            sim.reset_with_schedulers(&overrides);
            if let Err(error) = sim.run(liveness.cycles) {
                return block_failed(error);
            }
            block
                .iter()
                .enumerate()
                .map(|(lane, &run)| {
                    let mut run_verdict = check_trace(netlist, sim.trace(lane), &protocol);
                    run_verdict.merge(check_leads_to_on_trace(netlist, sim.trace(lane), &liveness));
                    if run_verdict.passed() {
                        Ok(None)
                    } else {
                        Ok(Some(format!("adversarial scheduler run {run}: {run_verdict}")))
                    }
                })
                .collect()
        },
    );
    for failure in failures {
        if let Some(reason) = failure? {
            verdict.reject(reason);
        }
    }
    Ok(verdict)
}

/// Runs both exploration strategies and merges their verdicts.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn explore(netlist: &Netlist, options: &ExplorationOptions) -> Result<Verdict, SimError> {
    let mut verdict = explore_environments(netlist, options)?;
    verdict.merge(explore_adversarial_schedulers(netlist, options)?);
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{fig1d, table1, Fig1Config};
    use elastic_sim::{SimConfig, Simulation};

    #[test]
    fn the_speculative_fig1_design_survives_bounded_exploration() {
        let handles = fig1d(&Fig1Config::default());
        let options = ExplorationOptions {
            pattern_depth: 2,
            cycles_per_run: 32,
            max_runs: 16,
            random_scheduler_runs: 3,
            seed: 7,
        };
        let verdict = explore(&handles.netlist, &options).unwrap();
        assert!(verdict.passed(), "{verdict}");
    }

    #[test]
    fn the_table1_design_survives_environment_enumeration() {
        let handles = table1();
        let options = ExplorationOptions {
            pattern_depth: 2,
            cycles_per_run: 24,
            max_runs: 8,
            random_scheduler_runs: 0,
            seed: 3,
        };
        let verdict = explore_environments(&handles.netlist, &options).unwrap();
        assert!(verdict.passed(), "{verdict}");
    }

    #[test]
    fn truncated_enumerations_carry_an_explicit_coverage_note() {
        let handles = table1();
        // max_runs × 64 lanes far below the combination count (table1 has
        // one sink and three sources, so depth 10 spans 40 pattern bits —
        // capped at 2^26 — and 4 blocks cover only 256 combinations): the
        // verdict may pass but must say it is not exhaustive.
        let truncated = ExplorationOptions {
            pattern_depth: 10,
            cycles_per_run: 16,
            max_runs: 4,
            random_scheduler_runs: 0,
            seed: 1,
        };
        let verdict = explore_environments(&handles.netlist, &truncated).unwrap();
        assert!(verdict.passed(), "{verdict}");
        assert!(!verdict.is_exhaustive(), "a truncated sweep must not claim exhaustiveness");
        assert!(verdict.notes.iter().any(|note| note.contains("coverage truncated")), "{verdict}");
        assert!(verdict.to_string().contains("coverage truncated"));

        // Full enumeration: no note, the pass is exhaustive up to the bound.
        let full = ExplorationOptions {
            pattern_depth: 2,
            cycles_per_run: 16,
            max_runs: 1 << 16,
            random_scheduler_runs: 0,
            seed: 1,
        };
        let verdict = explore_environments(&handles.netlist, &full).unwrap();
        assert!(verdict.passed(), "{verdict}");
        assert!(verdict.is_exhaustive(), "{verdict}");
    }

    #[test]
    fn oversized_pattern_spaces_are_capped_and_noted() {
        // Within the exhaustive range (≤ 2^26) but max_runs only buys
        // 2 × 64 lanes, so the note must still name the full space: table1
        // has one sink + three sources, so depth 6 spans 24 pattern bits.
        let handles = table1();
        let options = ExplorationOptions {
            pattern_depth: 6, // 1 sink + 3 sources → 24 pattern bits
            cycles_per_run: 4,
            max_runs: 2,
            random_scheduler_runs: 0,
            seed: 1,
        };
        let verdict = explore_environments(&handles.netlist, &options).unwrap();
        assert!(!verdict.is_exhaustive());
        assert!(verdict.notes[0].contains("2^24"), "{verdict}");
        assert!(verdict.notes[0].contains("1 sink(s) + 3 source(s)"), "{verdict}");

        // Beyond the cap: 28 pattern bits exceeds MAX_EXHAUSTIVE_PATTERN_BITS,
        // so the note fires even though only one lane block actually runs.
        let options = ExplorationOptions {
            pattern_depth: 7, // 4 endpoints → 28 pattern bits, capped at 2^26
            cycles_per_run: 4,
            max_runs: 1,
            random_scheduler_runs: 0,
            seed: 1,
        };
        let verdict = explore_environments(&handles.netlist, &options).unwrap();
        assert!(!verdict.is_exhaustive());
        assert!(verdict.notes[0].contains("2^28"), "{verdict}");
        assert!(verdict.notes[0].contains("explored 64 of"), "{verdict}");
    }

    #[test]
    fn lane_blocks_raise_the_exhaustive_coverage_boundary() {
        // Pure coverage arithmetic at the old and new boundaries.
        // Old scalar cap: 2^20 combinations max, one per run. With lanes the
        // same 2^20 space is exhausted by 2^14 runs...
        assert_eq!(enumeration_coverage(20, 1 << 14), (1 << 20, 1 << 20));
        // ...and the old hard boundary 2^21 is now exhaustible too.
        assert_eq!(enumeration_coverage(21, 1 << 15), (1 << 21, 1 << 21));
        // New cap boundary: 26 bits exhaustive with 2^20 runs, 27 bits capped.
        assert_eq!(enumeration_coverage(26, 1 << 20), (1 << 26, 1 << 26));
        assert_eq!(enumeration_coverage(27, usize::MAX), (1 << 26, 1 << 26));
        // max_runs still truncates, in lane-block units.
        assert_eq!(enumeration_coverage(20, 16), (16 * LANES, 1 << 20));
        // Degenerate sink-less designs enumerate the single empty pattern.
        assert_eq!(enumeration_coverage(0, 1), (1, 1));
    }

    #[test]
    fn lane_enumeration_is_exhaustive_beyond_the_scalar_run_budget() {
        // Depth 3 over table1's 4 environment endpoints → 12 pattern bits →
        // 4096 combinations, covered exhaustively by 64 lane blocks; the
        // scalar enumeration would have needed 4096 runs.
        let handles = table1();
        let options = ExplorationOptions {
            pattern_depth: 3,
            cycles_per_run: 24,
            max_runs: 64,
            random_scheduler_runs: 0,
            seed: 1,
        };
        let verdict = explore_environments(&handles.netlist, &options).unwrap();
        assert!(verdict.passed(), "{verdict}");
        assert!(verdict.is_exhaustive(), "{verdict}");
    }

    #[test]
    fn parallel_enumeration_is_deterministic() {
        let handles = table1();
        let options = ExplorationOptions {
            pattern_depth: 2,
            cycles_per_run: 24,
            max_runs: 8,
            random_scheduler_runs: 0,
            seed: 3,
        };
        let first = explore_environments(&handles.netlist, &options).unwrap();
        let second = explore_environments(&handles.netlist, &options).unwrap();
        assert_eq!(first, second, "parallel enumeration must be reproducible");
    }

    #[test]
    fn a_seeded_failing_case_reports_identical_counterexamples_in_parallel() {
        // Stall the sink of the speculative Figure-1 design forever: tokens
        // pile up at the shared module and the leads-to property fails in
        // every adversarial scheduler run, deterministically per seed.
        let handles = fig1d(&Fig1Config::default());
        let mut broken = handles.netlist.clone();
        if let Some(node) = broken.node_mut(handles.sink) {
            node.kind = elastic_core::NodeKind::Sink(elastic_core::SinkSpec {
                backpressure: BackpressurePattern::List(vec![true]),
            });
        }
        let options = ExplorationOptions {
            pattern_depth: 0,
            cycles_per_run: 120,
            max_runs: 1,
            random_scheduler_runs: 4,
            seed: 0xBAD,
        };
        let first = explore_adversarial_schedulers(&broken, &options).unwrap();
        assert!(!first.passed(), "a permanently stalled sink must violate liveness");
        let second = explore_adversarial_schedulers(&broken, &options).unwrap();
        assert_eq!(
            first, second,
            "the parallel sweep must report the same counterexamples every time"
        );
        // Violations are merged in run order, exactly like the sequential
        // loop the parallel sweep replaced.
        let run_of = |violation: &String| -> usize {
            let rest = violation.strip_prefix("adversarial scheduler run ").unwrap_or("0");
            rest.split(':').next().unwrap_or("0").trim().parse().unwrap_or(0)
        };
        let runs: Vec<usize> = first.violations.iter().map(run_of).collect();
        let mut sorted = runs.clone();
        sorted.sort_unstable();
        assert_eq!(runs, sorted, "violations must come back in run order: {runs:?}");
    }

    #[test]
    fn the_lane_environment_sweep_matches_a_scalar_reference_enumeration() {
        // The regression pin for the lane-API gap this release closed: the
        // lane path of `explore_environments` (per-lane sink back-pressure
        // *and* source offers) must return exactly the verdict a sequential
        // scalar enumeration of the same combination space returns, bit
        // layout and all.
        let handles = table1();
        let netlist = &handles.netlist;
        let options = ExplorationOptions {
            pattern_depth: 1,
            cycles_per_run: 24,
            max_runs: 1 << 10,
            random_scheduler_runs: 0,
            seed: 3,
        };
        let lane_verdict = explore_environments(netlist, &options).unwrap();
        assert!(lane_verdict.is_exhaustive(), "{lane_verdict}");

        let sinks = sinks_of(netlist);
        let sources = sources_of(netlist);
        assert!(!sinks.is_empty() && !sources.is_empty(), "table1 has both endpoint kinds");
        let depth = options.pattern_depth;
        let combinations = 1usize << (depth * (sinks.len() + sources.len()));
        let protocol = ProtocolOptions { check_liveness: false, ..ProtocolOptions::default() };
        let mut scalar_verdict = Verdict::default();
        let mut streams = std::collections::BTreeSet::new();
        let mut sim = Simulation::new(netlist, &SimConfig::default()).unwrap();
        for combination in 0..combinations {
            let sink_overrides: Vec<_> = sinks
                .iter()
                .enumerate()
                .map(|(s, &sink)| {
                    let pattern = (0..depth)
                        .map(|cycle| (combination >> (s * depth + cycle)) & 1 == 1)
                        .collect();
                    (sink, BackpressurePattern::List(pattern))
                })
                .collect();
            let source_overrides: Vec<_> = sources
                .iter()
                .enumerate()
                .map(|(j, &source)| {
                    let pattern = (0..depth)
                        .map(|cycle| (combination >> ((sinks.len() + j) * depth + cycle)) & 1 == 0)
                        .collect();
                    (source, SourcePattern::List(pattern))
                })
                .collect();
            sim.reset_with_sink_patterns(&sink_overrides);
            sim.reset_with_source_patterns(&source_overrides);
            sim.run(options.cycles_per_run).unwrap();
            let run_verdict = check_trace(netlist, sim.trace(), &protocol);
            if !run_verdict.passed() {
                scalar_verdict
                    .reject(format!("environment combination {combination}: {run_verdict}"));
            }
            streams.insert(format!("{:?}", sim.report().sink_streams));
        }
        assert_eq!(
            lane_verdict, scalar_verdict,
            "lane and scalar environment sweeps must return identical verdicts"
        );
        assert!(streams.len() > 1, "the source-offer bits must actually vary observable behaviour");
    }

    #[test]
    fn the_lane_blocked_scheduler_sweep_matches_a_scalar_reference() {
        // Same broken design as the determinism test above: every
        // adversarial run violates leads-to, so the lane-blocked sweep must
        // reproduce the scalar per-run loop's verdict violation for
        // violation — identical run indices, identical diagnoses.
        let handles = fig1d(&Fig1Config::default());
        let mut broken = handles.netlist.clone();
        if let Some(node) = broken.node_mut(handles.sink) {
            node.kind = elastic_core::NodeKind::Sink(elastic_core::SinkSpec {
                backpressure: BackpressurePattern::List(vec![true]),
            });
        }
        let options = ExplorationOptions {
            pattern_depth: 0,
            cycles_per_run: 120,
            max_runs: 1,
            random_scheduler_runs: 4,
            seed: 0xBAD,
        };
        let lane_verdict = explore_adversarial_schedulers(&broken, &options).unwrap();
        assert!(!lane_verdict.passed(), "a permanently stalled sink must violate liveness");

        let shared = shared_modules_of(&broken);
        let protocol = ProtocolOptions::default();
        let liveness = LivenessOptions {
            cycles: options.cycles_per_run.max(200),
            ..LivenessOptions::default()
        };
        let mut scalar_verdict = Verdict::default();
        let mut sim = Simulation::new(&broken, &SimConfig::default()).unwrap();
        for run in 0..options.random_scheduler_runs {
            let overrides: Vec<(elastic_core::NodeId, Box<dyn Scheduler>)> = shared
                .iter()
                .map(|&(node, users)| {
                    let seed = options.seed ^ ((run as u64 + 1) * 0x9E37_79B9);
                    (node, Box::new(RandomScheduler::new(users, seed)) as Box<dyn Scheduler>)
                })
                .collect();
            sim.reset_with_schedulers(overrides);
            sim.run(liveness.cycles).unwrap();
            let mut run_verdict = check_trace(&broken, sim.trace(), &protocol);
            run_verdict.merge(check_leads_to_on_trace(&broken, sim.trace(), &liveness));
            if !run_verdict.passed() {
                scalar_verdict.reject(format!("adversarial scheduler run {run}: {run_verdict}"));
            }
        }
        assert_eq!(
            lane_verdict, scalar_verdict,
            "lane-blocked and scalar scheduler sweeps must return identical verdicts"
        );
    }

    #[test]
    fn designs_without_shared_modules_skip_the_scheduler_fuzzing() {
        let mut n = elastic_core::Netlist::new("plain");
        let src = n.add_source("src", elastic_core::SourceSpec::always());
        let sink = n.add_sink("sink", elastic_core::SinkSpec::always_ready());
        n.connect(elastic_core::Port::output(src, 0), elastic_core::Port::input(sink, 0), 8)
            .unwrap();
        let verdict = explore_adversarial_schedulers(&n, &ExplorationOptions::default()).unwrap();
        assert!(verdict.passed());
    }
}
