//! # elastic-verify
//!
//! Dynamic verification of elastic netlists, reproducing the checks of the
//! paper's Section 4.2 ("all elastic controllers have been verified with
//! NuSMV … the absence of deadlocks has been verified for any scheduler that
//! complies with the leads-to property") in pure Rust:
//!
//! * [`properties`] — the four SELF channel properties of Section 3.1
//!   (`Retry+`, `Retry-`, `Liveness`, `Invariant`) checked on every channel
//!   of a recorded trace;
//! * [`equivalence`] — transfer equivalence between two designs: identical
//!   input streams must yield identical output transfer streams (Section
//!   3.1), the correctness criterion for every transformation in
//!   `elastic-core`;
//! * [`liveness`] — deadlock detection and the scheduler *leads-to* property
//!   of Section 4.1.1 (every token that reaches a shared module is eventually
//!   served or cancelled);
//! * [`conservation`] — token conservation through speculative shared
//!   modules: no token is lost, duplicated or reordered (the observable
//!   content of the paper's refinement proof of shared module ∘ EB against
//!   the EB specification);
//! * [`battery`] — the whole gauntlet behind one entry point per
//!   reference/transformed pair, plus environment- and scheduler-injection
//!   equivalence sweeps; this is what the `elastic-gen` differential fuzzing
//!   harness runs on every generated netlist and transformation;
//! * [`exploration`] — bounded exhaustive exploration of environment
//!   behaviour (all back-pressure/offer patterns up to a depth) plus
//!   randomized adversarial schedulers, the substitute for symbolic model
//!   checking documented in `DESIGN.md`;
//! * [`monitor`] — streaming, fail-fast runtime counterparts of the trace
//!   checkers ([`monitor::ProtocolMonitor`], [`monitor::ProgressMonitor`],
//!   [`monitor::LeadsToMonitor`], [`monitor::ScoreboardMonitor`]) that plug
//!   into [`elastic_sim::Simulation::run_monitored`] and stop a faulted run
//!   at the violating cycle with a `(channel, cycle, invariant)` locus —
//!   the detection layer of the fault-injection campaign in `elastic-gen`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod battery;
pub mod conservation;
pub mod equivalence;
pub mod exploration;
pub mod liveness;
pub mod monitor;
pub mod properties;

pub use battery::{
    check_equivalence_across_schedulers, check_equivalence_under_environments,
    check_transform_battery, BatteryOptions, EnvironmentOverride,
};
pub use equivalence::transfer_equivalent;
pub use liveness::{diagnose_deadlock, DeadlockDiagnosis, WaitEdge, WaitReason};
pub use monitor::{
    standard_monitors, LeadsToMonitor, MonitorOptions, ProgressMonitor, ProtocolMonitor,
    ScoreboardMonitor,
};
pub use properties::{check_netlist_protocol, ProtocolViolation};

/// The outcome of a verification pass: either everything held, or a list of
/// human-readable violation descriptions — plus *notes* qualifying how much
/// was actually checked.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Verdict {
    /// Descriptions of every violated property (empty = pass).
    pub violations: Vec<String>,
    /// Coverage caveats that do **not** fail the verdict but qualify it —
    /// e.g. the bounded exploration truncating its enumeration. A verdict
    /// with notes passed *what was checked*, not everything there was to
    /// check; see [`Verdict::is_exhaustive`].
    pub notes: Vec<String>,
}

impl Verdict {
    /// `true` when no property was violated (coverage notes do not fail a
    /// verdict — check [`Verdict::is_exhaustive`] for that).
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// `true` when the pass carried no coverage caveats: a passed *and*
    /// exhaustive verdict is the strongest statement the checkers make.
    pub fn is_exhaustive(&self) -> bool {
        self.notes.is_empty()
    }

    /// Merges another verdict (violations and notes) into this one.
    pub fn merge(&mut self, other: Verdict) {
        self.violations.extend(other.violations);
        self.notes.extend(other.notes);
    }

    /// Adds a violation.
    pub fn reject(&mut self, description: impl Into<String>) {
        self.violations.push(description.into());
    }

    /// Adds a coverage note (does not affect [`Verdict::passed`]).
    pub fn note(&mut self, description: impl Into<String>) {
        self.notes.push(description.into());
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.passed() {
            write!(f, "all checked properties hold")?;
        } else {
            write!(f, "{} violation(s): {}", self.violations.len(), self.violations.join("; "))?;
        }
        if !self.notes.is_empty() {
            write!(f, " [{} note(s): {}]", self.notes.len(), self.notes.join("; "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_accumulate_violations() {
        let mut verdict = Verdict::default();
        assert!(verdict.passed());
        assert_eq!(verdict.to_string(), "all checked properties hold");
        verdict.reject("channel c1 lost a token");
        let mut other = Verdict::default();
        other.reject("deadlock at cycle 7");
        verdict.merge(other);
        assert!(!verdict.passed());
        assert_eq!(verdict.violations.len(), 2);
        assert!(verdict.to_string().contains("deadlock"));
    }

    #[test]
    fn notes_qualify_but_do_not_fail_a_verdict() {
        let mut verdict = Verdict::default();
        assert!(verdict.is_exhaustive());
        verdict.note("coverage truncated: explored 8 of 1024 combinations");
        assert!(verdict.passed(), "notes must not fail a verdict");
        assert!(!verdict.is_exhaustive());
        assert!(verdict.to_string().contains("coverage truncated"));

        let mut merged = Verdict::default();
        merged.merge(verdict);
        assert!(!merged.is_exhaustive(), "merge must carry notes along");
    }
}
