//! Deadlock detection and the scheduler leads-to property.
//!
//! Section 4.1.1 of the paper requires every scheduler to satisfy the
//! *leads-to* constraint
//! `G (V+_in_i ⇒ F (V-_out_i ∨ (sel = i ∧ S+_out_i)))`: every token that
//! reaches a shared module is eventually served or cancelled. Section 4.2
//! then verifies that, under this constraint, the composed controllers are
//! deadlock-free. The checkers here verify both obligations dynamically on
//! recorded traces:
//!
//! * [`check_deadlock_freedom`] — the design keeps making progress: within
//!   every window of the configured length at least one sink transfer
//!   happens while the sources still have tokens to offer;
//! * [`check_leads_to`] — every cycle in which a shared-module input carries
//!   a valid token is followed, within a bounded horizon, by that channel
//!   transferring or being cancelled.

use elastic_core::{Netlist, NodeKind, Port};
use elastic_sim::{SimConfig, SimError, Simulation, Trace};

use crate::Verdict;

/// Options for the liveness checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessOptions {
    /// Number of cycles to simulate.
    pub cycles: u64,
    /// Maximum number of consecutive cycles without any sink transfer before
    /// the design is considered deadlocked (when upstream work exists).
    pub progress_window: usize,
    /// Horizon within which a waiting shared-module token must be served or
    /// cancelled.
    pub leads_to_horizon: usize,
}

impl Default for LivenessOptions {
    fn default() -> Self {
        LivenessOptions { cycles: 400, progress_window: 96, leads_to_horizon: 96 }
    }
}

/// Runs the design and checks that sinks keep receiving tokens.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn check_deadlock_freedom(
    netlist: &Netlist,
    options: &LivenessOptions,
) -> Result<Verdict, SimError> {
    let mut sim = Simulation::new(netlist, &SimConfig::default())?;
    let report = sim.run(options.cycles)?;
    let trace = sim.trace();
    let mut verdict = Verdict::default();

    // Collect the input channels of every sink.
    let sink_channels: Vec<_> = netlist
        .live_nodes()
        .filter(|n| matches!(n.kind, NodeKind::Sink(_)))
        .filter_map(|n| netlist.channel_into(Port::input(n.id, 0)).map(|c| c.id))
        .collect();
    if sink_channels.is_empty() {
        verdict.reject("the design has no sinks; progress cannot be observed");
        return Ok(verdict);
    }

    // One streaming cursor per sink channel, advanced in lock-step — no
    // per-cycle map lookups, no materialised histories.
    let mut sink_histories: Vec<_> =
        sink_channels.iter().map(|&channel| trace.channel_iter(channel)).collect();
    let mut idle_run = 0usize;
    for cycle in 0..trace.len() {
        let mut progress = false;
        for history in &mut sink_histories {
            if let Some(state) = history.next() {
                progress |= state.forward_transfer();
            }
        }
        if progress {
            idle_run = 0;
        } else {
            idle_run += 1;
            if idle_run > options.progress_window {
                verdict.reject(format!(
                    "no sink transferred for {} consecutive cycles (deadlock or livelock \
                     detected around cycle {cycle})",
                    options.progress_window
                ));
                break;
            }
        }
    }

    // Sanity: the run must have delivered something at all.
    if report.sink_streams.values().all(|s| s.is_empty()) {
        verdict.reject("no sink ever received a token");
    }
    Ok(verdict)
}

/// Checks the leads-to property on every shared module of the design.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn check_leads_to(netlist: &Netlist, options: &LivenessOptions) -> Result<Verdict, SimError> {
    let mut sim = Simulation::new(netlist, &SimConfig::default())?;
    sim.run(options.cycles)?;
    Ok(check_leads_to_on_trace(netlist, sim.trace(), options))
}

/// Trace-level leads-to check (exposed for callers that already have a trace).
pub fn check_leads_to_on_trace(
    netlist: &Netlist,
    trace: &Trace,
    options: &LivenessOptions,
) -> Verdict {
    let mut verdict = Verdict::default();
    for node in netlist.live_nodes() {
        let NodeKind::Shared(spec) = &node.kind else { continue };
        for user in 0..spec.users {
            for operand in 0..spec.inputs_per_user {
                let port = Port::input(node.id, user * spec.inputs_per_user + operand);
                let Some(channel) = netlist.channel_into(port) else { continue };
                let mut waiting_since: Option<usize> = None;
                for (cycle, state) in trace.channel_iter(channel.id).enumerate() {
                    let resolved = state.forward_transfer()
                        || state.backward_transfer()
                        || state.annihilation();
                    if resolved {
                        waiting_since = None;
                        continue;
                    }
                    if state.forward_valid {
                        let since = *waiting_since.get_or_insert(cycle);
                        if cycle - since > options.leads_to_horizon
                            && cycle + options.leads_to_horizon < trace.len()
                        {
                            verdict.reject(format!(
                                "shared module {} starves user {user} (channel {}): a token has \
                                 waited since cycle {since}",
                                node.name, channel.name
                            ));
                            waiting_since = None;
                        }
                    } else {
                        waiting_since = None;
                    }
                }
            }
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{fig1d, Fig1Config};
    use elastic_core::SchedulerKind;

    #[test]
    fn the_speculative_fig1_design_is_deadlock_free_and_fair() {
        let handles = fig1d(&Fig1Config::default());
        let options = LivenessOptions::default();
        assert!(check_deadlock_freedom(&handles.netlist, &options).unwrap().passed());
        assert!(check_leads_to(&handles.netlist, &options).unwrap().passed());
    }

    #[test]
    fn even_an_always_wrong_static_scheduler_stays_live() {
        // The starvation override of the shared-module controller guarantees
        // the leads-to property for any scheduler (Section 4.1.1).
        let config = Fig1Config { scheduler: SchedulerKind::Static(1), ..Fig1Config::default() };
        let handles = fig1d(&config);
        let options = LivenessOptions::default();
        assert!(check_deadlock_freedom(&handles.netlist, &options).unwrap().passed());
        assert!(check_leads_to(&handles.netlist, &options).unwrap().passed());
    }

    #[test]
    fn a_token_free_loop_is_reported_as_deadlocked() {
        // A loop with no initial token can never fire.
        let mut n = elastic_core::Netlist::new("deadlock");
        let eb = n.add_buffer("eb", elastic_core::BufferSpec::bubble());
        let f =
            n.add_function("f", elastic_core::FunctionSpec::with_inputs(elastic_core::Op::Add, 2));
        let src = n.add_source("src", elastic_core::SourceSpec::always());
        let fork = n.add_fork("fork", elastic_core::ForkSpec::eager(2));
        let sink = n.add_sink("sink", elastic_core::SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(eb, 0), Port::input(f, 1), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(fork, 0), 8).unwrap();
        n.connect(Port::output(fork, 0), Port::input(eb, 0), 8).unwrap();
        n.connect(Port::output(fork, 1), Port::input(sink, 0), 8).unwrap();
        let verdict = check_deadlock_freedom(
            &n,
            &LivenessOptions { cycles: 80, progress_window: 32, ..LivenessOptions::default() },
        )
        .unwrap();
        assert!(!verdict.passed());
    }
}
