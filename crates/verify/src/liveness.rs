//! Deadlock detection and the scheduler leads-to property.
//!
//! Section 4.1.1 of the paper requires every scheduler to satisfy the
//! *leads-to* constraint
//! `G (V+_in_i ⇒ F (V-_out_i ∨ (sel = i ∧ S+_out_i)))`: every token that
//! reaches a shared module is eventually served or cancelled. Section 4.2
//! then verifies that, under this constraint, the composed controllers are
//! deadlock-free. The checkers here verify both obligations dynamically on
//! recorded traces:
//!
//! * [`check_deadlock_freedom`] — the design keeps making progress: within
//!   every window of the configured length at least one sink transfer
//!   happens while the sources still have tokens to offer;
//! * [`check_leads_to`] — every cycle in which a shared-module input carries
//!   a valid token is followed, within a bounded horizon, by that channel
//!   transferring or being cancelled.

use std::collections::BTreeMap;
use std::fmt;

use elastic_core::{ChannelId, Netlist, NodeId, NodeKind, Port};
use elastic_sim::{ChannelState, SimConfig, SimError, Simulation, Trace};

use crate::Verdict;

/// Options for the liveness checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessOptions {
    /// Number of cycles to simulate.
    pub cycles: u64,
    /// Maximum number of consecutive cycles without any sink transfer before
    /// the design is considered deadlocked (when upstream work exists).
    pub progress_window: usize,
    /// Horizon within which a waiting shared-module token must be served or
    /// cancelled.
    pub leads_to_horizon: usize,
}

impl Default for LivenessOptions {
    fn default() -> Self {
        LivenessOptions { cycles: 400, progress_window: 96, leads_to_horizon: 96 }
    }
}

/// Runs the design and checks that sinks keep receiving tokens.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn check_deadlock_freedom(
    netlist: &Netlist,
    options: &LivenessOptions,
) -> Result<Verdict, SimError> {
    let mut sim = Simulation::new(netlist, &SimConfig::default())?;
    let report = sim.run(options.cycles)?;
    let trace = sim.trace();
    let mut verdict = Verdict::default();

    // Collect the input channels of every sink.
    let sink_channels: Vec<_> = netlist
        .live_nodes()
        .filter(|n| matches!(n.kind, NodeKind::Sink(_)))
        .filter_map(|n| netlist.channel_into(Port::input(n.id, 0)).map(|c| c.id))
        .collect();
    if sink_channels.is_empty() {
        verdict.reject("the design has no sinks; progress cannot be observed");
        return Ok(verdict);
    }

    // One streaming cursor per sink channel, advanced in lock-step — no
    // per-cycle map lookups, no materialised histories.
    let mut sink_histories: Vec<_> =
        sink_channels.iter().map(|&channel| trace.channel_iter(channel)).collect();
    let mut idle_run = 0usize;
    for cycle in 0..trace.len() {
        let mut progress = false;
        for history in &mut sink_histories {
            if let Some(state) = history.next() {
                progress |= state.forward_transfer();
            }
        }
        if progress {
            idle_run = 0;
        } else {
            idle_run += 1;
            if idle_run > options.progress_window {
                let diagnosis = diagnose_deadlock_on_trace(netlist, trace, cycle);
                verdict.reject(format!(
                    "no sink transferred for {} consecutive cycles (deadlock or livelock \
                     detected around cycle {cycle}); {diagnosis}",
                    options.progress_window
                ));
                break;
            }
        }
    }

    // Sanity: the run must have delivered something at all.
    if report.sink_streams.values().all(|s| s.is_empty()) {
        verdict.reject("no sink ever received a token");
    }
    Ok(verdict)
}

/// Why one node is waiting on another in the stalled wait-for graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// The blocked node offers a token (`V+`) that the blocker stops (`S+`):
    /// a forward retry frozen in place.
    StoppedToken,
    /// The blocked node sees neither a token nor an anti-token on the
    /// channel: it starves waiting for the blocker to produce.
    AwaitingToken,
    /// The blocked node sends an anti-token (`V-`) that the blocker refuses
    /// (`S-`): a backward retry frozen in place.
    StoppedAntiToken,
}

impl WaitReason {
    /// Short description used in diagnosis rendering.
    pub fn describe(&self) -> &'static str {
        match self {
            WaitReason::StoppedToken => "token stopped",
            WaitReason::AwaitingToken => "awaiting token",
            WaitReason::StoppedAntiToken => "anti-token stopped",
        }
    }
}

/// One edge of the stalled wait-for graph: `blocked` cannot make progress
/// until `blocker` acts on `channel`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// The node that is stuck.
    pub blocked: NodeId,
    /// Name of the stuck node.
    pub blocked_name: String,
    /// The node it is waiting for.
    pub blocker: NodeId,
    /// Name of the node it is waiting for.
    pub blocker_name: String,
    /// The channel the wait is observed on.
    pub channel: ChannelId,
    /// Name of that channel.
    pub channel_name: String,
    /// Why the edge exists.
    pub reason: WaitReason,
}

impl fmt::Display for WaitEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} waits on {} ({} on channel {} \"{}\")",
            self.blocked_name,
            self.blocker_name,
            self.reason.describe(),
            self.channel,
            self.channel_name
        )
    }
}

/// Root-cause analysis of a stalled cycle: the minimal blocking cycle of the
/// wait-for graph (or, when the graph is acyclic, its terminal blockers) plus
/// the token occupancy of every stateful node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockDiagnosis {
    /// The stalled cycle that was analysed.
    pub cycle: u64,
    /// The shortest cycle of the wait-for graph — the set of nodes that
    /// mutually block each other; empty when the graph is acyclic (the stall
    /// then bottoms out in the `root_blockers`).
    pub blocking_cycle: Vec<WaitEdge>,
    /// Wait edges whose blocker is not itself waiting on anything — the
    /// terminal causes when no blocking cycle exists.
    pub root_blockers: Vec<WaitEdge>,
    /// Net token occupancy per node at the stalled cycle
    /// (`initial tokens + inbound transfers − outbound transfers`), for
    /// every node where it is non-zero. A negative count is itself
    /// diagnostic: the node lost tokens (e.g. a drop fault upstream).
    pub occupancy: Vec<(NodeId, String, i64)>,
}

impl fmt::Display for DeadlockDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wait-for analysis at cycle {}: ", self.cycle)?;
        if !self.blocking_cycle.is_empty() {
            let hops: Vec<String> =
                self.blocking_cycle.iter().map(|edge| edge.to_string()).collect();
            write!(
                f,
                "minimal blocking cycle of {} node(s): {}",
                self.blocking_cycle.len(),
                hops.join("; ")
            )?;
        } else if !self.root_blockers.is_empty() {
            let hops: Vec<String> =
                self.root_blockers.iter().take(6).map(|edge| edge.to_string()).collect();
            write!(f, "no wait cycle; terminal blocker(s): {}", hops.join("; "))?;
            if self.root_blockers.len() > 6 {
                write!(f, "; +{} more", self.root_blockers.len() - 6)?;
            }
        } else {
            write!(f, "no waiting node found (the design may simply be drained)")?;
        }
        if !self.occupancy.is_empty() {
            let cells: Vec<String> = self
                .occupancy
                .iter()
                .take(8)
                .map(|(_, name, tokens)| format!("{name}={tokens}"))
                .collect();
            write!(f, "; token occupancy [{}]", cells.join(", "))?;
            if self.occupancy.len() > 8 {
                write!(f, ", +{} more", self.occupancy.len() - 8)?;
            }
        }
        Ok(())
    }
}

impl DeadlockDiagnosis {
    /// The channels implicated in the diagnosis, blocking cycle first.
    pub fn blocking_channels(&self) -> Vec<ChannelId> {
        self.blocking_cycle
            .iter()
            .chain(self.root_blockers.iter())
            .map(|edge| edge.channel)
            .collect()
    }
}

/// Walks the wait-for graph of one stalled cycle and reports the minimal
/// blocking cycle (see [`DeadlockDiagnosis`]).
///
/// `states` carries the settled channel signals of the stalled cycle and
/// `transfers` the cumulative forward-transfer count of every channel up to
/// and including it (used for the token-occupancy ledger). Channels missing
/// from the maps are treated as idle/untransferred.
pub fn diagnose_deadlock(
    netlist: &Netlist,
    states: &BTreeMap<ChannelId, ChannelState>,
    transfers: &BTreeMap<ChannelId, u64>,
    cycle: u64,
) -> DeadlockDiagnosis {
    // Build the wait-for edges from the frozen handshake of each channel.
    let mut edges: Vec<WaitEdge> = Vec::new();
    let name_of = |node: NodeId| {
        netlist.node(node).map(|n| n.name.clone()).unwrap_or_else(|| node.to_string())
    };
    for channel in netlist.live_channels() {
        let state = states.get(&channel.id).copied().unwrap_or_default();
        let producer = channel.from.node;
        let consumer = channel.to.node;
        let mut push = |blocked: NodeId, blocker: NodeId, reason: WaitReason| {
            edges.push(WaitEdge {
                blocked,
                blocked_name: name_of(blocked),
                blocker,
                blocker_name: name_of(blocker),
                channel: channel.id,
                channel_name: channel.name.clone(),
                reason,
            });
        };
        if state.forward_retry() {
            push(producer, consumer, WaitReason::StoppedToken);
        } else if !state.forward_valid && !state.backward_valid {
            push(consumer, producer, WaitReason::AwaitingToken);
        }
        if state.backward_valid && state.backward_stop {
            push(consumer, producer, WaitReason::StoppedAntiToken);
        }
    }

    // Shortest cycle in the wait-for graph: BFS from every node back to
    // itself over the edge list (the graphs here are tens of nodes).
    let mut successors: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for (index, edge) in edges.iter().enumerate() {
        successors.entry(edge.blocked).or_default().push(index);
    }
    let mut best_cycle: Vec<usize> = Vec::new();
    for &start in successors.keys() {
        // BFS tree rooted at `start`; the first edge closing back on
        // `start` yields a shortest cycle through it.
        let mut parent: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([start]);
        'bfs: while let Some(node) = queue.pop_front() {
            for &edge_index in successors.get(&node).map(Vec::as_slice).unwrap_or_default() {
                let next = edges[edge_index].blocker;
                if next == start {
                    // Reconstruct the path start → … → node, then close it.
                    let mut path = vec![edge_index];
                    let mut walk = node;
                    while walk != start {
                        let up = parent[&walk];
                        path.push(up);
                        walk = edges[up].blocked;
                    }
                    path.reverse();
                    if best_cycle.is_empty() || path.len() < best_cycle.len() {
                        best_cycle = path;
                    }
                    break 'bfs;
                }
                if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(next) {
                    slot.insert(edge_index);
                    queue.push_back(next);
                }
            }
        }
        if best_cycle.len() == 1 {
            break; // A self-wait is as minimal as cycles get.
        }
    }
    let blocking_cycle: Vec<WaitEdge> =
        best_cycle.iter().map(|&index| edges[index].clone()).collect();

    // Terminal blockers: edges whose blocker is not itself waiting.
    let root_blockers: Vec<WaitEdge> = if blocking_cycle.is_empty() {
        edges.iter().filter(|edge| !successors.contains_key(&edge.blocker)).cloned().collect()
    } else {
        Vec::new()
    };

    // Token-occupancy ledger per node.
    let mut occupancy: Vec<(NodeId, String, i64)> = Vec::new();
    for node in netlist.live_nodes() {
        let initial = match &node.kind {
            NodeKind::Buffer(spec) => i64::from(spec.init_tokens),
            _ => 0,
        };
        let inbound: i64 = netlist
            .input_channels(node.id)
            .iter()
            .map(|c| *transfers.get(&c.id).unwrap_or(&0) as i64)
            .sum();
        let outbound: i64 = netlist
            .output_channels(node.id)
            .iter()
            .map(|c| *transfers.get(&c.id).unwrap_or(&0) as i64)
            .sum();
        let tokens = initial + inbound - outbound;
        if tokens != 0 {
            occupancy.push((node.id, node.name.clone(), tokens));
        }
    }

    DeadlockDiagnosis { cycle, blocking_cycle, root_blockers, occupancy }
}

/// [`diagnose_deadlock`] fed from a recorded trace: reconstructs the signal
/// snapshot and the cumulative transfer counts at `cycle` by streaming each
/// channel's history once.
pub fn diagnose_deadlock_on_trace(
    netlist: &Netlist,
    trace: &Trace,
    cycle: usize,
) -> DeadlockDiagnosis {
    let mut states = BTreeMap::new();
    let mut transfers = BTreeMap::new();
    for channel in netlist.live_channels() {
        let mut count = 0u64;
        let mut snapshot = ChannelState::default();
        for (index, state) in trace.channel_iter(channel.id).take(cycle + 1).enumerate() {
            if state.forward_transfer() {
                count += 1;
            }
            if index == cycle {
                snapshot = state;
            }
        }
        states.insert(channel.id, snapshot);
        transfers.insert(channel.id, count);
    }
    diagnose_deadlock(netlist, &states, &transfers, cycle as u64)
}

/// Checks the leads-to property on every shared module of the design.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn check_leads_to(netlist: &Netlist, options: &LivenessOptions) -> Result<Verdict, SimError> {
    let mut sim = Simulation::new(netlist, &SimConfig::default())?;
    sim.run(options.cycles)?;
    Ok(check_leads_to_on_trace(netlist, sim.trace(), options))
}

/// Trace-level leads-to check (exposed for callers that already have a trace).
pub fn check_leads_to_on_trace(
    netlist: &Netlist,
    trace: &Trace,
    options: &LivenessOptions,
) -> Verdict {
    let mut verdict = Verdict::default();
    for node in netlist.live_nodes() {
        let NodeKind::Shared(spec) = &node.kind else { continue };
        for user in 0..spec.users {
            for operand in 0..spec.inputs_per_user {
                let port = Port::input(node.id, user * spec.inputs_per_user + operand);
                let Some(channel) = netlist.channel_into(port) else { continue };
                let mut waiting_since: Option<usize> = None;
                for (cycle, state) in trace.channel_iter(channel.id).enumerate() {
                    let resolved = state.forward_transfer()
                        || state.backward_transfer()
                        || state.annihilation();
                    if resolved {
                        waiting_since = None;
                        continue;
                    }
                    if state.forward_valid {
                        let since = *waiting_since.get_or_insert(cycle);
                        if cycle - since > options.leads_to_horizon
                            && cycle + options.leads_to_horizon < trace.len()
                        {
                            verdict.reject(format!(
                                "shared module {} starves user {user} (channel {}): a token has \
                                 waited since cycle {since}",
                                node.name, channel.name
                            ));
                            waiting_since = None;
                        }
                    } else {
                        waiting_since = None;
                    }
                }
            }
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{fig1d, Fig1Config};
    use elastic_core::SchedulerKind;

    #[test]
    fn the_speculative_fig1_design_is_deadlock_free_and_fair() {
        let handles = fig1d(&Fig1Config::default());
        let options = LivenessOptions::default();
        assert!(check_deadlock_freedom(&handles.netlist, &options).unwrap().passed());
        assert!(check_leads_to(&handles.netlist, &options).unwrap().passed());
    }

    #[test]
    fn even_an_always_wrong_static_scheduler_stays_live() {
        // The starvation override of the shared-module controller guarantees
        // the leads-to property for any scheduler (Section 4.1.1).
        let config = Fig1Config { scheduler: SchedulerKind::Static(1), ..Fig1Config::default() };
        let handles = fig1d(&config);
        let options = LivenessOptions::default();
        assert!(check_deadlock_freedom(&handles.netlist, &options).unwrap().passed());
        assert!(check_leads_to(&handles.netlist, &options).unwrap().passed());
    }

    #[test]
    fn a_token_free_loop_is_reported_as_deadlocked() {
        // A loop with no initial token can never fire.
        let mut n = elastic_core::Netlist::new("deadlock");
        let eb = n.add_buffer("eb", elastic_core::BufferSpec::bubble());
        let f =
            n.add_function("f", elastic_core::FunctionSpec::with_inputs(elastic_core::Op::Add, 2));
        let src = n.add_source("src", elastic_core::SourceSpec::always());
        let fork = n.add_fork("fork", elastic_core::ForkSpec::eager(2));
        let sink = n.add_sink("sink", elastic_core::SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(eb, 0), Port::input(f, 1), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(fork, 0), 8).unwrap();
        n.connect(Port::output(fork, 0), Port::input(eb, 0), 8).unwrap();
        n.connect(Port::output(fork, 1), Port::input(sink, 0), 8).unwrap();
        let verdict = check_deadlock_freedom(
            &n,
            &LivenessOptions { cycles: 80, progress_window: 32, ..LivenessOptions::default() },
        )
        .unwrap();
        assert!(!verdict.passed());
        let message = verdict.violations.join("; ");
        assert!(
            message.contains("wait-for analysis"),
            "the reject carries the root-cause diagnosis: {message}"
        );
        assert!(
            message.contains("minimal blocking cycle"),
            "the token-free loop is a true cyclic wait: {message}"
        );
    }
}
