//! Runtime SELF monitors: streaming, fail-fast counterparts of the trace
//! checkers.
//!
//! Each monitor implements [`elastic_sim::CycleMonitor`] and replicates one
//! of this crate's end-of-run checks as a per-cycle streaming check, so a
//! faulted or broken simulation stops **at the violating cycle** with a
//! `(channel, cycle, invariant)` locus instead of producing a post-mortem
//! verdict thousands of cycles later:
//!
//! * [`ProtocolMonitor`] — the four SELF channel properties of
//!   [`crate::properties`] (`Retry+`, `Retry-`, `Invariant`, bounded
//!   `Liveness`), honouring the same retraction-exemption analysis for
//!   speculative producer cones;
//! * [`ProgressMonitor`] — the deadlock-freedom check of
//!   [`crate::liveness`]; on a stall it embeds the full wait-for root-cause
//!   analysis of [`crate::liveness::diagnose_deadlock`] in the violation;
//! * [`LeadsToMonitor`] — the scheduler leads-to property at every shared
//!   module input;
//! * [`ScoreboardMonitor`] — output-stream integrity against a clean
//!   reference run: the detector of last resort that catches silent data
//!   corruption (bit flips, duplicated or reordered tokens) the protocol
//!   invariants cannot see.
//!
//! Monitors observe the dense channel vector in `live_channels()`
//! enumeration order — the indexing shared by the engine and the trace — and
//! are built from the same [`Netlist`] the simulation was built from.

use std::collections::BTreeMap;

use elastic_core::{ChannelId, Netlist, NodeId, NodeKind, Port};
use elastic_sim::{ChannelState, CycleMonitor, MonitorViolation, SimulationReport};

use crate::liveness::diagnose_deadlock;
use crate::properties::{retraction_exempt_producers, ProtocolOptions};

/// Dense-channel lookup table shared by the monitors: netlist channel ids
/// and names in `live_channels()` enumeration order.
#[derive(Debug, Clone)]
struct ChannelTable {
    ids: Vec<ChannelId>,
    names: Vec<String>,
}

impl ChannelTable {
    fn new(netlist: &Netlist) -> Self {
        let mut ids = Vec::new();
        let mut names = Vec::new();
        for channel in netlist.live_channels() {
            ids.push(channel.id);
            names.push(channel.name.clone());
        }
        ChannelTable { ids, names }
    }

    fn dense_index(&self, channel: ChannelId) -> Option<usize> {
        self.ids.iter().position(|&id| id == channel)
    }
}

/// Streaming checker of the four SELF channel properties (Section 3.1): the
/// runtime counterpart of [`crate::properties::check_trace`], applying the
/// same per-channel transition rules and the same retraction exemption for
/// speculative producer cones.
#[derive(Debug)]
pub struct ProtocolMonitor {
    channels: ChannelTable,
    /// Per dense channel: `Retry+` does not apply (speculative producer).
    exempt: Vec<bool>,
    options: ProtocolOptions,
    prev: Vec<ChannelState>,
    has_prev: bool,
    /// Bounded-liveness state per channel (mirrors `check_channel`).
    since_transfer: Vec<u32>,
    active: Vec<bool>,
}

impl ProtocolMonitor {
    /// Builds the monitor for `netlist` with the given protocol options.
    pub fn new(netlist: &Netlist, options: &ProtocolOptions) -> Self {
        let channels = ChannelTable::new(netlist);
        let exempt_producers = retraction_exempt_producers(netlist);
        let exempt = netlist
            .live_channels()
            .map(|channel| exempt_producers.contains(&channel.from.node))
            .collect();
        let count = channels.ids.len();
        ProtocolMonitor {
            channels,
            exempt,
            options: *options,
            prev: vec![ChannelState::default(); count],
            has_prev: false,
            since_transfer: vec![0; count],
            active: vec![false; count],
        }
    }

    fn violation(
        &self,
        invariant: &'static str,
        index: usize,
        cycle: u64,
        details: String,
    ) -> MonitorViolation {
        MonitorViolation {
            monitor: "protocol",
            invariant,
            channel: Some(self.channels.ids[index]),
            cycle,
            details: format!("channel \"{}\": {details}", self.channels.names[index]),
        }
    }
}

impl CycleMonitor for ProtocolMonitor {
    fn name(&self) -> &'static str {
        "protocol"
    }

    fn observe(&mut self, cycle: u64, channels: &[ChannelState]) -> Result<(), MonitorViolation> {
        for (index, state) in channels.iter().enumerate() {
            // Invariant: a token cannot be killed and stopped at once.
            if state.forward_valid
                && state.forward_stop
                && state.backward_valid
                && state.backward_stop
            {
                return Err(self.violation(
                    "Invariant",
                    index,
                    cycle,
                    "token killed and stopped in the same cycle".into(),
                ));
            }
            if self.has_prev {
                let prev = self.prev[index];
                // Retry+: a stopped token must persist.
                if !self.exempt[index]
                    && prev.forward_valid
                    && prev.forward_stop
                    && !prev.backward_transfer()
                    && !state.forward_valid
                {
                    return Err(self.violation(
                        "Retry+",
                        index,
                        cycle - 1,
                        "a stopped token was retracted instead of held".into(),
                    ));
                }
                // Retry-: a stopped anti-token must persist, unless a
                // forward transfer discharged it in the same cycle.
                if prev.backward_valid
                    && prev.backward_stop
                    && !prev.forward_transfer()
                    && !state.backward_valid
                {
                    return Err(self.violation(
                        "Retry-",
                        index,
                        cycle - 1,
                        "a stopped anti-token was retracted instead of held".into(),
                    ));
                }
            }
            if self.options.check_liveness {
                let transfer =
                    state.forward_transfer() || state.backward_transfer() || state.annihilation();
                if transfer {
                    self.since_transfer[index] = 0;
                    self.active[index] = false;
                } else {
                    self.active[index] |= state.forward_valid || state.backward_valid;
                    self.since_transfer[index] += 1;
                    if self.active[index]
                        && self.since_transfer[index] as usize > self.options.starvation_window
                    {
                        return Err(self.violation(
                            "Liveness",
                            index,
                            cycle,
                            format!(
                                "an offered item has not transferred for {} cycles",
                                self.since_transfer[index]
                            ),
                        ));
                    }
                }
            }
            self.prev[index] = *state;
        }
        self.has_prev = true;
        Ok(())
    }

    fn reset(&mut self) {
        self.prev.iter_mut().for_each(|state| *state = ChannelState::default());
        self.has_prev = false;
        self.since_transfer.iter_mut().for_each(|count| *count = 0);
        self.active.iter_mut().for_each(|flag| *flag = false);
    }
}

/// Streaming deadlock-freedom checker: trips when no sink transfers for more
/// than the progress window, and embeds the wait-for root-cause analysis of
/// [`diagnose_deadlock`] — which channels wait on whose Stop/Valid, the
/// minimal blocking cycle, the token occupancy per node — in the violation.
#[derive(Debug)]
pub struct ProgressMonitor {
    netlist: Netlist,
    channels: ChannelTable,
    /// Dense indices of every sink's input channel.
    sink_channels: Vec<usize>,
    progress_window: usize,
    idle_run: usize,
    /// Cumulative forward transfers per dense channel (the occupancy ledger
    /// for the diagnosis).
    transfers: Vec<u64>,
}

impl ProgressMonitor {
    /// Builds the monitor; `progress_window` is the maximum number of
    /// consecutive sink-idle cycles tolerated.
    pub fn new(netlist: &Netlist, progress_window: usize) -> Self {
        let channels = ChannelTable::new(netlist);
        let sink_channels = netlist
            .live_nodes()
            .filter(|node| matches!(node.kind, NodeKind::Sink(_)))
            .filter_map(|node| netlist.channel_into(Port::input(node.id, 0)))
            .filter_map(|channel| channels.dense_index(channel.id))
            .collect();
        let count = channels.ids.len();
        ProgressMonitor {
            netlist: netlist.clone(),
            channels,
            sink_channels,
            progress_window,
            idle_run: 0,
            transfers: vec![0; count],
        }
    }
}

impl CycleMonitor for ProgressMonitor {
    fn name(&self) -> &'static str {
        "progress"
    }

    fn observe(&mut self, cycle: u64, channels: &[ChannelState]) -> Result<(), MonitorViolation> {
        for (slot, state) in self.transfers.iter_mut().zip(channels.iter()) {
            if state.forward_transfer() {
                *slot += 1;
            }
        }
        let progress = self.sink_channels.iter().any(|&index| channels[index].forward_transfer());
        if progress {
            self.idle_run = 0;
            return Ok(());
        }
        self.idle_run += 1;
        if self.idle_run <= self.progress_window {
            return Ok(());
        }
        // Stalled: run the root-cause analysis on this cycle's snapshot.
        let states: BTreeMap<ChannelId, ChannelState> =
            self.channels.ids.iter().copied().zip(channels.iter().copied()).collect();
        let transfers: BTreeMap<ChannelId, u64> =
            self.channels.ids.iter().copied().zip(self.transfers.iter().copied()).collect();
        let diagnosis = diagnose_deadlock(&self.netlist, &states, &transfers, cycle);
        Err(MonitorViolation {
            monitor: "progress",
            invariant: "Progress",
            channel: diagnosis.blocking_channels().first().copied(),
            cycle,
            details: format!(
                "no sink transferred for {} consecutive cycles; {diagnosis}",
                self.idle_run
            ),
        })
    }

    fn reset(&mut self) {
        self.idle_run = 0;
        self.transfers.iter_mut().for_each(|count| *count = 0);
    }
}

/// Streaming leads-to checker (Section 4.1.1): every valid token at a shared
/// module input must transfer or be cancelled within a bounded horizon.
#[derive(Debug)]
pub struct LeadsToMonitor {
    entries: Vec<LeadsToEntry>,
    horizon: u64,
}

#[derive(Debug)]
struct LeadsToEntry {
    dense: usize,
    channel: ChannelId,
    label: String,
    waiting_since: Option<u64>,
}

impl LeadsToMonitor {
    /// Builds the monitor over every user input channel of every shared
    /// module in `netlist`.
    pub fn new(netlist: &Netlist, horizon: u64) -> Self {
        let channels = ChannelTable::new(netlist);
        let mut entries = Vec::new();
        for node in netlist.live_nodes() {
            let NodeKind::Shared(spec) = &node.kind else { continue };
            for user in 0..spec.users {
                for operand in 0..spec.inputs_per_user {
                    let port = Port::input(node.id, user * spec.inputs_per_user + operand);
                    let Some(channel) = netlist.channel_into(port) else { continue };
                    let Some(dense) = channels.dense_index(channel.id) else { continue };
                    entries.push(LeadsToEntry {
                        dense,
                        channel: channel.id,
                        label: format!(
                            "shared module {} user {user} ({})",
                            node.name, channel.name
                        ),
                        waiting_since: None,
                    });
                }
            }
        }
        LeadsToMonitor { entries, horizon }
    }

    /// `true` when the netlist has no shared module (the monitor is inert).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl CycleMonitor for LeadsToMonitor {
    fn name(&self) -> &'static str {
        "leads-to"
    }

    fn observe(&mut self, cycle: u64, channels: &[ChannelState]) -> Result<(), MonitorViolation> {
        for entry in &mut self.entries {
            let state = channels[entry.dense];
            let resolved =
                state.forward_transfer() || state.backward_transfer() || state.annihilation();
            if resolved || !state.forward_valid {
                entry.waiting_since = None;
                continue;
            }
            let since = *entry.waiting_since.get_or_insert(cycle);
            if cycle - since > self.horizon {
                return Err(MonitorViolation {
                    monitor: "leads-to",
                    invariant: "LeadsTo",
                    channel: Some(entry.channel),
                    cycle,
                    details: format!(
                        "{}: a token has waited unserved since cycle {since}",
                        entry.label
                    ),
                });
            }
        }
        Ok(())
    }

    fn reset(&mut self) {
        for entry in &mut self.entries {
            entry.waiting_since = None;
        }
    }
}

/// Output-stream scoreboard: checks every sink's transferred values against
/// the stream a clean reference run produced.
///
/// The protocol invariants cannot see silent payload corruption — a flipped
/// data bit or a replayed token is handshake-legal. The scoreboard is the
/// detector of last resort: it trips at the **first transfer** that deviates
/// from the reference prefix, and (when `require_complete` is set) fails the
/// run at [`CycleMonitor::finish`] if any sink delivered fewer tokens than
/// the reference — together, the exact notion of "provably masked": a
/// faulted run is masked iff the scoreboard stays silent, i.e. every sink
/// reproduced the full clean stream bit-identically (extra tokens beyond the
/// reference horizon are not judged; faulted runs get extra drain cycles).
#[derive(Debug)]
pub struct ScoreboardMonitor {
    lanes: Vec<ScoreboardLane>,
    require_complete: bool,
}

#[derive(Debug)]
struct ScoreboardLane {
    sink: NodeId,
    dense: usize,
    channel: ChannelId,
    expected: Vec<u64>,
    position: usize,
}

impl ScoreboardMonitor {
    /// Builds the scoreboard from the sink streams of a clean reference
    /// report of the same netlist.
    pub fn from_reference(
        netlist: &Netlist,
        reference: &SimulationReport,
        require_complete: bool,
    ) -> Self {
        let channels = ChannelTable::new(netlist);
        let lanes = netlist
            .live_nodes()
            .filter(|node| matches!(node.kind, NodeKind::Sink(_)))
            .filter_map(|node| {
                let channel = netlist.channel_into(Port::input(node.id, 0))?;
                let dense = channels.dense_index(channel.id)?;
                Some(ScoreboardLane {
                    sink: node.id,
                    dense,
                    channel: channel.id,
                    expected: reference.sink_values(node.id),
                    position: 0,
                })
            })
            .collect();
        ScoreboardMonitor { lanes, require_complete }
    }
}

impl CycleMonitor for ScoreboardMonitor {
    fn name(&self) -> &'static str {
        "scoreboard"
    }

    fn observe(&mut self, cycle: u64, channels: &[ChannelState]) -> Result<(), MonitorViolation> {
        for lane in &mut self.lanes {
            let state = channels[lane.dense];
            if !state.forward_transfer() {
                continue;
            }
            if lane.position < lane.expected.len() {
                let expected = lane.expected[lane.position];
                if state.data != expected {
                    return Err(MonitorViolation {
                        monitor: "scoreboard",
                        invariant: "ReferenceStream",
                        channel: Some(lane.channel),
                        cycle,
                        details: format!(
                            "sink {} transfer #{} carried {:#x}, reference expects {expected:#x}",
                            lane.sink, lane.position, state.data
                        ),
                    });
                }
            }
            lane.position += 1;
        }
        Ok(())
    }

    fn finish(&mut self, cycles: u64) -> Result<(), MonitorViolation> {
        if !self.require_complete {
            return Ok(());
        }
        for lane in &self.lanes {
            if lane.position < lane.expected.len() {
                return Err(MonitorViolation {
                    monitor: "scoreboard",
                    invariant: "ReferenceStream",
                    channel: Some(lane.channel),
                    cycle: cycles.saturating_sub(1),
                    details: format!(
                        "sink {} delivered only {} of {} reference tokens by end of run",
                        lane.sink,
                        lane.position,
                        lane.expected.len()
                    ),
                });
            }
        }
        Ok(())
    }

    fn reset(&mut self) {
        for lane in &mut self.lanes {
            lane.position = 0;
        }
    }
}

/// Options for [`standard_monitors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorOptions {
    /// Options of the [`ProtocolMonitor`].
    pub protocol: ProtocolOptions,
    /// Progress window of the [`ProgressMonitor`].
    pub progress_window: usize,
    /// Horizon of the [`LeadsToMonitor`].
    pub leads_to_horizon: u64,
}

impl Default for MonitorOptions {
    fn default() -> Self {
        MonitorOptions {
            protocol: ProtocolOptions::default(),
            progress_window: 96,
            leads_to_horizon: 96,
        }
    }
}

/// The standard always-on monitor set for a netlist: protocol, progress and
/// — when the design has shared modules — leads-to. The scoreboard is not
/// included because it needs a clean reference run; build it separately with
/// [`ScoreboardMonitor::from_reference`].
pub fn standard_monitors(
    netlist: &Netlist,
    options: &MonitorOptions,
) -> Vec<Box<dyn CycleMonitor>> {
    let mut monitors: Vec<Box<dyn CycleMonitor>> = vec![
        Box::new(ProtocolMonitor::new(netlist, &options.protocol)),
        Box::new(ProgressMonitor::new(netlist, options.progress_window)),
    ];
    let leads_to = LeadsToMonitor::new(netlist, options.leads_to_horizon);
    if !leads_to.is_empty() {
        monitors.push(Box::new(leads_to));
    }
    monitors
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::kind::{BufferSpec, SinkSpec, SourceSpec};
    use elastic_core::Op;
    use elastic_sim::{SimConfig, Simulation};

    /// src -> inc -> EB -> sink
    fn pipeline() -> (Netlist, NodeId) {
        let mut n = Netlist::new("pipeline");
        let src = n.add_source("src", SourceSpec::always());
        let inc = n.add_op("inc", Op::Inc);
        let eb = n.add_buffer("eb", BufferSpec::standard(0));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(inc, 0), 8).unwrap();
        n.connect(Port::output(inc, 0), Port::input(eb, 0), 8).unwrap();
        n.connect(Port::output(eb, 0), Port::input(sink, 0), 8).unwrap();
        (n, sink)
    }

    #[test]
    fn the_standard_monitors_stay_silent_on_a_clean_pipeline() {
        let (netlist, sink) = pipeline();
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let reference = sim.run(60).unwrap();

        sim.reset();
        let mut monitors = standard_monitors(&netlist, &MonitorOptions::default());
        monitors.push(Box::new(ScoreboardMonitor::from_reference(&netlist, &reference, true)));
        let report = sim.run_monitored(60, None, &mut monitors).unwrap();
        assert_eq!(report.sink_transfers(sink), reference.sink_transfers(sink));
    }

    #[test]
    fn the_protocol_monitor_matches_the_streaming_trace_checker_rules() {
        let (netlist, _sink) = pipeline();
        let mut monitor = ProtocolMonitor::new(&netlist, &ProtocolOptions::default());
        let idle = vec![ChannelState::default(); 3];
        // A stopped token on channel 0 …
        let mut stopped = idle.clone();
        stopped[0] =
            ChannelState { forward_valid: true, forward_stop: true, ..ChannelState::default() };
        monitor.observe(0, &stopped).unwrap();
        // … retracted the next cycle: Retry+ at the *offending* cycle 0.
        let violation = monitor.observe(1, &idle).unwrap_err();
        assert_eq!(violation.invariant, "Retry+");
        assert_eq!(violation.cycle, 0);
        assert!(violation.channel.is_some());

        monitor.reset();
        monitor.observe(0, &stopped).unwrap();
        let mut held = stopped.clone();
        held[0].forward_stop = false;
        monitor.observe(1, &held).unwrap();
    }

    #[test]
    fn the_scoreboard_trips_on_the_first_deviating_transfer() {
        let (netlist, sink) = pipeline();
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        let reference = sim.run(40).unwrap();
        assert!(reference.sink_transfers(sink) > 10);

        // Corrupt the data on the sink's input channel mid-run.
        let sink_channel = netlist.channel_into(Port::input(sink, 0)).unwrap().id;
        sim.reset();
        sim.arm_faults(&elastic_sim::FaultPlan::single(elastic_sim::FaultSpec {
            channel: sink_channel,
            kind: elastic_sim::FaultKind::BitFlip { mask: 0b100 },
            from_cycle: 9,
            duration: 1,
        }))
        .unwrap();
        let mut monitors: Vec<Box<dyn CycleMonitor>> =
            vec![Box::new(ScoreboardMonitor::from_reference(&netlist, &reference, true))];
        let error = sim.run_monitored(40, None, &mut monitors).unwrap_err();
        match error {
            elastic_sim::SimError::MonitorTripped(violation) => {
                assert_eq!(violation.invariant, "ReferenceStream");
                assert_eq!(violation.cycle, 9, "detected at the corrupted transfer");
            }
            other => panic!("expected a scoreboard trip, got {other}"),
        }
    }

    #[test]
    fn the_progress_monitor_diagnoses_a_stalled_run() {
        let (netlist, sink) = pipeline();
        let sink_channel = netlist.channel_into(Port::input(sink, 0)).unwrap().id;
        let mut sim = Simulation::new(&netlist, &SimConfig::default()).unwrap();
        // A permanent stall storm on the sink channel wedges the pipeline.
        sim.arm_faults(&elastic_sim::FaultPlan::single(elastic_sim::FaultSpec {
            channel: sink_channel,
            kind: elastic_sim::FaultKind::StallStorm,
            from_cycle: 0,
            duration: u64::MAX,
        }))
        .unwrap();
        let mut monitors: Vec<Box<dyn CycleMonitor>> =
            vec![Box::new(ProgressMonitor::new(&netlist, 16))];
        let error = sim.run_monitored(200, None, &mut monitors).unwrap_err();
        match error {
            elastic_sim::SimError::MonitorTripped(violation) => {
                assert_eq!(violation.invariant, "Progress");
                assert!(violation.cycle <= 32, "trips right after the window, not at run end");
                assert!(
                    violation.details.contains("wait-for analysis"),
                    "the violation embeds the root-cause diagnosis: {}",
                    violation.details
                );
            }
            other => panic!("expected a progress trip, got {other}"),
        }
    }
}
