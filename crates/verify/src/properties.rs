//! SELF channel protocol properties (Section 3.1 of the paper).
//!
//! For every channel the following LTL properties must hold:
//!
//! * `Retry+`:  `G ((V+ ∧ S+) ⇒ X V+)` — a stopped token is held (persistence);
//! * `Retry-`:  `G ((V- ∧ S-) ⇒ X V-)` — a stopped anti-token is held;
//! * `Liveness`: `G F ((V+ ∧ ¬S+) ∨ (V- ∧ ¬S-))` — every channel eventually
//!   sees a transfer (checked on finite traces as "at least one transfer and
//!   no unbounded starvation window");
//! * `Invariant`: `G ¬(V- ∧ S+ ∧ V+ ∧ S-)` — a token cannot be killed and
//!   stopped at the same time.
//!
//! The checkers work on the finite traces recorded by `elastic-sim`; the
//! liveness property is interpreted over a configurable starvation window, as
//! usual when checking liveness on bounded executions.

use elastic_core::{ChannelId, Netlist, NodeId};
use elastic_sim::{ChannelState, Trace};

use crate::Verdict;

/// One protocol violation found on a channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// The channel on which the violation happened.
    pub channel: ChannelId,
    /// The cycle at which it was detected.
    pub cycle: usize,
    /// Which property was violated.
    pub property: &'static str,
}

/// Options for protocol checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolOptions {
    /// Number of consecutive cycles a channel may go without any forward or
    /// backward transfer before the bounded liveness check flags it —
    /// provided the channel was actively offering something during that
    /// window.
    pub starvation_window: usize,
    /// Skip the liveness check entirely (useful for very short traces).
    pub check_liveness: bool,
}

impl Default for ProtocolOptions {
    fn default() -> Self {
        ProtocolOptions { starvation_window: 64, check_liveness: true }
    }
}

/// Checks the four SELF properties on one channel history.
///
/// The history is consumed as a **stream** — one [`ChannelState`] per cycle,
/// oldest first — so callers can feed [`Trace::channel_iter`] straight in
/// without materialising a `Vec<ChannelState>`; the checker runs in a single
/// pass holding only the previous state.
///
/// `require_forward_persistence` controls whether the `Retry+` check is
/// applied: the paper (Section 4.2) explicitly allows the output channels of
/// shared modules — and hence of the early-evaluation multiplexor they feed —
/// to be non-persistent, because the scheduler may change its prediction
/// after a retry; persistence at the module inputs and at downstream EB
/// outputs is what guarantees that no token is lost.
pub fn check_channel(
    channel: ChannelId,
    history: impl IntoIterator<Item = ChannelState>,
    options: &ProtocolOptions,
    require_forward_persistence: bool,
) -> Vec<ProtocolViolation> {
    let mut violations = Vec::new();
    // At most one liveness violation is reported per channel (the first), and
    // it is appended after the per-cycle violations, preserving the report
    // order of the two-pass checker this replaces.
    let mut starvation: Option<ProtocolViolation> = None;
    let mut prev: Option<(usize, ChannelState)> = None;
    let mut since_transfer = 0usize;
    let mut active = false;
    for (cycle, state) in history.into_iter().enumerate() {
        // Invariant: a token cannot be killed and stopped at the same time.
        if state.forward_valid && state.forward_stop && state.backward_valid && state.backward_stop
        {
            violations.push(ProtocolViolation { channel, cycle, property: "Invariant" });
        }
        if let Some((prev_cycle, prev_state)) = prev {
            // Retry+: a stopped token must persist.
            if require_forward_persistence
                && prev_state.forward_valid
                && prev_state.forward_stop
                && !prev_state.backward_transfer()
                && !state.forward_valid
            {
                violations.push(ProtocolViolation {
                    channel,
                    cycle: prev_cycle,
                    property: "Retry+",
                });
            }
            // Retry-: a stopped anti-token must persist — unless a token
            // transferred forward through the channel in the same cycle, in
            // which case the two cancel at the consumer's boundary (the
            // consumer's counterflow debt is discharged by the arriving
            // token; the producer, e.g. a lazy mux, stops anti-tokens it
            // cannot absorb but still delivers the token that pays the
            // debt). Found by the elastic-gen fuzzer on feed-forward
            // speculation behind a standard buffer holding an anti-token.
            if prev_state.backward_valid
                && prev_state.backward_stop
                && !prev_state.forward_transfer()
                && !state.backward_valid
            {
                violations.push(ProtocolViolation {
                    channel,
                    cycle: prev_cycle,
                    property: "Retry-",
                });
            }
        }
        if options.check_liveness && starvation.is_none() {
            let transfer =
                state.forward_transfer() || state.backward_transfer() || state.annihilation();
            let offering = state.forward_valid || state.backward_valid;
            if transfer {
                since_transfer = 0;
                active = false;
            } else {
                active |= offering;
                since_transfer += 1;
                if active && since_transfer > options.starvation_window {
                    starvation = Some(ProtocolViolation { channel, cycle, property: "Liveness" });
                }
            }
        }
        prev = Some((cycle, state));
    }
    violations.extend(starvation);
    violations
}

/// Nodes whose driven `V+` may legally be retracted: the speculative
/// producers of Section 4.2 — shared modules and early-evaluation muxes
/// retract a stopped token when the prediction changes — plus lazy forks
/// (a branch's copy is withheld, and taken back, while any other branch is
/// not ready), **transitively closed over combinational consumers**: a
/// function block, mux or fork fed by a retracting producer derives its
/// valid from the retracting one and re-emits the retraction wave, so its
/// outputs inherit the exemption. Sequential nodes (buffers,
/// variable-latency units) and environments cut the cone — which is exactly
/// why the paper's designs park an elastic buffer behind every speculative
/// region (found by the elastic-gen fuzzer: retiming the isolating buffer
/// away from a shared module flagged spurious Retry+ violations one
/// function block downstream).
pub(crate) fn retraction_exempt_producers(netlist: &Netlist) -> std::collections::BTreeSet<NodeId> {
    use elastic_core::NodeKind;
    let mut exempt: std::collections::BTreeSet<NodeId> = netlist
        .live_nodes()
        .filter(|node| match &node.kind {
            NodeKind::Shared(_) => true,
            NodeKind::Mux(spec) => spec.early_eval,
            NodeKind::Fork(spec) => !spec.eager,
            _ => false,
        })
        .map(|node| node.id)
        .collect();
    let mut frontier: Vec<NodeId> = exempt.iter().copied().collect();
    while let Some(node) = frontier.pop() {
        for channel in netlist.output_channels(node) {
            let consumer = channel.to.node;
            if exempt.contains(&consumer) {
                continue;
            }
            let combinational = netlist.node(consumer).is_some_and(|n| {
                matches!(n.kind, NodeKind::Function(_) | NodeKind::Mux(_) | NodeKind::Fork(_))
            });
            if combinational {
                exempt.insert(consumer);
                frontier.push(consumer);
            }
        }
    }
    exempt
}

/// Checks the SELF properties on every channel of a recorded trace.
pub fn check_trace(netlist: &Netlist, trace: &Trace, options: &ProtocolOptions) -> Verdict {
    let mut verdict = Verdict::default();
    let exempt = retraction_exempt_producers(netlist);
    for channel in netlist.live_channels() {
        let producer_exempt = exempt.contains(&channel.from.node);
        for violation in
            check_channel(channel.id, trace.channel_iter(channel.id), options, !producer_exempt)
        {
            verdict.reject(format!(
                "channel {} ({}) violates {} at cycle {}",
                channel.id, channel.name, violation.property, violation.cycle
            ));
        }
    }
    verdict
}

/// Simulates a netlist and checks the SELF properties on the resulting trace.
///
/// # Errors
///
/// Propagates simulation failures (combinational loops, unsupported nodes).
pub fn check_netlist_protocol(
    netlist: &Netlist,
    cycles: u64,
    options: &ProtocolOptions,
) -> Result<Verdict, elastic_sim::SimError> {
    let mut sim = elastic_sim::Simulation::new(netlist, &elastic_sim::SimConfig::default())?;
    sim.run(cycles)?;
    Ok(check_trace(netlist, sim.trace(), options))
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{fig1d, table1, Fig1Config};

    #[test]
    fn a_persistent_retry_sequence_passes() {
        let history = [
            ChannelState { forward_valid: true, forward_stop: true, ..ChannelState::default() },
            ChannelState { forward_valid: true, forward_stop: true, ..ChannelState::default() },
            ChannelState { forward_valid: true, ..ChannelState::default() },
        ];
        assert!(check_channel(
            ChannelId::new(0),
            history.iter().copied(),
            &ProtocolOptions::default(),
            true
        )
        .is_empty());
    }

    #[test]
    fn dropping_a_stopped_token_violates_retry_plus() {
        let history = [
            ChannelState { forward_valid: true, forward_stop: true, ..ChannelState::default() },
            ChannelState::default(),
        ];
        let violations = check_channel(
            ChannelId::new(0),
            history.iter().copied(),
            &ProtocolOptions::default(),
            true,
        );
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].property, "Retry+");
    }

    #[test]
    fn dropping_a_stopped_anti_token_violates_retry_minus() {
        let history = [
            ChannelState { backward_valid: true, backward_stop: true, ..ChannelState::default() },
            ChannelState::default(),
        ];
        let violations = check_channel(
            ChannelId::new(0),
            history.iter().copied(),
            &ProtocolOptions::default(),
            true,
        );
        assert_eq!(violations[0].property, "Retry-");
    }

    #[test]
    fn an_anti_token_discharged_by_an_arriving_token_is_legal() {
        // The consumer owes an anti-token that its producer cannot absorb
        // (S- held), but a token transfers forward in the same cycle: the
        // two cancel at the consumer boundary and the anti-token may
        // disappear without a backward transfer.
        let history = [
            ChannelState {
                forward_valid: true,
                backward_valid: true,
                backward_stop: true,
                ..ChannelState::default()
            },
            ChannelState::default(),
        ];
        let violations = check_channel(
            ChannelId::new(0),
            history.iter().copied(),
            &ProtocolOptions::default(),
            true,
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn kill_and_stop_at_the_same_time_violates_the_invariant() {
        let history = [ChannelState {
            forward_valid: true,
            forward_stop: true,
            backward_valid: true,
            backward_stop: true,
            data: 0,
        }];
        let violations = check_channel(
            ChannelId::new(0),
            history.iter().copied(),
            &ProtocolOptions::default(),
            true,
        );
        assert_eq!(violations[0].property, "Invariant");
    }

    #[test]
    fn starvation_beyond_the_window_violates_liveness() {
        let mut history =
            vec![
                ChannelState { forward_valid: true, forward_stop: true, ..ChannelState::default() };
                80
            ];
        // No transfer ever happens.
        let options = ProtocolOptions { starvation_window: 16, check_liveness: true };
        let violations = check_channel(ChannelId::new(0), history.iter().copied(), &options, true);
        assert!(violations.iter().any(|v| v.property == "Liveness"));
        // Transfers inside the window reset the counter.
        for cycle in [10, 22, 34, 46, 58, 70] {
            history[cycle].forward_stop = false;
        }
        let violations = check_channel(ChannelId::new(0), history.iter().copied(), &options, true);
        assert!(violations.iter().all(|v| v.property != "Liveness"));
    }

    #[test]
    fn the_speculative_fig1_design_respects_the_protocol() {
        let handles = fig1d(&Fig1Config::default());
        let verdict =
            check_netlist_protocol(&handles.netlist, 200, &ProtocolOptions::default()).unwrap();
        assert!(verdict.passed(), "{verdict}");
    }

    #[test]
    fn the_table1_design_respects_the_protocol() {
        let handles = table1();
        let verdict = check_netlist_protocol(
            &handles.netlist,
            16,
            &ProtocolOptions { check_liveness: false, ..ProtocolOptions::default() },
        )
        .unwrap();
        assert!(verdict.passed(), "{verdict}");
    }
}
