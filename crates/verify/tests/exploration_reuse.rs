//! Zero-rebuild sweep guarantee: `explore_environments` builds **one
//! simulation per worker thread** and replays every enumerated environment
//! through `Simulation::reset_with_sink_patterns`, instead of cloning the
//! netlist and rebuilding the simulation per combination.
//!
//! This must be the only test in this file: `Simulation::constructions()` is
//! a process-global counter, and any concurrently running test that builds a
//! simulation would skew the delta.

use elastic_core::library::table1;
use elastic_sim::sweep::sweep_threads;
use elastic_sim::Simulation;
use elastic_verify::exploration::{explore_environments, ExplorationOptions};

#[test]
fn explore_environments_builds_exactly_one_simulation_per_worker_thread() {
    let handles = table1();
    let options = ExplorationOptions {
        pattern_depth: 5, // one sink → 32 combinations
        cycles_per_run: 24,
        max_runs: 32,
        random_scheduler_runs: 0,
        seed: 3,
    };
    let runs = 32u64;
    let workers = sweep_threads(runs as usize) as u64;

    let before = Simulation::constructions();
    let verdict = explore_environments(&handles.netlist, &options).unwrap();
    let builds = Simulation::constructions() - before;

    assert!(verdict.passed(), "{verdict}");
    assert!(builds >= 1, "at least one worker must have built a simulation");
    assert!(
        builds <= workers,
        "{builds} simulation builds for {workers} worker threads — \
         the sweep must build at most one per worker, not one per run"
    );
    if workers < runs {
        // With fewer workers than runs, reuse is directly observable.
        assert!(
            builds < runs,
            "{builds} builds for {runs} runs — the reset path is not being used"
        );
    }

    // A second sweep behaves the same way: the per-worker builds are not a
    // warm-up artefact.
    let before = Simulation::constructions();
    let second = explore_environments(&handles.netlist, &options).unwrap();
    let builds_again = Simulation::constructions() - before;
    assert_eq!(second, verdict, "reset-based sweeps stay deterministic");
    assert!(builds_again <= workers);
}
