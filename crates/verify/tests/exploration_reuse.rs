//! Zero-rebuild sweep guarantee: `explore_environments` builds **one lane
//! simulation per worker thread** and replays every enumerated 64-wide
//! environment block through
//! `LaneSimulation::reset_with_lane_sink_patterns`, instead of cloning the
//! netlist and rebuilding the simulation per combination (or per block).
//!
//! This must be the only test in this file: `LaneSimulation::constructions()`
//! is a process-global counter, and any concurrently running test that
//! builds a lane simulation would skew the delta.

use elastic_core::library::table1;
use elastic_sim::sweep::sweep_threads;
use elastic_sim::{LaneSimulation, LANES};
use elastic_verify::exploration::{explore_environments, ExplorationOptions};

#[test]
fn explore_environments_builds_exactly_one_simulation_per_worker_thread() {
    let handles = table1();
    let options = ExplorationOptions {
        // table1 has 1 sink + 3 sources, so depth 2 spans 8 pattern bits:
        // 256 combinations → 4 lane blocks.
        pattern_depth: 2,
        cycles_per_run: 24,
        max_runs: 4,
        random_scheduler_runs: 0,
        seed: 3,
    };
    let combinations = 256u64;
    let blocks = combinations.div_ceil(LANES as u64);
    let workers = sweep_threads(blocks as usize) as u64;

    let before = LaneSimulation::constructions();
    let verdict = explore_environments(&handles.netlist, &options).unwrap();
    let builds = LaneSimulation::constructions() - before;

    assert!(verdict.passed(), "{verdict}");
    assert!(verdict.is_exhaustive(), "4 lane blocks cover all 256 combinations: {verdict}");
    assert!(builds >= 1, "at least one worker must have built a simulation");
    assert!(
        builds <= workers,
        "{builds} simulation builds for {workers} worker threads — \
         the sweep must build at most one per worker, not one per block"
    );
    if workers < blocks {
        // With fewer workers than blocks, reuse is directly observable.
        assert!(
            builds < blocks,
            "{builds} builds for {blocks} lane blocks — the reset path is not being used"
        );
    }

    // A second sweep behaves the same way: the per-worker builds are not a
    // warm-up artefact.
    let before = LaneSimulation::constructions();
    let second = explore_environments(&handles.netlist, &options).unwrap();
    let builds_again = LaneSimulation::constructions() - before;
    assert_eq!(second, verdict, "reset-based sweeps stay deterministic");
    assert!(builds_again <= workers);
}
