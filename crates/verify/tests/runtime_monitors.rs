//! Runtime-monitor soundness on the paper designs: every monitor has a
//! *positive* test (it fires on a seeded fault, with a bounded locus) and a
//! *negative* test (it stays silent across a clean run) on both Figure 1(d)
//! and the Figure 7(b) speculative accumulator.

use elastic_core::library::{fig1d, resilient_speculative, Fig1Config, ResilientConfig};
use elastic_core::{ChannelId, Netlist, NodeId, Port};
use elastic_sim::{
    CycleMonitor, FaultKind, FaultPlan, FaultSpec, MonitorViolation, SimConfig, SimError,
    Simulation, SimulationReport,
};
use elastic_verify::properties::ProtocolOptions;
use elastic_verify::{
    standard_monitors, LeadsToMonitor, MonitorOptions, ProgressMonitor, ProtocolMonitor,
    ScoreboardMonitor,
};

const CYCLES: u64 = 160;

fn reference(netlist: &Netlist) -> (Simulation, SimulationReport) {
    let mut sim = Simulation::new(netlist, &SimConfig::default()).expect("paper design builds");
    let report = sim.run(CYCLES).expect("clean run succeeds");
    sim.reset();
    (sim, report)
}

fn sink_channel(netlist: &Netlist, sink: NodeId) -> ChannelId {
    netlist.channel_into(Port::input(sink, 0)).expect("sink is connected").id
}

fn expect_trip(result: Result<SimulationReport, SimError>) -> MonitorViolation {
    match result {
        Err(SimError::MonitorTripped(violation)) => violation,
        Err(other) => panic!("expected a monitor trip, got error: {other}"),
        Ok(_) => panic!("expected a monitor trip, run stayed clean"),
    }
}

/// Negative control: the full monitor set (protocol, progress, leads-to,
/// scoreboard) is silent on a clean run of the design.
fn assert_clean(netlist: &Netlist) {
    let (mut sim, report) = reference(netlist);
    let mut monitors = standard_monitors(netlist, &MonitorOptions::default());
    monitors.push(Box::new(ScoreboardMonitor::from_reference(netlist, &report, true)));
    let monitored = sim
        .run_monitored(CYCLES, None, &mut monitors)
        .unwrap_or_else(|error| panic!("clean design tripped a monitor: {error}"));
    assert!(!monitored.deadline_exceeded);
}

#[test]
fn all_monitors_stay_silent_on_clean_fig1d() {
    assert_clean(&fig1d(&Fig1Config::default()).netlist);
}

#[test]
fn all_monitors_stay_silent_on_clean_fig7b() {
    assert_clean(&resilient_speculative(&ResilientConfig::default()).netlist);
}

/// Positive scoreboard: a single flipped data bit on the sink's input is
/// caught at the corrupted transfer with a channel locus.
fn assert_scoreboard_catches_bit_flip(netlist: &Netlist, sink: NodeId) {
    let (mut sim, report) = reference(netlist);
    let channel = sink_channel(netlist, sink);
    sim.arm_faults(&FaultPlan::single(FaultSpec {
        channel,
        kind: FaultKind::BitFlip { mask: 1 },
        from_cycle: 31,
        duration: 8,
    }))
    .unwrap();
    let mut monitors: Vec<Box<dyn CycleMonitor>> =
        vec![Box::new(ScoreboardMonitor::from_reference(netlist, &report, true))];
    let violation = expect_trip(sim.run_monitored(CYCLES, None, &mut monitors));
    assert_eq!(violation.monitor, "scoreboard");
    assert_eq!(violation.invariant, "ReferenceStream");
    assert_eq!(violation.channel, Some(channel));
    assert!((31..CYCLES).contains(&violation.cycle), "locus {} inside the run", violation.cycle);
}

#[test]
fn the_scoreboard_catches_a_flipped_output_bit_on_fig1d() {
    let handles = fig1d(&Fig1Config::default());
    assert_scoreboard_catches_bit_flip(&handles.netlist, handles.sink);
}

#[test]
fn the_scoreboard_catches_a_flipped_output_bit_on_fig7b() {
    let handles = resilient_speculative(&ResilientConfig::default());
    assert_scoreboard_catches_bit_flip(&handles.netlist, handles.sink);
}

/// Positive progress: permanently stalling the sink's input wedges the
/// design; the monitor trips right after its window with the wait-for
/// root-cause diagnosis embedded in the violation.
fn assert_progress_diagnoses_wedge(netlist: &Netlist, sink: NodeId) {
    let mut sim = Simulation::new(netlist, &SimConfig::default()).unwrap();
    sim.arm_faults(&FaultPlan::single(FaultSpec {
        channel: sink_channel(netlist, sink),
        kind: FaultKind::StallStorm,
        from_cycle: 0,
        duration: u64::MAX,
    }))
    .unwrap();
    let mut monitors: Vec<Box<dyn CycleMonitor>> =
        vec![Box::new(ProgressMonitor::new(netlist, 24))];
    let violation = expect_trip(sim.run_monitored(400, None, &mut monitors));
    assert_eq!(violation.monitor, "progress");
    assert_eq!(violation.invariant, "Progress");
    assert!(violation.cycle <= 48, "trips right after the window, at cycle {}", violation.cycle);
    assert!(
        violation.details.contains("wait-for analysis"),
        "the violation embeds the root-cause diagnosis: {}",
        violation.details
    );
}

#[test]
fn the_progress_monitor_diagnoses_a_wedged_fig1d() {
    let handles = fig1d(&Fig1Config::default());
    assert_progress_diagnoses_wedge(&handles.netlist, handles.sink);
}

#[test]
fn the_progress_monitor_diagnoses_a_wedged_fig7b() {
    let handles = resilient_speculative(&ResilientConfig::default());
    assert_progress_diagnoses_wedge(&handles.netlist, handles.sink);
}

/// Positive leads-to: a stuck-at-Stop fault on a shared module input keeps
/// an offered token from ever being served; past the horizon the monitor
/// names the starved channel.
fn assert_leads_to_fires_when_shared_cannot_serve(netlist: &Netlist, shared: NodeId) {
    let user0 = netlist
        .channel_into(Port::input(shared, 0))
        .expect("the shared module has a user input channel")
        .id;
    let mut sim = Simulation::new(netlist, &SimConfig::default()).unwrap();
    sim.arm_faults(&FaultPlan::single(FaultSpec {
        channel: user0,
        kind: FaultKind::StuckStop { level: true },
        from_cycle: 0,
        duration: u64::MAX,
    }))
    .unwrap();
    let mut monitors: Vec<Box<dyn CycleMonitor>> = vec![Box::new(LeadsToMonitor::new(netlist, 24))];
    let violation = expect_trip(sim.run_monitored(400, None, &mut monitors));
    assert_eq!(violation.monitor, "leads-to");
    assert_eq!(violation.invariant, "LeadsTo");
    assert!(violation.channel.is_some(), "the violation names the starved input channel");
}

#[test]
fn the_leads_to_monitor_fires_when_fig1d_shared_module_cannot_serve() {
    let handles = fig1d(&Fig1Config::default());
    let shared = handles.shared.expect("fig1d is speculative");
    assert_leads_to_fires_when_shared_cannot_serve(&handles.netlist, shared);
}

#[test]
fn the_leads_to_monitor_fires_when_fig7b_shared_module_cannot_serve() {
    let handles = resilient_speculative(&ResilientConfig::default());
    let shared = handles.shared.expect("fig7b is speculative");
    assert_leads_to_fires_when_shared_cannot_serve(&handles.netlist, shared);
}

/// Positive protocol: a handshake glitch injected after the settle — a
/// forced Stop or a retracted Valid on a channel whose producer committed
/// the transfer combinationally — breaks a SELF channel property, and the
/// protocol monitor reports it with a locus inside the fault window.
fn assert_protocol_catches_a_glitch(netlist: &Netlist) {
    let mut sim = Simulation::new(netlist, &SimConfig::default()).unwrap();
    let channels: Vec<ChannelId> = netlist.live_channels().map(|c| c.id).collect();
    for kind in [FaultKind::StallStorm, FaultKind::DropToken] {
        for &channel in &channels {
            sim.reset();
            let fault = FaultSpec { channel, kind, from_cycle: 24, duration: 8 };
            sim.arm_faults(&FaultPlan::single(fault)).unwrap();
            let mut monitors: Vec<Box<dyn CycleMonitor>> =
                vec![Box::new(ProtocolMonitor::new(netlist, &ProtocolOptions::default()))];
            if let Err(SimError::MonitorTripped(violation)) =
                sim.run_monitored(CYCLES, None, &mut monitors)
            {
                assert_eq!(violation.monitor, "protocol");
                assert!(
                    violation.cycle + 1 >= 24 && violation.cycle <= 24 + 8 + 64 + 8,
                    "locus {} bounded by the fault window",
                    violation.cycle
                );
                assert!(violation.channel.is_some());
                return;
            }
        }
    }
    panic!("no injected handshake glitch tripped the protocol monitor");
}

#[test]
fn the_protocol_monitor_catches_an_injected_glitch_on_fig1d() {
    assert_protocol_catches_a_glitch(&fig1d(&Fig1Config::default()).netlist);
}

#[test]
fn the_protocol_monitor_catches_an_injected_glitch_on_fig7b() {
    assert_protocol_catches_a_glitch(&resilient_speculative(&ResilientConfig::default()).netlist);
}
