//! The Figure-1 design-space walk: non-speculative loop → bubble insertion →
//! Shannon decomposition → speculation, plus the Table-1 trace.
//!
//! This is the "branch prediction" scenario from the paper's introduction:
//! the loop through `G` computes whether a branch is taken, the multiplexor
//! picks the next PC, and speculation lets the pipeline run ahead of the
//! branch resolution.
//!
//! Run with `cargo run --example branch_speculation`.

use elastic_analysis::{cost::CostModel, report::DesignPoint, DesignComparison};
use elastic_core::library;
use elastic_core::SchedulerKind;
use elastic_sim::scenarios::{self, Fig1Scenario, Fig1Variant};
use elastic_sim::{SimConfig, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::default();
    let mut comparison = DesignComparison::new();
    println!("Figure 1 design space (branch-taken rate 20%, two-bit predictor):\n");
    for variant in Fig1Variant::all() {
        let outcome = scenarios::run_fig1(&Fig1Scenario {
            variant,
            taken_rate: 0.2,
            scheduler: SchedulerKind::TwoBit,
            cycles: 2000,
            seed: 7,
        })?;
        println!(
            "  {:<22} throughput {:.3} tokens/cycle, {} mispredictions",
            variant.label(),
            outcome.throughput,
            outcome.mispredictions
        );
        comparison.push(DesignPoint::with_throughput(
            variant.label(),
            &outcome.handles.netlist,
            &model,
            outcome.throughput,
        ));
    }
    println!("\n{}", comparison.render());

    // Prediction accuracy sweep: how the speculative design degrades as the
    // branch becomes less predictable.
    println!("speculation vs branch-taken rate (last-taken predictor):");
    for taken_rate in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let outcome = scenarios::run_fig1(&Fig1Scenario {
            variant: Fig1Variant::Speculation,
            taken_rate,
            scheduler: SchedulerKind::LastTaken,
            cycles: 2000,
            seed: 11,
        })?;
        println!(
            "  taken rate {taken_rate:>4.2}: throughput {:.3}, mispredictions {}",
            outcome.throughput, outcome.mispredictions
        );
    }

    // The Table-1 trace, rendered exactly the way the paper prints it.
    println!("\nTable 1 trace (speculative design, pinned select/schedule):\n");
    let handles = library::table1();
    let mut sim = Simulation::new(&handles.netlist, &SimConfig::default())?;
    sim.run(7)?;
    let channel = |name: &str| {
        handles.netlist.live_channels().find(|c| c.name == name).map(|c| c.id).unwrap()
    };
    println!(
        "{}",
        sim.trace().render_table(&[
            (channel("fin0"), "Fin0"),
            (channel("fout0"), "Fout0"),
            (channel("fin1"), "Fin1"),
            (channel("fout1"), "Fout1"),
            (channel("sel"), "Sel"),
            (channel("ebin"), "EBin"),
        ])
    );
    Ok(())
}
