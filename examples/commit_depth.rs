//! Commit-depth sweep: the latency/throughput/area trade of depth-N commit
//! lanes, measured against the depth-1 baseline.
//!
//! Three measurements back `BENCH_commit_depth.json`:
//!
//! 1. **Control — fig1d-style select loop.** On a select loop the commit
//!    stage is skipped (the loop's elastic buffer already decouples the
//!    speculation), so sweeping `commit_depth` must change *nothing*: the
//!    sweep asserts the three netlists are bit-identical and reports the one
//!    loop throughput.
//! 2. **Feed-forward speculation under a bursty consumer** (predictable
//!    select, last-taken scheduler): the shape where depth matters. When the
//!    consumer stalls in bursts, a depth-d lane parks up to d speculative
//!    results ahead of the resolution point and streams them out
//!    back-to-back once the burst ends; depth 1 re-serializes on the shared
//!    module instead. Reported per depth: sink throughput, cycles/token,
//!    mean peak lane occupancy (run-ahead actually achieved), squashes,
//!    commit-stage area and total area, plus simulator wall-clock cycles/s.
//! 3. **Adversarial variant** (unbiased random select, static scheduler):
//!    half the speculative results are wrong-path, so deep lanes mostly park
//!    squash fodder — the sweep shows the win collapsing while the area
//!    still grows, which is the honest other side of the trade.
//!
//! Run with `cargo run --release --example commit_depth` from the repo root;
//! it rewrites `BENCH_commit_depth.json`.

use std::fmt::Write as _;
use std::time::Instant;

use elastic_analysis::cost::CostModel;
use elastic_analysis::critical::commit_profiles;
use elastic_core::kind::{BackpressurePattern, DataStream};
use elastic_core::library::{fig1a, Fig1Config};
use elastic_core::transform::{speculate, SpeculateOptions};
use elastic_core::{Netlist, NodeId, SchedulerKind};
use elastic_sim::{SimConfig, Simulation};
use elastic_suite::feedforward_mux_design;

const CYCLES: u64 = 20_000;
const DEPTHS: [u32; 3] = [1, 2, 4];

/// One measured design point of the feed-forward sweep.
struct DepthPoint {
    depth: u32,
    throughput: f64,
    cycles_per_token: f64,
    first_transfer_cycle: u64,
    mean_peak_occupancy: f64,
    squashes: u64,
    commit_area: f64,
    total_area: f64,
    sim_cycles_per_sec: f64,
}

/// The feed-forward speculation target (the shared `elastic-suite` builder,
/// so the benchmark measures exactly the design `tests/commit_depth.rs`
/// verifies): sel/a/b sources into a lazy mux, an opaque block behind it,
/// and a consumer that stalls in bursts (2 stalled, 3 open per period).
fn feedforward(select: DataStream) -> (Netlist, NodeId, NodeId) {
    feedforward_mux_design(select, BackpressurePattern::List(vec![true, true, false, false, false]))
}

/// Simulates `netlist` and returns (report, wall-clock cycles per second).
fn run_timed(netlist: &Netlist) -> (elastic_sim::SimulationReport, f64) {
    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    // Warm-up run, then best of 3 for the wall-clock figure.
    let mut sim = Simulation::new(netlist, &quiet).unwrap();
    let report = sim.run(CYCLES).unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut sim = Simulation::new(netlist, &quiet).unwrap();
        let start = Instant::now();
        sim.run(CYCLES).unwrap();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (report, CYCLES as f64 / best)
}

fn sweep(select: DataStream, scheduler: SchedulerKind, label: &str) -> (f64, Vec<DepthPoint>) {
    let model = CostModel::default();
    let (baseline, _, sink) = feedforward(select.clone());
    let (base_report, _) = run_timed(&baseline);
    let base_throughput = base_report.throughput(sink);
    println!("\n== {label} ==");
    println!("baseline (no speculation): {base_throughput:.3} tokens/cycle");

    let mut points = Vec::new();
    for depth in DEPTHS {
        let (mut n, mux, _) = feedforward(select.clone());
        let options = SpeculateOptions {
            scheduler: scheduler.clone(),
            allow_acyclic: true,
            commit_depth: depth,
            starvation_limit: Some(8),
            ..SpeculateOptions::default()
        };
        speculate(&mut n, mux, &options).unwrap();
        let sink = n.find_node("sink").unwrap().id;
        let (report, cycles_per_sec) = run_timed(&n);
        let throughput = report.throughput(sink);
        let stats = report.commit_stats.values().next().expect("one commit stage");
        let first_transfer_cycle =
            report.sink_streams.get(&sink).and_then(|s| s.first()).map(|&(c, _)| c).unwrap_or(0);
        let profiles = commit_profiles(&n, &model);
        assert_eq!(profiles.len(), 1);
        let point = DepthPoint {
            depth,
            throughput,
            cycles_per_token: if throughput > 0.0 { 1.0 / throughput } else { f64::INFINITY },
            first_transfer_cycle,
            mean_peak_occupancy: stats.mean_peak_occupancy().unwrap_or(0.0),
            squashes: stats.total_squashes(),
            commit_area: profiles[0].area,
            total_area: model.netlist_area(&n).total(),
            sim_cycles_per_sec: cycles_per_sec,
        };
        println!(
            "depth {depth}: {:.3} tokens/cycle ({:.2} cycles/token), peak occupancy {:.2}, \
             {} squashes, commit area {:.0} GE, {:.0} sim cycles/s",
            point.throughput,
            point.cycles_per_token,
            point.mean_peak_occupancy,
            point.squashes,
            point.commit_area,
            point.sim_cycles_per_sec,
        );
        points.push(point);
    }
    (base_throughput, points)
}

fn json_sweep(out: &mut String, base_throughput: f64, points: &[DepthPoint]) {
    let depth1 = &points[0];
    let _ = writeln!(out, "    \"baseline_no_speculation\": {{ \"throughput_tokens_per_cycle\": {base_throughput:.4} }},");
    let _ = writeln!(out, "    \"depths\": {{");
    for (index, point) in points.iter().enumerate() {
        let comma = if index + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "      \"{}\": {{ \"throughput_tokens_per_cycle\": {:.4}, \"cycles_per_token\": {:.3}, \
             \"first_transfer_cycle\": {}, \"mean_peak_lane_occupancy\": {:.3}, \"squashes\": {}, \
             \"commit_stage_area_ge\": {:.1}, \"total_area_ge\": {:.1}, \
             \"sim_cycles_per_sec\": {:.0}, \"throughput_vs_depth1\": {:.3}, \
             \"area_vs_depth1\": {:.3} }}{comma}",
            point.depth,
            point.throughput,
            point.cycles_per_token,
            point.first_transfer_cycle,
            point.mean_peak_occupancy,
            point.squashes,
            point.commit_area,
            point.total_area,
            point.sim_cycles_per_sec,
            point.throughput / depth1.throughput,
            point.total_area / depth1.total_area,
        );
    }
    let _ = writeln!(out, "    }}");
}

fn main() {
    // 1. Control: the fig1d-style select loop ignores the depth knob.
    let loop_netlists: Vec<Netlist> = DEPTHS
        .iter()
        .map(|&depth| {
            let handles = fig1a(&Fig1Config::default());
            let mut n = handles.netlist;
            let options = SpeculateOptions {
                scheduler: SchedulerKind::LastTaken,
                commit_depth: depth,
                ..SpeculateOptions::default()
            };
            let report = speculate(&mut n, handles.mux, &options).unwrap();
            assert!(report.commit_stage.is_none(), "select loops skip the commit stage");
            n
        })
        .collect();
    assert!(
        loop_netlists.windows(2).all(|pair| pair[0] == pair[1]),
        "the loop control must be depth-independent"
    );
    let loop_sink = loop_netlists[0].find_node("sink").unwrap().id;
    let (loop_report, _) = run_timed(&loop_netlists[0]);
    let loop_throughput = loop_report.throughput(loop_sink);
    println!("== control: fig1d-style loop ==");
    println!(
        "depth 1/2/4 produce bit-identical netlists; loop throughput {loop_throughput:.3} \
         tokens/cycle"
    );

    // 2. Predictable select: a heavily biased stream (one "taken" in eight)
    //    that a last-taken predictor gets right ~75% of the time.
    let biased = DataStream::List(vec![0, 0, 0, 0, 0, 0, 1, 0]);
    let (pred_base, pred_points) =
        sweep(biased, SchedulerKind::LastTaken, "feed-forward, biased select + last-taken");
    // 3. Adversarial: an unbiased random select against a static scheduler —
    //    half of every lane's parked results are squash fodder.
    let adversarial = DataStream::Random { seed: 0xD1CE };
    let (adv_base, adv_points) =
        sweep(adversarial, SchedulerKind::Static(0), "feed-forward, adversarial static scheduler");

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"commit_depth\",\n");
    out.push_str(
        "  \"description\": \"Latency/throughput/area versus commit-stage depth (1, 2, 4), \
         measured with `cargo run --release --example commit_depth` (20k simulated cycles, \
         wall-clock best of 3). The control is a fig1d-style select loop, where the commit stage \
         is structurally skipped and the sweep asserts bit-identical netlists. The feed-forward \
         sweeps speculate a source-fed lazy mux with a bursty consumer (3-open/2-stalled \
         back-pressure period): depth-N lanes park wrong-or-right-path results ahead of the \
         resolution point, and the per-lane peak-occupancy statistic reports how much of the \
         head-room each workload used. Area comes from the elastic-analysis cost model \
         (commit-stage area is linear in lanes x depth). Two trend observations are the point: \
         under the biased workload depth 2 beats both 1 and 4 (deeper lanes speculate past the \
         periodic mispredict and pay for it in squashed work), and under the adversarial \
         scheduler throughput is depth-independent while area still grows — depth only pays \
         when prediction is decent. The unspeculated baseline row is context: feed-forward \
         speculation trades tokens/cycle for pipeline cycle time (paper Section 5.2), so its \
         throughput is not the comparison target, the depth trend is.\",\n",
    );
    out.push_str(
        "  \"hardware_note\": \"Container CPU; absolute sim_cycles_per_sec varies with the \
         host, ratios are the signal.\",\n",
    );
    let _ = writeln!(
        out,
        "  \"control_fig1d_loop\": {{ \"depth_independent\": true, \
         \"throughput_tokens_per_cycle\": {loop_throughput:.4}, \"note\": \"select-loop \
         speculation skips the commit stage; depths 1/2/4 produce bit-identical netlists (also \
         pinned by tests/commit_depth.rs)\" }},"
    );
    out.push_str("  \"feedforward_last_taken\": {\n");
    json_sweep(&mut out, pred_base, &pred_points);
    out.push_str("  },\n");
    out.push_str("  \"feedforward_adversarial_static\": {\n");
    json_sweep(&mut out, adv_base, &adv_points);
    out.push_str("  }\n");
    out.push_str("}\n");
    std::fs::write("BENCH_commit_depth.json", &out).expect("write BENCH_commit_depth.json");
    println!("\nwrote BENCH_commit_depth.json");
}
