//! Wall-clock engine timing on the `sim_speed` benchmark designs.
//!
//! Prints cycles/second for the Figure-1(d) and Figure-7(b) designs and for
//! the two 256-stage synthetic pipelines of `crates/bench/benches/sim_speed.rs`,
//! for both the scalar event-driven engine and the 64-lane bit-parallel
//! engine (lane numbers are **aggregate** scenario-cycles/second: simulated
//! cycles × 64 lanes / wall time). A final environment-sweep workload runs
//! the same 2048 sink-back-pressure scenarios once through the scalar
//! `sweep::parallel_map_with` path and once through `sweep::lane_map` with
//! 64 scenarios per lane block — the ratio of those two aggregate numbers is
//! the headline lane-engine win recorded in `BENCH_sim_speed.json`.
//!
//! The "before" numbers in `BENCH_sim_speed.json` were produced by compiling
//! this workload against the seed (pre-worklist) engine, with the
//! `deep_pipeline` builder inlined since the seed library predates it.
//!
//! Run with `cargo run --release --example engine_timing`; pass `--write`
//! (or set `ELASTIC_BENCH_WRITE=1`) to rewrite `BENCH_sim_speed.json` in
//! place from the fresh measurements.

use std::time::Instant;

use elastic_core::kind::{BackpressurePattern, BufferSpec, NodeKind};
use elastic_core::library::{
    deep_pipeline, fig1d, resilient_speculative, Fig1Config, ResilientConfig,
};
use elastic_core::{Netlist, NodeId};
use elastic_sim::sweep::{lane_map, parallel_map_with};
use elastic_sim::{LaneConfig, LaneSimulation, SettleStrategy, SimConfig, Simulation, LANES};

fn time_scalar(netlist: &Netlist, cycles: u64, repeats: u32) -> f64 {
    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    // Warm-up.
    Simulation::new(netlist, &quiet).unwrap().run(cycles).unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        Simulation::new(netlist, &quiet).unwrap().run(cycles).unwrap();
        best = best.min(start.elapsed().as_secs_f64());
    }
    cycles as f64 / best
}

/// The compiled settle backend: the netlist is lowered once into a fused,
/// topologically-ordered micro-op plan; settling replays the plan with no
/// worklist and no per-eval dispatch (`SettleStrategy::Compiled`).
fn time_compiled(netlist: &Netlist, cycles: u64, repeats: u32) -> f64 {
    let quiet =
        SimConfig { record_trace: false, settle: SettleStrategy::Compiled, ..SimConfig::default() };
    Simulation::new(netlist, &quiet).unwrap().run(cycles).unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        Simulation::new(netlist, &quiet).unwrap().run(cycles).unwrap();
        best = best.min(start.elapsed().as_secs_f64());
    }
    cycles as f64 / best
}

/// Aggregate lane throughput in scenario-cycles/second: every simulated
/// cycle advances all 64 lanes.
fn time_lanes(netlist: &Netlist, cycles: u64, repeats: u32) -> f64 {
    let quiet = LaneConfig { record_trace: false, ..LaneConfig::default() };
    LaneSimulation::new(netlist, &quiet).unwrap().run(cycles).unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        LaneSimulation::new(netlist, &quiet).unwrap().run(cycles).unwrap();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (cycles as usize * LANES) as f64 / best
}

fn sink_of(netlist: &Netlist) -> NodeId {
    netlist
        .live_nodes()
        .find(|n| matches!(n.kind, NodeKind::Sink(_)))
        .map(|n| n.id)
        .expect("benchmark designs have a sink")
}

/// The enumerated environment of one sweep scenario: a 6-cycle sink
/// back-pressure pattern read off the scenario index bits (the same
/// encoding `elastic-verify`'s exploration uses).
fn scenario_pattern(scenario: usize) -> BackpressurePattern {
    BackpressurePattern::List((0..6).map(|bit| (scenario >> bit) & 1 == 1).collect())
}

/// The scalar side of the environment sweep: every scenario is one full
/// simulation run, fanned across worker threads with one resettable
/// simulation per worker. Returns aggregate scenario-cycles/second.
fn time_sweep_scalar(netlist: &Netlist, scenarios: usize, cycles: u64, repeats: u32) -> f64 {
    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    let sink = sink_of(netlist);
    let indices: Vec<usize> = (0..scenarios).collect();
    let sweep = || {
        let transfers = parallel_map_with(
            &indices,
            || Simulation::new(netlist, &quiet).unwrap(),
            |sim, _, &scenario| {
                sim.reset_with_sink_patterns(&[(sink, scenario_pattern(scenario))]);
                sim.run(cycles).unwrap();
                sim.report().sink_transfers(sink)
            },
        );
        transfers.iter().sum::<u64>()
    };
    let reference = sweep(); // warm-up, and the checksum the lane sweep must match
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        assert_eq!(sweep(), reference);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (scenarios as u64 * cycles) as f64 / best
}

/// The lane side of the same sweep: 64 scenarios per lane block, one
/// resettable `LaneSimulation` per worker thread. Returns aggregate
/// scenario-cycles/second — and asserts the transfer checksum matches the
/// scalar sweep, so the speedup is measured on verified-identical work.
fn time_sweep_lanes(
    netlist: &Netlist,
    scenarios: usize,
    cycles: u64,
    repeats: u32,
    scalar_checksum: u64,
) -> f64 {
    let quiet = LaneConfig { record_trace: false, ..LaneConfig::default() };
    let sink = sink_of(netlist);
    let indices: Vec<usize> = (0..scenarios).collect();
    let sweep = || {
        let transfers = lane_map(
            &indices,
            || LaneSimulation::new(netlist, &quiet).unwrap(),
            |sim, _, block| {
                let patterns: Vec<BackpressurePattern> =
                    block.iter().map(|&scenario| scenario_pattern(scenario)).collect();
                sim.reset_with_lane_sink_patterns(&[(sink, patterns)]);
                sim.run(cycles).unwrap();
                block
                    .iter()
                    .enumerate()
                    .map(|(lane, _)| sim.report(lane).sink_transfers(sink))
                    .collect()
            },
        );
        transfers.iter().sum::<u64>()
    };
    assert_eq!(sweep(), scalar_checksum, "lane sweep must reproduce the scalar transfers");
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        assert_eq!(sweep(), scalar_checksum);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (scenarios as u64 * cycles) as f64 / best
}

struct Case {
    key: &'static str,
    design: &'static str,
    /// Seed-engine cycles/second, carried over from the PR-1 measurement.
    before: u64,
    scalar: f64,
    compiled: f64,
    lanes: f64,
}

fn main() {
    let write = std::env::args().any(|arg| arg == "--write")
        || std::env::var("ELASTIC_BENCH_WRITE").is_ok_and(|v| v != "0");

    let fig1 = fig1d(&Fig1Config::default());
    let fig7 = resilient_speculative(&ResilientConfig {
        data_width: 32,
        operands: (0..512).collect(),
        error_masks: vec![0],
    });
    let pipeline = deep_pipeline(256, BufferSpec::standard(0), BackpressurePattern::Never);
    let comb_chain = deep_pipeline(
        256,
        BufferSpec::zero_backward(0),
        BackpressurePattern::List(vec![true, false]),
    );

    let cycles = 512u64;
    let specs: [(&'static str, &'static str, u64, &Netlist, u32); 4] = [
        ("fig1d", "Figure 1(d) speculative loop (paper design)", 1_422_669, &fig1.netlist, 7),
        (
            "fig7b",
            "Figure 7(b) speculative SECDED resilient adder (paper design)",
            11_014,
            &fig7.netlist,
            5,
        ),
        (
            "pipeline256_standard",
            "256-stage pipeline of standard (fully registered) elastic buffers, ~770 nodes",
            43_970,
            &pipeline,
            5,
        ),
        (
            "comb_chain256_zero_backward",
            "256-stage chain of Lb=0 buffers with a stalling sink: stop/kill waves cross the \
             whole chain combinationally each cycle",
            857,
            &comb_chain,
            3,
        ),
    ];

    let mut cases = Vec::new();
    for (key, design, before, netlist, repeats) in specs {
        let scalar = time_scalar(netlist, cycles, repeats);
        let compiled = time_compiled(netlist, cycles, repeats);
        let lanes = time_lanes(netlist, cycles, repeats);
        println!(
            "{key:<28} scalar {scalar:>12.0} cycles/s   compiled {compiled:>12.0} cycles/s \
             ({:.1}x)   lanes {lanes:>14.0} scenario-cycles/s   ({:.1}x aggregate)",
            compiled / scalar,
            lanes / scalar
        );
        cases.push(Case { key, design, before, scalar, compiled, lanes });
    }

    // Environment sweep: 2048 enumerated sink back-pressure scenarios on the
    // zero-backward chain (the all-word-native controller path), scalar
    // parallel_map_with vs 64-wide lane_map. Both sides use every worker
    // thread; the ratio isolates the word-level parallelism.
    let scenarios = 2048usize;
    let sweep_cycles = 192u64;
    let sweep_netlist = &comb_chain;
    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    let sink = sink_of(sweep_netlist);
    let checksum: u64 = {
        let mut sim = Simulation::new(sweep_netlist, &quiet).unwrap();
        (0..scenarios)
            .map(|scenario| {
                sim.reset_with_sink_patterns(&[(sink, scenario_pattern(scenario))]);
                sim.run(sweep_cycles).unwrap();
                sim.report().sink_transfers(sink)
            })
            .sum()
    };
    let sweep_scalar = time_sweep_scalar(sweep_netlist, scenarios, sweep_cycles, 3);
    let sweep_lanes = time_sweep_lanes(sweep_netlist, scenarios, sweep_cycles, 3, checksum);
    let sweep_ratio = sweep_lanes / sweep_scalar;
    println!(
        "environment_sweep            scalar {sweep_scalar:>12.0} scenario-cycles/s   lanes \
         {sweep_lanes:>14.0} scenario-cycles/s   ({sweep_ratio:.1}x aggregate)"
    );

    if write {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"benchmark\": \"sim_speed\",\n");
        json.push_str(
            "  \"description\": \"SELF engine throughput, measured with `cargo run --release \
             --example engine_timing` (best of N runs, 512 cycles per run). 'before' is the seed \
             Jacobi engine (full sweep of every controller per settle iteration, commit 9d9d7ae); \
             'scalar' is the event-driven worklist engine; 'compiled' is the fused compiled \
             settle backend (SettleStrategy::Compiled: one monomorphic micro-op plan replayed \
             per cycle, no worklist, no per-eval dispatch); 'lanes' is the 64-lane bit-parallel \
             engine in aggregate scenario-cycles/second (cycles x 64 lanes / wall time). The \
             environment_sweep case runs 2048 enumerated sink back-pressure scenarios through \
             sweep::parallel_map_with (one scenario per run) vs sweep::lane_map (64 scenarios \
             per lane block), transfer-checksum-verified to compute identical results.\",\n",
        );
        json.push_str(
            "  \"hardware_note\": \"Container CPU; absolute numbers vary with the host, ratios \
             are the signal.\",\n",
        );
        json.push_str(
            "  \"compiled_note\": \"The compiled backend's ceiling is set by Amdahl, not \
             dispatch: the plan fuses the rail-only SELF handshake ops (buffers, forks, joins, \
             muxes) into monomorphic micro-ops, but heavyweight sequential controllers (shared \
             SECDED unit, variable-latency ALU, commit stage, environments) still evaluate \
             through their dyn Controller::eval behind an Eval micro-op, and combinational rail \
             cycles still relax to fixpoint exactly as the worklist engine does. fig7b's settle \
             time is dominated by those Eval ops plus a 16-op rail-cycle segment, so removing \
             the worklist/dispatch tax buys roughly parity there (0.9-1.3x across runs on this \
             single-core container); the chain cases, whose settle time is almost entirely \
             fused rail ops, get the full 1.3-2.8x. For throughput on many scenarios the \
             64-lane engine stacks on top (4-11x aggregate).\",\n",
        );
        json.push_str("  \"cases\": {\n");
        // Every scalar case is followed by the environment_sweep entry, so
        // the separator is unconditional.
        for case in &cases {
            json.push_str(&format!(
                "    \"{}\": {{\n      \"design\": \"{}\",\n      \
                 \"before_cycles_per_sec\": {},\n      \"scalar_cycles_per_sec\": {:.0},\n      \
                 \"compiled_cycles_per_sec\": {:.0},\n      \
                 \"lane_scenario_cycles_per_sec\": {:.0},\n      \
                 \"scalar_speedup_vs_seed\": {:.2},\n      \
                 \"compiled_vs_scalar\": {:.2},\n      \
                 \"lane_aggregate_vs_scalar\": {:.2}\n    }},\n",
                case.key,
                case.design,
                case.before,
                case.scalar,
                case.compiled,
                case.lanes,
                case.scalar / case.before as f64,
                case.compiled / case.scalar,
                case.lanes / case.scalar,
            ));
        }
        json.push_str(&format!(
            "    \"environment_sweep\": {{\n      \"design\": \"2048 enumerated sink \
             back-pressure scenarios x {sweep_cycles} cycles on the 256-stage zero-backward \
             chain\",\n      \"scalar_scenario_cycles_per_sec\": {sweep_scalar:.0},\n      \
             \"lane_scenario_cycles_per_sec\": {sweep_lanes:.0},\n      \
             \"lane_aggregate_vs_scalar\": {sweep_ratio:.2}\n    }}\n"
        ));
        json.push_str("  }\n}\n");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_sim_speed.json");
        std::fs::write(path, json).unwrap();
        println!("wrote {path}");
    }
}
