//! Wall-clock engine timing on the `sim_speed` benchmark designs.
//!
//! Prints cycles/second for the Figure-1(d) and Figure-7(b) designs and for
//! the two 256-stage synthetic pipelines of `crates/bench/benches/sim_speed.rs`.
//! The "before" numbers in `BENCH_sim_speed.json` were produced by compiling
//! this workload against the seed (pre-worklist) engine, with the
//! `deep_pipeline` builder inlined since the seed library predates it.
//!
//! Run with `cargo run --release --example engine_timing`.

use std::time::Instant;

use elastic_core::kind::{BackpressurePattern, BufferSpec};
use elastic_core::library::{
    deep_pipeline, fig1d, resilient_speculative, Fig1Config, ResilientConfig,
};
use elastic_core::Netlist;
use elastic_sim::{SimConfig, Simulation};

fn time_case(name: &str, netlist: &Netlist, cycles: u64, repeats: u32) {
    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    // Warm-up.
    Simulation::new(netlist, &quiet).unwrap().run(cycles).unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        Simulation::new(netlist, &quiet).unwrap().run(cycles).unwrap();
        best = best.min(start.elapsed().as_secs_f64());
    }
    let cycles_per_second = cycles as f64 / best;
    println!("{name:<28} {cycles_per_second:>14.0} cycles/s  ({:.3} ms/run)", best * 1e3);
}

fn main() {
    let fig1 = fig1d(&Fig1Config::default());
    let fig7 = resilient_speculative(&ResilientConfig {
        data_width: 32,
        operands: (0..512).collect(),
        error_masks: vec![0],
    });
    let pipeline = deep_pipeline(256, BufferSpec::standard(0), BackpressurePattern::Never);
    let comb_chain = deep_pipeline(
        256,
        BufferSpec::zero_backward(0),
        BackpressurePattern::List(vec![true, false]),
    );

    let cycles = 512u64;
    time_case("fig1d", &fig1.netlist, cycles, 7);
    time_case("fig7b", &fig7.netlist, cycles, 5);
    time_case("pipeline256_standard", &pipeline, cycles, 5);
    time_case("comb_chain256_zero_backward", &comb_chain, cycles, 3);
}
