//! Auto-speculation design-space exploration benchmark: the explorer's
//! Pareto fronts on the paper-class workloads, measured against the
//! hand-picked configurations of the commit-depth benchmark.
//!
//! Four sections back `BENCH_explore.json`:
//!
//! 1. **fig1a select loop** (predictable select, as in the paper's fig1
//!    evaluation): the explorer must find a speculated design whose
//!    *effective cycle time* (cycle time / tokens-per-cycle, the paper's
//!    figure of merit) beats the non-speculative baseline.
//! 2. **Feed-forward, biased consumer** (the PR-5 commit-depth workload):
//!    the explorer's grid includes the confidence-throttled scheduler, so
//!    its pick must match or beat the best hand-picked configuration
//!    (depth-2 last-taken) in throughput per unit area — asserted, not just
//!    reported.
//! 3. **Feed-forward, adversarial select** (unbiased random stream): the
//!    honest other side — speculation mostly loses here, and the front
//!    shows what survives.
//! 4. **Generated loop corpus**: explorer accounting (front/dominated/
//!    skipped/pruned) over a slice of `elastic-gen` loop-preset seeds.
//!
//! Run with `cargo run --release --example explore`; pass `--write` (or set
//! `ELASTIC_BENCH_WRITE=1`) to rewrite `BENCH_explore.json` in the repo
//! root.

use std::fmt::Write as _;

use elastic_core::kind::{DataStream, SchedulerKind};
use elastic_core::Netlist;
use elastic_explore::{explore, ExploreOptions, ExploreReport, ParetoPoint};
use elastic_gen::{generate, GenConfig};
use elastic_sim::scenarios::{build_fig1, Fig1Scenario, Fig1Variant};

/// The PR-5 feed-forward target, shared with the commit-depth benchmark:
/// bursty consumer (2 stalled of every 5 cycles), select stream as given.
fn feedforward(select: DataStream) -> Netlist {
    let (netlist, _, _) = elastic_suite::feedforward_mux_design(
        select,
        elastic_core::kind::BackpressurePattern::List(vec![true, true, false, false, false]),
    );
    netlist
}

fn feedforward_options() -> ExploreOptions {
    ExploreOptions {
        cycles: 8192,
        short_cycles: 512,
        environments: 1, // the declared environment — comparable to BENCH_commit_depth.json
        // Depth-4 commit lanes cost ~4.5x this tiny design's baseline area;
        // keep them in scope so the depth trade stays visible in the front.
        max_area_ratio: 6.0,
        ..ExploreOptions::default()
    }
}

fn json_point(out: &mut String, indent: &str, point: &ParetoPoint, comma: bool) {
    let comma = if comma { "," } else { "" };
    let _ = writeln!(
        out,
        "{indent}{{ \"config\": \"{}\", \"throughput_tokens_per_cycle\": {:.4}, \
         \"area_ge\": {:.1}, \"cycle_time\": {:.1}, \"effective_cycle_time\": {:.3}, \
         \"throughput_per_area\": {:.6} }}{comma}",
        point.config.label(),
        point.throughput,
        point.area,
        point.latency,
        point.effective_cycle_time(),
        point.throughput_per_area(),
    );
}

fn json_front(out: &mut String, report: &ExploreReport) {
    let _ = writeln!(
        out,
        "    \"baseline\": {{ \"throughput_tokens_per_cycle\": {:.4}, \"area_ge\": {:.1}, \
         \"cycle_time\": {:.1}, \"effective_cycle_time\": {:.3} }},",
        report.baseline.throughput,
        report.baseline.area,
        report.baseline.latency,
        report.baseline.latency / report.baseline.throughput,
    );
    let _ = writeln!(out, "    \"front\": [");
    for (index, point) in report.front.iter().enumerate() {
        json_point(out, "      ", point, index + 1 != report.front.len());
    }
    let _ = writeln!(out, "    ],");
    let counts = report.pruned.counts();
    let _ = writeln!(
        out,
        "    \"accounting\": {{ \"candidates\": {}, \"front\": {}, \"dominated\": {}, \
         \"skipped\": {}, \"pruned_area_bound\": {}, \"pruned_short_horizon\": {} }},",
        report.candidates_enumerated,
        report.front.len(),
        report.dominated.len(),
        report.skipped.len(),
        counts[0].1,
        counts[1].1,
    );
}

fn print_summary(label: &str, report: &ExploreReport) {
    println!("\n== {label} ==");
    println!(
        "baseline: {:.4} tok/cyc, {:.0} GE, cycle time {:.1}",
        report.baseline.throughput, report.baseline.area, report.baseline.latency
    );
    for note in &report.notes {
        println!("  {note}");
    }
    for point in &report.front {
        println!(
            "  front: {} -> {:.4} tok/cyc, {:.0} GE, ect {:.2}",
            point.config.label(),
            point.throughput,
            point.area,
            point.effective_cycle_time()
        );
    }
}

fn main() {
    let write = std::env::args().any(|arg| arg == "--write")
        || std::env::var("ELASTIC_BENCH_WRITE").is_ok_and(|v| v == "1");

    // 1. fig1a select loop, predictable select (the paper's fig1 workload).
    let handles = build_fig1(&Fig1Scenario {
        variant: Fig1Variant::NonSpeculative,
        taken_rate: 0.05,
        scheduler: SchedulerKind::LastTaken,
        cycles: 2048,
        seed: 42,
    });
    let fig1 = explore(
        &handles.netlist,
        &ExploreOptions {
            cycles: 2048,
            short_cycles: 256,
            environments: 1,
            ..ExploreOptions::default()
        },
    )
    .expect("fig1a explores");
    assert_eq!(fig1.accounted(), fig1.candidates_enumerated);
    let fig1_baseline_ect = fig1.baseline.latency / fig1.baseline.throughput;
    let fig1_best_ect =
        fig1.front.iter().map(ParetoPoint::effective_cycle_time).fold(f64::INFINITY, f64::min);
    assert!(
        fig1_best_ect < fig1_baseline_ect,
        "the explorer must beat the fig1a baseline on effective cycle time"
    );
    print_summary("fig1a select loop (taken rate 0.05)", &fig1);

    // 2. Feed-forward, biased consumer: explorer pick vs the hand-picked
    //    commit-depth configurations.
    let biased = feedforward(DataStream::List(vec![0, 0, 0, 0, 0, 0, 1, 0]));
    let biased_report = explore(&biased, &feedforward_options()).expect("biased explores");
    assert_eq!(biased_report.accounted(), biased_report.candidates_enumerated);
    let explorer_pick = biased_report.best_per_area().expect("non-empty front").clone();
    // The hand-picked PR-5 winner (depth-2, last-taken) is in the same
    // report's scored set — the explorer keeps dominated points visible.
    let hand_pick = biased_report
        .front
        .iter()
        .chain(biased_report.dominated.iter())
        .find(|p| p.config.commit_depth == 2 && p.config.scheduler == SchedulerKind::LastTaken)
        .expect("the hand-picked depth-2 last-taken config is scored")
        .clone();
    assert!(
        explorer_pick.throughput_per_area() >= hand_pick.throughput_per_area(),
        "the explorer pick ({}, {:.6}/GE) must match or beat the hand-picked config ({}, \
         {:.6}/GE)",
        explorer_pick.config.label(),
        explorer_pick.throughput_per_area(),
        hand_pick.config.label(),
        hand_pick.throughput_per_area(),
    );
    print_summary("feed-forward, biased select (PR-5 workload)", &biased_report);
    println!(
        "explorer pick {} @ {:.6} tok/cyc/GE vs hand-picked {} @ {:.6} tok/cyc/GE",
        explorer_pick.config.label(),
        explorer_pick.throughput_per_area(),
        hand_pick.config.label(),
        hand_pick.throughput_per_area(),
    );

    // 3. Feed-forward, adversarial select.
    let adversarial = feedforward(DataStream::Random { seed: 0xD1CE });
    let adversarial_report =
        explore(&adversarial, &feedforward_options()).expect("adversarial explores");
    assert_eq!(adversarial_report.accounted(), adversarial_report.candidates_enumerated);
    print_summary("feed-forward, adversarial random select", &adversarial_report);

    // 4. Generated loop corpus: accounting over a fixed seed slice.
    let loop_seeds: Vec<u64> = (0..4).map(|i| 0x5EED_0002_0000u64 + i).collect();
    let mut loops = Vec::new();
    for &seed in &loop_seeds {
        let generated = generate(seed, &GenConfig::loops());
        let report = explore(
            &generated.netlist,
            &ExploreOptions {
                cycles: 256,
                short_cycles: 64,
                environments: 2,
                seed,
                verify: false, // accounting slice; soundness is the harness stage's job
                ..ExploreOptions::default()
            },
        )
        .expect("generated loop design explores");
        assert_eq!(report.accounted(), report.candidates_enumerated);
        println!(
            "loop seed {seed:#x}: {} candidates, {} front, {} dominated, {} skipped, {} pruned",
            report.candidates_enumerated,
            report.front.len(),
            report.dominated.len(),
            report.skipped.len(),
            report.pruned.total(),
        );
        loops.push((seed, report));
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"explore\",\n");
    out.push_str(
        "  \"description\": \"Auto-speculation design-space exploration: the explorer \
         enumerates speculation candidates (site x commit depth x scheduler, including the \
         confidence-throttled policy), applies each via the atomic speculate pass, scores \
         steady-state throughput on the 64-lane engine against the cost model's area/cycle-time \
         estimate, and returns a battery-verified Pareto front. Measured with `cargo run \
         --release --example explore`. Sections: the fig1a select loop (taken rate 0.05), where \
         the front must beat the baseline on effective cycle time (cycle time per token, the \
         paper's figure of merit); the commit-depth benchmark's biased feed-forward workload, \
         where the explorer pick must match or beat the hand-picked depth-2 last-taken config \
         in throughput per area (both assertions run in the example itself); the adversarial \
         random-select variant; and an accounting slice over generated loop designs. \
         Environment count is 1 on the feed-forward sections so figures are directly \
         comparable to BENCH_commit_depth.json.\",\n",
    );
    out.push_str(
        "  \"hardware_note\": \"Container CPU; scores are simulated-cycle ratios, so only the \
         fronts and accounting matter, not wall-clock.\",\n",
    );

    out.push_str("  \"fig1a_select_loop\": {\n");
    json_front(&mut out, &fig1);
    let _ = writeln!(
        out,
        "    \"effective_cycle_time\": {{ \"baseline\": {:.3}, \"best_front\": {:.3}, \
         \"improvement\": {:.3} }}",
        fig1_baseline_ect,
        fig1_best_ect,
        fig1_baseline_ect / fig1_best_ect,
    );
    out.push_str("  },\n");

    out.push_str("  \"feedforward_biased\": {\n");
    json_front(&mut out, &biased_report);
    out.push_str("    \"explorer_pick\":\n");
    json_point(&mut out, "      ", &explorer_pick, true);
    out.push_str("    \"hand_picked_pr5\":\n");
    json_point(&mut out, "      ", &hand_pick, true);
    let _ = writeln!(
        out,
        "    \"explorer_beats_hand_pick_per_area\": {}",
        explorer_pick.throughput_per_area() >= hand_pick.throughput_per_area(),
    );
    out.push_str("  },\n");

    out.push_str("  \"feedforward_adversarial\": {\n");
    json_front(&mut out, &adversarial_report);
    let _ = writeln!(
        out,
        "    \"note\": \"unbiased random select: wrong-path work dominates, so the front is \
         where speculation earns (or fails to earn) its area here\""
    );
    out.push_str("  },\n");

    out.push_str("  \"generated_loops\": [\n");
    for (index, (seed, report)) in loops.iter().enumerate() {
        let comma = if index + 1 == loops.len() { "" } else { "," };
        let counts = report.pruned.counts();
        let _ = writeln!(
            out,
            "    {{ \"seed\": \"{seed:#x}\", \"candidates\": {}, \"front\": {}, \
             \"dominated\": {}, \"skipped\": {}, \"pruned_area_bound\": {}, \
             \"pruned_short_horizon\": {} }}{comma}",
            report.candidates_enumerated,
            report.front.len(),
            report.dominated.len(),
            report.skipped.len(),
            counts[0].1,
            counts[1].1,
        );
    }
    out.push_str("  ]\n");
    out.push_str("}\n");

    if write {
        std::fs::write("BENCH_explore.json", &out).expect("write BENCH_explore.json");
        println!("\nwrote BENCH_explore.json");
    } else {
        println!("\n(dry run; pass --write to rewrite BENCH_explore.json)");
    }
}
