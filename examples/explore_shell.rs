//! The interactive exploration workflow of the paper's Section 5, driven by a
//! command script: apply transformations step by step, inspect the design,
//! undo/redo, and emit Verilog/BLIF for the result.
//!
//! Run with `cargo run --example explore_shell`.

use elastic_core::library::{fig1a, Fig1Config};
use elastic_core::shell::ExplorationShell;
use elastic_hdl::{emit_blif, emit_verilog};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut shell = ExplorationShell::new(fig1a(&Fig1Config::default()).netlist);

    let script = "
        summary
        nodes
        shannon mux
        early-eval mux
        share mux last-taken
        summary
        validate
        undo
        undo
        undo
        summary
        speculate mux two-bit
        history
        summary
    ";
    println!("running exploration script:\n{script}");
    for (command, response) in
        script.lines().map(str::trim).filter(|line| !line.is_empty()).zip(shell.run_script(script)?)
    {
        println!("elastic> {command}");
        for line in response.lines() {
            println!("    {line}");
        }
    }

    // Export the final design the way the paper's toolkit does.
    let netlist = shell.into_netlist();
    let verilog = emit_verilog(&netlist);
    let blif = emit_blif(&netlist);
    println!(
        "\ngenerated Verilog ({} lines) and BLIF ({} lines);",
        verilog.lines().count(),
        blif.lines().count()
    );
    println!("first Verilog lines:\n");
    for line in verilog.lines().take(12) {
        println!("    {line}");
    }
    Ok(())
}
