//! Fault-injection campaign, runtime SELF monitors, and deadlock root-cause
//! diagnosis over the paper designs.
//!
//! Three demonstrations:
//!
//! 1. a seeded fault campaign against Figure 1(d) and Figure 7(b) — every
//!    injected fault ends *detected* by a named monitor with a
//!    `(channel, cycle, invariant)` locus, *trapped* fail-stop, or *provably
//!    masked* against the clean reference streams;
//! 2. transient stall-storm recovery — after a burst of environment
//!    back-pressure drains, the designs deliver the reference streams
//!    bit-identically;
//! 3. wait-for root-cause analysis of a seeded deadlock — the minimal
//!    blocking cycle, naming the channel each node is blocked on.
//!
//! Run with `cargo run --release --example fault_injection`.

use elastic_core::library::{fig1d, resilient_speculative, Fig1Config, ResilientConfig};
use elastic_core::{BufferSpec, ForkSpec, FunctionSpec, Netlist, Op, Port, SinkSpec, SourceSpec};
use elastic_gen::{run_fault_campaign, run_stall_storm_recovery, CampaignOptions};
use elastic_verify::liveness::{check_deadlock_freedom, LivenessOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designs = [
        ("fig1d", fig1d(&Fig1Config::default()).netlist),
        ("fig7b", resilient_speculative(&ResilientConfig::default()).netlist),
    ];
    let options = CampaignOptions { injections: 48, ..CampaignOptions::default() };

    println!("fault-injection campaign ({} injections per design)\n", options.injections);
    for (name, netlist) in &designs {
        let report = run_fault_campaign(netlist, 0xFA_0175, &options)?;
        println!("[{name}] {}", report.summary());
        if let Some(sample) = report.records.iter().find(|record| record.outcome.is_detected()) {
            println!("  e.g. injection #{}: {} -> {}", sample.index, sample.fault, sample.outcome);
        }
    }

    println!("\ntransient stall-storm recovery\n");
    for (name, netlist) in &designs {
        let report = run_stall_storm_recovery(netlist, 0x57_0231, &options)?;
        let masked = report.records.iter().filter(|record| record.outcome.is_masked()).count();
        println!(
            "[{name}] {masked}/{} storms drained with bit-identical sink streams",
            report.records.len()
        );
    }

    println!("\ndeadlock root-cause diagnosis\n");
    let verdict = check_deadlock_freedom(
        &token_free_loop(),
        &LivenessOptions { cycles: 80, progress_window: 32, ..LivenessOptions::default() },
    )?;
    assert!(!verdict.passed(), "the token-free loop must deadlock");
    for violation in &verdict.violations {
        println!("{violation}");
    }
    Ok(())
}

/// A loop that holds no token: structurally connected, permanently blocked.
fn token_free_loop() -> Netlist {
    let mut n = Netlist::new("token_free_loop");
    let eb = n.add_buffer("loop_eb", BufferSpec::bubble());
    let f = n.add_function("combine", FunctionSpec::with_inputs(Op::Add, 2));
    let src = n.add_source("src", SourceSpec::always());
    let fork = n.add_fork("fork", ForkSpec::eager(2));
    let sink = n.add_sink("sink", SinkSpec::always_ready());
    n.connect(Port::output(src, 0), Port::input(f, 0), 8).unwrap();
    n.connect(Port::output(eb, 0), Port::input(f, 1), 8).unwrap();
    n.connect(Port::output(f, 0), Port::input(fork, 0), 8).unwrap();
    n.connect(Port::output(fork, 0), Port::input(eb, 0), 8).unwrap();
    n.connect(Port::output(fork, 1), Port::input(sink, 0), 8).unwrap();
    n
}
