//! Tour of the `elastic-gen` fuzzing subsystem: generate a netlist, run the
//! differential gauntlet, speculate a generated loop, and shrink a planted
//! bug down to a runnable reproducer snippet.
//!
//! ```text
//! cargo run --release --example fuzz_explore [seed]
//! ```

use elastic_core::transform::{find_select_cycles, speculate, SpeculateOptions};
use elastic_core::{FunctionSpec, Netlist, NodeKind, Op, Port};
use elastic_gen::{
    generate, run_netlist, shrink_netlist, to_rust_snippet, GenConfig, HarnessOptions,
    ShrinkOptions,
};
use elastic_verify::transfer_equivalent;

fn main() {
    let seed =
        std::env::args().nth(1).and_then(|value| value.parse().ok()).unwrap_or(0x5EED_2026_0730u64);

    // 1. Generate a loop-bearing netlist and describe it.
    let generated = generate(seed, &GenConfig::loops());
    println!("seed {seed:#x}: {}", generated.netlist.summary());
    for &mux in &generated.profile.select_loop_muxes {
        let cycles = find_select_cycles(&generated.netlist, mux).unwrap();
        println!(
            "  loop mux {mux}: {} select cycle(s), shortest {} node(s)",
            cycles.len(),
            cycles.iter().map(Vec::len).min().unwrap_or(0)
        );
    }

    // 2. Run the differential gauntlet (engine oracle, transforms, liveness,
    //    conservation, scheduler/environment injection).
    let options = HarnessOptions::default();
    match run_netlist(&generated.netlist, seed, &options) {
        Ok(report) => {
            println!("gauntlet: PASS ({} transform(s) verified)", report.transforms.len());
            for name in &report.transforms {
                println!("  verified {name}");
            }
        }
        Err(failure) => println!("gauntlet: FAIL — {failure}"),
    }

    // 3. Speculate one generated loop and show the structural delta.
    if let Some(&mux) = generated.profile.select_loop_muxes.first() {
        let mut speculative = generated.netlist.clone();
        let report = speculate(&mut speculative, mux, &SpeculateOptions::default())
            .expect("generated loop muxes are speculation-eligible");
        println!(
            "speculated {mux}: shared module {}, {} recovery buffer(s); {}",
            report.shared_module,
            report.recovery_buffers.len(),
            speculative.summary()
        );
        let equivalence = transfer_equivalent(&generated.netlist, &speculative, 200).unwrap();
        println!("  transfer equivalence: {}", equivalence.verdict);
    }

    // 4. Plant a bug — an increment masquerading as a no-op wrapper on the
    //    first sink's channel — and shrink the netlist to the minimal design
    //    on which the bug is still observable.
    let caught = |netlist: &Netlist| -> bool {
        let mut sabotaged = netlist.clone();
        let Some(channel) = sabotaged
            .live_nodes()
            .find(|node| matches!(node.kind, NodeKind::Sink(_)))
            .and_then(|sink| sabotaged.channel_into(Port::input(sink.id, 0)))
            .map(|channel| (channel.id, channel.to, channel.width))
        else {
            return false;
        };
        let inc = sabotaged.add_function("planted_inc", FunctionSpec::with_inputs(Op::Inc, 1));
        sabotaged.set_channel_target(channel.0, Port::input(inc, 0)).unwrap();
        sabotaged.connect(Port::output(inc, 0), channel.1, channel.2).unwrap();
        match transfer_equivalent(netlist, &sabotaged, 128) {
            Ok(report) => !report.verdict.passed(),
            Err(_) => false,
        }
    };
    if caught(&generated.netlist) {
        let shrunk = shrink_netlist(&generated.netlist, caught, &ShrinkOptions { max_checks: 200 });
        println!(
            "planted bug shrunk from {} to {} node(s); reproducer:\n{}",
            generated.netlist.node_count(),
            shrunk.node_count(),
            to_rust_snippet(&shrunk)
        );
    } else {
        println!("planted bug was not observable on this seed (empty sink stream)");
    }
}
