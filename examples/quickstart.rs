//! Quickstart: build the Figure-1(a) loop, apply the paper's speculation
//! transformation, and compare the two designs by simulation and by the cost
//! model.
//!
//! Run with `cargo run --example quickstart`.

use elastic_analysis::{cost::CostModel, report::DesignPoint, DesignComparison};
use elastic_core::library::{fig1a, Fig1Config};
use elastic_core::transform::{speculate, SpeculateOptions};
use elastic_core::SchedulerKind;
use elastic_sim::{SimConfig, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the non-speculative design of Figure 1(a).
    let config = Fig1Config::default();
    let original = fig1a(&config);
    println!("original design : {}", original.netlist.summary());

    // 2. Apply the correct-by-construction speculation pass (Section 4 of the
    //    paper): Shannon decomposition + early evaluation + sharing.
    let mut speculative = original.netlist.clone();
    let report = speculate(
        &mut speculative,
        original.mux,
        &SpeculateOptions { scheduler: SchedulerKind::LastTaken, ..SpeculateOptions::default() },
    )?;
    println!("speculative     : {}", speculative.summary());
    println!(
        "speculation introduced shared module {} driven by the select cycle {:?}",
        report.shared_module, report.select_cycles[0]
    );

    // 3. Simulate both designs for 1000 cycles.
    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    let base_report = Simulation::new(&original.netlist, &quiet)?.run(1000)?;
    let spec_report = Simulation::new(&speculative, &quiet)?.run(1000)?;
    let sink = original.sink;
    println!("baseline throughput    : {:.3} tokens/cycle", base_report.throughput(sink));
    println!(
        "speculative throughput : {:.3} tokens/cycle ({} mispredictions)",
        spec_report
            .throughput(speculative.find_node("sink").map(|n| n.id).unwrap_or(sink))
            .max(spec_report.throughput(sink)),
        spec_report.total_mispredictions()
    );

    // 4. Compare cycle time, effective cycle time and area with the cost model.
    let model = CostModel::default();
    let mut comparison = DesignComparison::new();
    comparison.push(DesignPoint::with_throughput(
        "fig1a (baseline)",
        &original.netlist,
        &model,
        base_report.throughput(sink),
    ));
    comparison.push(DesignPoint::with_throughput(
        "fig1d (speculation)",
        &speculative,
        &model,
        spec_report.throughput(sink),
    ));
    println!("\n{}", comparison.render());
    Ok(())
}
