//! Section 5.2: SECDED-protected resilient accumulator — unprotected baseline
//! versus the non-speculative design of Figure 7(a) versus the speculative
//! design of Figure 7(b), swept over the soft-error rate.
//!
//! Run with `cargo run --example resilient_adder`.

use elastic_analysis::cost::CostModel;
use elastic_sim::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SECDED-protected accumulator (32-bit data, 39-bit codewords)\n");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>10}",
        "upset rate", "unprotected", "fig7a nonspec", "fig7b spec", "replays"
    );
    let mut clean = None;
    for upset_rate in [0.0, 0.01, 0.05, 0.1, 0.2] {
        let outcome = scenarios::run_resilient(upset_rate, 2000, 17)?;
        println!(
            "{:<12.2} {:>14.3} {:>14.3} {:>14.3} {:>10}",
            upset_rate,
            outcome.unprotected_throughput,
            outcome.nonspeculative_throughput,
            outcome.speculative_throughput,
            outcome.replays
        );
        if upset_rate == 0.0 {
            clean = Some(outcome);
        }
    }

    if let Some(outcome) = clean {
        let model = CostModel::default();
        let unprotected = model.netlist_area(&outcome.designs.unprotected.netlist).total();
        let nonspeculative = model.netlist_area(&outcome.designs.nonspeculative.netlist).total();
        let speculative = model.netlist_area(&outcome.designs.speculative.netlist).total();
        println!("\narea (gate equivalents):");
        println!("  unprotected baseline : {unprotected:>8.0}");
        println!(
            "  fig 7(a) non-spec    : {nonspeculative:>8.0} ({:+.1}% vs baseline)",
            (nonspeculative / unprotected - 1.0) * 100.0
        );
        println!(
            "  fig 7(b) speculative : {speculative:>8.0} ({:+.1}% vs baseline, paper: ~36% per stage)",
            (speculative / unprotected - 1.0) * 100.0
        );
        println!(
            "\nerror-free behaviour: speculative design loses {:.1}% throughput vs unprotected \
             (paper: no penalty); each detected error costs about one replay cycle.",
            (1.0 - outcome.speculative_throughput / outcome.unprotected_throughput) * 100.0
        );
    }
    Ok(())
}
