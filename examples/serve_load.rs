//! Load benchmark for the `elastic-serve` design service: latency and
//! throughput of the verify pipeline through the full service stack
//! (sharded queue, worker pool, retry/backoff, content-addressed cache).
//!
//! Three measurements back `BENCH_serve.json`:
//!
//! 1. **Cold vs cached latency.** A pool of distinct designs is submitted
//!    twice, sequentially, with a wait after each submission. The first
//!    pass pays the full pipeline; the second is served from the
//!    content-addressed cache. Reported: p50/p99 per pass, and the speedup.
//! 2. **Batch throughput, fault-free.** A duplicate-heavy batch is
//!    submitted at once and drained; reported as jobs/second together with
//!    the cache hit-rate and the degraded-completion count (the batch is
//!    sized to cross the service's degrade watermark, so the soft
//!    load-shedding tier shows up in the numbers).
//! 3. **Batch throughput under injected faults.** The same batch with the
//!    self-test injectors armed (worker panics, wedged attempts, stall
//!    storms): every job still completes — the reported overhead is the
//!    price of the retry/backoff/requeue machinery actually firing.
//!
//! Run with `cargo run --release --example serve_load` from the repo root;
//! it rewrites `BENCH_serve.json`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use elastic_serve::{JobSpec, PipelineKind, SelfTest, Service, ServiceConfig, ServiceStats};
use elastic_verify::exploration::ExplorationOptions;

const LATENCY_DESIGNS: u64 = 24;
const BATCH_JOBS: u64 = 200;
const BATCH_SEED_POOL: u64 = 40;

fn bench_config(self_test: SelfTest) -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        queue_capacity: BATCH_JOBS as usize,
        degrade_depth: BATCH_JOBS as usize / 3,
        case_deadline: Duration::from_secs(2),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        verify: ExplorationOptions {
            max_runs: 12,
            random_scheduler_runs: 2,
            cycles_per_run: 32,
            ..ExplorationOptions::default()
        },
        degraded_verify: ExplorationOptions {
            max_runs: 4,
            random_scheduler_runs: 1,
            cycles_per_run: 32,
            ..ExplorationOptions::default()
        },
        sweep_scenarios: 2,
        sweep_cycles: 48,
        journal_path: None,
        self_test,
        ..ServiceConfig::default()
    }
}

fn percentile(sorted: &[Duration], fraction: f64) -> f64 {
    let index = ((sorted.len() - 1) as f64 * fraction).round() as usize;
    sorted[index].as_secs_f64() * 1e6
}

/// Sequential submit+wait over the design pool; returns sorted latencies.
fn latency_pass(service: &Service, label: &str) -> Vec<Duration> {
    let mut latencies = Vec::new();
    for i in 0..LATENCY_DESIGNS {
        let spec = JobSpec::seeded(0x1a7e_0000 + i * 3, "small", PipelineKind::Verify);
        let start = Instant::now();
        let job = service.submit(spec);
        let outcome = service
            .wait(job, Duration::from_secs(60))
            .unwrap_or_else(|| panic!("{label} pass: job {job} timed out"));
        assert!(outcome.is_completed(), "{label} pass: job {job} must complete: {outcome:?}");
        latencies.push(start.elapsed());
    }
    latencies.sort_unstable();
    latencies
}

/// Submits the duplicate-heavy batch, drains it, and returns
/// (elapsed, stats).
fn batch_pass(service: &Service) -> (Duration, ServiceStats) {
    let start = Instant::now();
    for i in 0..BATCH_JOBS {
        let seed = 0xb47c_0000 + (i % BATCH_SEED_POOL) * 5;
        service.submit(JobSpec::seeded(seed, "small", PipelineKind::Verify));
    }
    assert!(service.drain(Duration::from_secs(600)), "batch must drain");
    (start.elapsed(), service.stats())
}

fn json_batch(out: &mut String, key: &str, elapsed: Duration, stats: &ServiceStats) {
    let secs = elapsed.as_secs_f64();
    let _ = writeln!(
        out,
        "  \"{key}\": {{ \"jobs\": {}, \"seconds\": {secs:.3}, \"jobs_per_sec\": {:.1}, \
         \"completed\": {}, \"cache_hits\": {}, \"degraded_completed\": {}, \"retries\": {}, \
         \"permanent_failures\": {}, \"shed\": {} }},",
        stats.submitted,
        stats.submitted as f64 / secs,
        stats.completed,
        stats.cache_hits,
        stats.degraded_completed,
        stats.retries,
        stats.permanent_failures,
        stats.shed,
    );
}

fn main() {
    // 1. Cold vs cached latency on a fault-free service.
    let service = Service::start(bench_config(SelfTest::default())).expect("start service");
    let cold = latency_pass(&service, "cold");
    let cached = latency_pass(&service, "cached");
    let hits = service.stats().cache_hits;
    assert!(
        hits >= LATENCY_DESIGNS,
        "second latency pass must be served from cache (hits: {hits})"
    );
    drop(service);
    println!(
        "latency: cold p50 {:.0}us p99 {:.0}us | cached p50 {:.0}us p99 {:.0}us",
        percentile(&cold, 0.5),
        percentile(&cold, 0.99),
        percentile(&cached, 0.5),
        percentile(&cached, 0.99),
    );

    // 2. Fault-free batch throughput.
    let service = Service::start(bench_config(SelfTest::default())).expect("start service");
    let (clean_elapsed, clean_stats) = batch_pass(&service);
    drop(service);
    println!(
        "batch fault-free: {} jobs in {:.2}s ({:.1} jobs/s, {} cache hits)",
        clean_stats.submitted,
        clean_elapsed.as_secs_f64(),
        clean_stats.submitted as f64 / clean_elapsed.as_secs_f64(),
        clean_stats.cache_hits,
    );

    // 3. The same batch with the fault injectors armed.
    let storm = SelfTest { panic_period: 13, wedge_period: 31, storm_period: 11 };
    let service = Service::start(bench_config(storm)).expect("start service");
    let (storm_elapsed, storm_stats) = batch_pass(&service);
    assert_eq!(
        storm_stats.completed + storm_stats.permanent_failures,
        BATCH_JOBS,
        "every job must reach a terminal outcome under injected faults"
    );
    drop(service);
    println!(
        "batch under faults: {} jobs in {:.2}s ({} retries absorbed, {} completed)",
        storm_stats.submitted,
        storm_elapsed.as_secs_f64(),
        storm_stats.retries,
        storm_stats.completed,
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"serve\",\n");
    out.push_str(
        "  \"description\": \"elastic-serve design-service load benchmark, measured with \
         `cargo run --release --example serve_load`. Latency is sequential submit+wait over 24 \
         distinct small-preset designs through the verify pipeline (liveness + bounded \
         exploration + back-pressure sweep): the cold pass pays the full pipeline, the cached \
         pass is served from the integrity-checked content-addressed cache keyed by the \
         canonical structural hash. Throughput is a 200-job duplicate-heavy batch (40-seed \
         pool) on 4 workers, fault-free versus with the self-test injectors armed (worker \
         panics every 13th job, wedged attempts every 31st, stall-storms every 11th); under \
         faults every job still reaches a terminal outcome through the retry/backoff/requeue \
         machinery, and the throughput gap is that machinery's price. The batch is sized past \
         the degrade watermark, so part of each batch completes in the flagged \
         reduced-coverage tier.\",\n",
    );
    out.push_str(
        "  \"hardware_note\": \"Container CPU; absolute latency and jobs/sec vary with the \
         host, the cold/cached and clean/faulted ratios are the signal.\",\n",
    );
    let _ = writeln!(
        out,
        "  \"latency_microseconds\": {{ \"designs\": {LATENCY_DESIGNS}, \
         \"cold_p50\": {:.0}, \"cold_p99\": {:.0}, \"cached_p50\": {:.0}, \
         \"cached_p99\": {:.0}, \"p50_speedup\": {:.1} }},",
        percentile(&cold, 0.5),
        percentile(&cold, 0.99),
        percentile(&cached, 0.5),
        percentile(&cached, 0.99),
        percentile(&cold, 0.5) / percentile(&cached, 0.5).max(f64::EPSILON),
    );
    json_batch(&mut out, "batch_fault_free", clean_elapsed, &clean_stats);
    json_batch(&mut out, "batch_injected_faults", storm_elapsed, &storm_stats);
    let _ = writeln!(
        out,
        "  \"fault_overhead_ratio\": {:.2}\n}}",
        storm_elapsed.as_secs_f64() / clean_elapsed.as_secs_f64()
    );
    std::fs::write("BENCH_serve.json", &out).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
