//! Trace memory and exploration-sweep throughput measurements.
//!
//! Two measurements back `BENCH_trace_mem.json`:
//!
//! 1. **Trace bytes per cycle** — the columnar bit-packed trace
//!    (4 bit-planes + sparse width-adaptive data columns) against the dense
//!    `Vec<ChannelState>`-per-cycle layout it replaced (16 bytes per channel
//!    per cycle), on the Figure-1(d) design and on a 256-stage pipeline.
//! 2. **`verify_cost` sweep throughput** — `explore_environments` (one
//!    simulation build per worker thread, `reset_with_sink_patterns` per
//!    combination) against the rebuild-per-run baseline it replaced
//!    (`netlist.clone()` + `Simulation::new` per combination), reproduced
//!    inline below, on the Figure-1(d) and Figure-7(b) designs.
//!
//! Run with `cargo run --release --example trace_mem`.

use std::time::Instant;

use elastic_core::kind::{BackpressurePattern, BufferSpec, SinkSpec, SourcePattern};
use elastic_core::library::{
    deep_pipeline, fig1d, resilient_speculative, Fig1Config, ResilientConfig,
};
use elastic_core::{Netlist, NodeKind};
use elastic_sim::sweep::parallel_map;
use elastic_sim::{SimConfig, Simulation};
use elastic_verify::exploration::{explore_environments, ExplorationOptions};
use elastic_verify::properties::{check_trace, ProtocolOptions};

fn trace_memory_case(name: &str, netlist: &Netlist, cycles: u64) {
    let mut sim = Simulation::new(netlist, &SimConfig::default()).unwrap();
    let report = sim.run(cycles).unwrap();
    let packed = report.trace_bytes_per_cycle();
    let dense = sim.trace().dense_bytes() as f64 / cycles as f64;
    println!(
        "{name:<22} {packed:>10.2} B/cycle packed {dense:>10.2} B/cycle dense  {:>6.1}x smaller",
        dense / packed
    );
}

/// The rebuild-per-run environment enumeration that `explore_environments`
/// replaced: clone the netlist, patch the sink and source specs, build a
/// fresh simulation — once per combination (same bit layout as the lane
/// sweep: sink stop bits first, then source withhold bits). Returns the
/// number of failing combinations (some designs legitimately fail under
/// adversarial environments; what matters here is that both paths agree).
fn explore_rebuild_baseline(netlist: &Netlist, options: &ExplorationOptions) -> usize {
    let sinks: Vec<_> = netlist
        .live_nodes()
        .filter(|n| matches!(n.kind, NodeKind::Sink(_)))
        .map(|n| n.id)
        .collect();
    let sources: Vec<_> = netlist
        .live_nodes()
        .filter(|n| matches!(n.kind, NodeKind::Source(_)))
        .map(|n| n.id)
        .collect();
    let endpoints = sinks.len() + sources.len();
    let combinations = 1usize << (options.pattern_depth * endpoints).min(20);
    let runs: Vec<usize> = (0..combinations.min(options.max_runs)).collect();
    let protocol = ProtocolOptions { check_liveness: false, ..ProtocolOptions::default() };
    let failures = parallel_map(&runs, |_, &combination| {
        let mut variant = netlist.clone();
        for (sink_index, sink) in sinks.iter().enumerate() {
            let mut pattern = Vec::with_capacity(options.pattern_depth);
            for cycle in 0..options.pattern_depth {
                let bit = sink_index * options.pattern_depth + cycle;
                pattern.push((combination >> bit) & 1 == 1);
            }
            if let Some(node) = variant.node_mut(*sink) {
                node.kind =
                    NodeKind::Sink(SinkSpec { backpressure: BackpressurePattern::List(pattern) });
            }
        }
        for (source_index, source) in sources.iter().enumerate() {
            let mut pattern = Vec::with_capacity(options.pattern_depth);
            for cycle in 0..options.pattern_depth {
                let bit = (sinks.len() + source_index) * options.pattern_depth + cycle;
                pattern.push((combination >> bit) & 1 == 0);
            }
            if let Some(node) = variant.node_mut(*source) {
                if let NodeKind::Source(spec) = &mut node.kind {
                    spec.pattern = SourcePattern::List(pattern);
                }
            }
        }
        let mut sim = Simulation::new(&variant, &SimConfig::default()).unwrap();
        sim.run(options.cycles_per_run).unwrap();
        check_trace(&variant, sim.trace(), &protocol).passed()
    });
    failures.into_iter().filter(|passed| !passed).count()
}

fn sweep_case(name: &str, netlist: &Netlist, options: &ExplorationOptions, repeats: u32) {
    let runs = {
        let endpoints = netlist
            .live_nodes()
            .filter(|n| matches!(n.kind, NodeKind::Sink(_) | NodeKind::Source(_)))
            .count();
        (1usize << (options.pattern_depth * endpoints).min(20)).min(options.max_runs)
    };
    let time = |work: &dyn Fn()| {
        work(); // warm-up
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let start = Instant::now();
            work();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    // Sanity: the reset path reports exactly the counterexamples the
    // rebuild-per-run path finds.
    let baseline_failures = explore_rebuild_baseline(netlist, options);
    let verdict = explore_environments(netlist, options).unwrap();
    assert_eq!(baseline_failures, verdict.violations.len(), "paths must agree on {name}");

    let rebuild = time(&|| {
        explore_rebuild_baseline(netlist, options);
    });
    let reset = time(&|| {
        explore_environments(netlist, options).unwrap();
    });
    println!(
        "{name:<22} {:>10.0} runs/s rebuild {:>10.0} runs/s reset  {:>6.2}x faster",
        runs as f64 / rebuild,
        runs as f64 / reset,
        rebuild / reset
    );
}

fn main() {
    let fig1 = fig1d(&Fig1Config::default());
    let fig7 = resilient_speculative(&ResilientConfig {
        data_width: 32,
        operands: (0..512).collect(),
        error_masks: vec![0],
    });
    let pipeline = deep_pipeline(256, BufferSpec::standard(0), BackpressurePattern::Never);

    println!("== trace memory (512 traced cycles) ==");
    trace_memory_case("fig1d", &fig1.netlist, 512);
    trace_memory_case("fig7b", &fig7.netlist, 512);
    trace_memory_case("pipeline256_standard", &pipeline, 512);

    println!("\n== environment-exploration sweep throughput ==");
    // The BENCH_trace_mem.json workload: a few hundred combinations of
    // 16-cycle bounded runs over each design's full sink + source space,
    // plus the 64-combination sweep over the 256-stage pipeline where the
    // per-run build cost the reset path eliminates is largest. Depths are
    // picked per design so both paths cover the identical full space.
    let fig1_options = ExplorationOptions {
        pattern_depth: 2, // 1 sink + 2 sources -> 64 combinations
        cycles_per_run: 16,
        max_runs: 256,
        random_scheduler_runs: 0,
        seed: 7,
    };
    sweep_case("fig1d", &fig1.netlist, &fig1_options, 5);
    let fig7_options = ExplorationOptions {
        pattern_depth: 4, // 1 sink + 1 source -> 256 combinations
        cycles_per_run: 16,
        max_runs: 256,
        random_scheduler_runs: 0,
        seed: 7,
    };
    sweep_case("fig7b", &fig7.netlist, &fig7_options, 3);
    let pipeline_options = ExplorationOptions {
        pattern_depth: 3, // 1 sink + 1 source -> 64 combinations
        cycles_per_run: 32,
        max_runs: 64,
        random_scheduler_runs: 0,
        seed: 7,
    };
    sweep_case("pipeline256_standard", &pipeline, &pipeline_options, 3);
}
