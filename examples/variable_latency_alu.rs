//! Section 5.1: the variable-latency ALU — stalling unit (Figure 6(a)) versus
//! speculation with replay (Figure 6(b)), swept over the approximation error
//! rate.
//!
//! Run with `cargo run --example variable_latency_alu`.

use elastic_analysis::cost::CostModel;
use elastic_analysis::timing;
use elastic_sim::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::default();
    println!("variable-latency ALU: stalling (fig 6a) vs speculative (fig 6b)\n");
    println!(
        "{:<12} {:>16} {:>18} {:>10}",
        "error rate", "stalling (tok/cy)", "speculative (tok/cy)", "replays"
    );
    let mut last = None;
    for error_rate in [0.0, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let outcome = scenarios::run_var_latency(error_rate, 2000, 13)?;
        println!(
            "{:<12.2} {:>16.3} {:>18.3} {:>10}",
            error_rate,
            outcome.stalling_throughput,
            outcome.speculative_throughput,
            outcome.replays
        );
        last = Some(outcome);
    }

    // Cycle time and area from the cost model (the paper reports a 9% better
    // effective cycle time for 12% extra area on its 65nm ALU pipeline).
    if let Some(outcome) = last {
        let stalling_timing = timing::analyze(&outcome.stalling.netlist, &model);
        let speculative_timing = timing::analyze(&outcome.speculative.netlist, &model);
        let stalling_area = model.netlist_area(&outcome.stalling.netlist).total();
        let speculative_area = model.netlist_area(&outcome.speculative.netlist).total();
        println!("\ncost model (logic levels / gate equivalents):");
        println!(
            "  stalling    : cycle time {:>5.1}, area {:>6.0}",
            stalling_timing.cycle_time, stalling_area
        );
        println!(
            "  speculative : cycle time {:>5.1}, area {:>6.0}",
            speculative_timing.cycle_time, speculative_area
        );
        println!(
            "  cycle-time improvement {:+.1}%, area overhead {:+.1}% (paper: ~9% / ~12%)",
            (1.0 - speculative_timing.cycle_time / stalling_timing.cycle_time) * 100.0,
            (speculative_area / stalling_area - 1.0) * 100.0
        );
    }
    Ok(())
}
