//! Depth-N commit lanes, end to end: every depth in 1..=4 must leave
//! feed-forward speculation behaviour-preserving under scheduler injection,
//! deep lanes must actually be *used* (the scheduler runs ahead when the
//! resolution point stalls in bursts), and select-loop speculation must stay
//! depth-independent (the stage is only inserted on feed-forward muxes).

use elastic_core::kind::{BackpressurePattern, DataStream};
use elastic_core::library::{fig1a, Fig1Config};
use elastic_core::transform::{speculate, SpeculateOptions};
use elastic_core::{Netlist, NodeKind, SchedulerKind};
use elastic_sim::{SimConfig, Simulation};
use elastic_suite::feedforward_mux_design;
use elastic_verify::battery::{check_transform_battery, BatteryOptions};
use elastic_verify::liveness::LivenessOptions;

/// A feed-forward mux pipeline whose consumer stalls in bursts — the shape
/// where a deeper commit stage lets the scheduler park several results ahead
/// of the resolution point (the shared builder pins the design the
/// commit-depth benchmark measures).
fn bursty_feedforward() -> (Netlist, elastic_core::NodeId) {
    let (n, mux, _sink) = feedforward_mux_design(
        DataStream::Random { seed: 0xD1CE },
        BackpressurePattern::List(vec![true, true, true, false, false]),
    );
    (n, mux)
}

fn speculated_at_depth(depth: u32, scheduler: SchedulerKind) -> Netlist {
    let (mut n, mux) = bursty_feedforward();
    let options = SpeculateOptions {
        scheduler,
        allow_acyclic: true,
        commit_depth: depth,
        // Keep the leads-to horizon short for adversarial static schedulers,
        // matching the fuzzing harness: a starved user is force-granted well
        // inside the checkers' liveness windows.
        starvation_limit: Some(8),
        ..SpeculateOptions::default()
    };
    let report = speculate(&mut n, mux, &options).unwrap();
    let commit = report.commit_stage.expect("feed-forward speculation inserts the stage");
    match &n.node(commit).unwrap().kind {
        NodeKind::Commit(spec) => assert_eq!(spec.depth, depth),
        other => panic!("expected a commit stage, found {}", other.kind_name()),
    }
    n
}

#[test]
fn every_depth_is_behaviour_preserving_under_scheduler_injection() {
    let (reference, _) = bursty_feedforward();
    let options = BatteryOptions {
        cycles: 256,
        liveness: LivenessOptions { cycles: 256, progress_window: 96, leads_to_horizon: 96 },
        check_protocol: true,
    };
    for depth in 1..=4 {
        for scheduler in [
            SchedulerKind::Static(0),
            SchedulerKind::Static(1),
            SchedulerKind::LastTaken,
            SchedulerKind::TwoBit,
        ] {
            let transformed = speculated_at_depth(depth, scheduler.clone());
            let verdict = check_transform_battery(&reference, &transformed, &options).unwrap();
            assert!(verdict.passed(), "depth {depth}, scheduler {scheduler:?}: {verdict}");
        }
    }
}

#[test]
fn deep_lanes_are_actually_used_when_the_consumer_stalls_in_bursts() {
    let mut peaks = Vec::new();
    for depth in [1u32, 2, 4] {
        let transformed = speculated_at_depth(depth, SchedulerKind::LastTaken);
        let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
        let report = Simulation::new(&transformed, &quiet).unwrap().run(2000).unwrap();
        let stats = report.commit_stats.values().next().expect("one commit stage");
        assert_eq!(stats.depth, depth);
        let peak = *stats.peak_occupancy_per_lane.iter().max().unwrap();
        assert!(
            peak <= u64::from(depth),
            "depth {depth}: occupancy {peak} exceeded the declared bound"
        );
        assert!(peak >= 1, "depth {depth}: the lanes never parked a result");
        peaks.push(peak);
    }
    assert!(
        peaks[1] > peaks[0] || peaks[2] > peaks[0],
        "deeper lanes never ran further ahead than depth 1: {peaks:?}"
    );
}

#[test]
fn select_loop_speculation_is_depth_independent() {
    // On a select loop the commit stage is skipped (the loop's own elastic
    // buffer decouples the speculation), so the depth option must have no
    // structural effect at all.
    let config = Fig1Config::default();
    let netlists: Vec<Netlist> = [1u32, 2, 4]
        .into_iter()
        .map(|depth| {
            let handles = fig1a(&config);
            let mut n = handles.netlist;
            let options = SpeculateOptions {
                scheduler: SchedulerKind::LastTaken,
                commit_depth: depth,
                ..SpeculateOptions::default()
            };
            let report = speculate(&mut n, handles.mux, &options).unwrap();
            assert!(report.commit_stage.is_none(), "loops skip the commit stage");
            n
        })
        .collect();
    assert_eq!(netlists[0], netlists[1]);
    assert_eq!(netlists[0], netlists[2]);
}
