//! End-to-end experiment shape checks: the qualitative results of the paper's
//! evaluation (Sections 2 and 5) must emerge from the simulator plus the cost
//! model. The benchmark harness regenerates the full tables; these tests pin
//! the *shape* (who wins, roughly by how much) so regressions are caught by
//! `cargo test`.

use elastic_analysis::{cost::CostModel, report::DesignPoint, DesignComparison};
use elastic_core::SchedulerKind;
use elastic_sim::scenarios::{self, Fig1Scenario, Fig1Variant};

#[test]
fn fig1_design_space_matches_the_papers_ranking() {
    let model = CostModel::default();
    let mut comparison = DesignComparison::new();
    for variant in Fig1Variant::all() {
        let outcome = scenarios::run_fig1(&Fig1Scenario {
            variant,
            taken_rate: 0.05,
            scheduler: SchedulerKind::LastTaken,
            cycles: 800,
            seed: 42,
        })
        .unwrap();
        comparison.push(DesignPoint::with_throughput(
            variant.label(),
            &outcome.handles.netlist,
            &model,
            outcome.throughput,
        ));
    }
    println!("{}", comparison.render());

    // Bubble insertion "brings no real gain": its effective cycle time is no
    // better than the baseline's.
    let bubble = comparison.effective_cycle_time_improvement("fig1b-bubble").unwrap();
    assert!(
        bubble <= 0.01,
        "bubble insertion must not improve the effective cycle time ({bubble})"
    );
    // Shannon decomposition is the performance-optimal design.
    let shannon = comparison.effective_cycle_time_improvement("fig1c-shannon").unwrap();
    assert!(
        shannon > 0.15,
        "Shannon decomposition must improve the effective cycle time ({shannon})"
    );
    // Speculation achieves a similar improvement …
    let speculation = comparison.effective_cycle_time_improvement("fig1d-speculation").unwrap();
    assert!(
        speculation > 0.05,
        "speculation must improve the effective cycle time ({speculation})"
    );
    assert!(
        speculation > shannon - 0.25,
        "with a highly accurate predictor speculation stays close to the Shannon bound          (speculation {speculation}, shannon {shannon})"
    );
    // … with less area than duplication.
    let shannon_area = comparison.area_overhead("fig1c-shannon").unwrap();
    let speculation_area = comparison.area_overhead("fig1d-speculation").unwrap();
    assert!(
        speculation_area < shannon_area,
        "sharing must cost less area than duplication ({speculation_area} vs {shannon_area})"
    );
}

#[test]
fn speculation_throughput_degrades_gracefully_with_prediction_accuracy() {
    // E5-accuracy: the benefit of speculation is proportional to prediction
    // accuracy; a strongly biased select stream keeps throughput near 1.
    let mut previous = f64::INFINITY;
    for taken_rate in [0.05, 0.25, 0.5] {
        let outcome = scenarios::run_fig1(&Fig1Scenario {
            variant: Fig1Variant::Speculation,
            taken_rate,
            scheduler: SchedulerKind::LastTaken,
            cycles: 600,
            seed: 9,
        })
        .unwrap();
        assert!(
            outcome.throughput <= previous + 0.02,
            "throughput must not increase as the select stream gets harder to predict"
        );
        previous = outcome.throughput;
    }
    assert!(
        previous > 0.4,
        "even an unpredictable select stream costs at most about one replay cycle per          misprediction with a self-correcting scheduler ({previous})"
    );
}

#[test]
fn variable_latency_speculation_beats_stalling_and_degrades_with_error_rate() {
    // E3-fig6: the speculative variable-latency unit matches the stalling one
    // at low error rates and only loses the replay cycles as errors increase.
    let low = scenarios::run_var_latency(0.05, 400, 21).unwrap();
    let high = scenarios::run_var_latency(0.5, 400, 21).unwrap();
    assert!(low.speculative_throughput >= low.stalling_throughput - 0.02);
    assert!(low.speculative_throughput > 0.9);
    assert!(high.speculative_throughput < low.speculative_throughput);
    assert!(high.replays > low.replays);

    // The area overhead of the speculative design is modest (the paper
    // reports 12% for its 8-bit ALU pipeline).
    let model = CostModel::default();
    let stalling_area = model.netlist_area(&low.stalling.netlist).total();
    let speculative_area = model.netlist_area(&low.speculative.netlist).total();
    let overhead = speculative_area / stalling_area - 1.0;
    assert!(
        overhead > 0.0 && overhead < 0.6,
        "speculation costs extra EBs and control but not a redesign (overhead {overhead:.2})"
    );
}

#[test]
fn resilient_speculation_is_free_when_error_free_and_costs_one_cycle_per_error() {
    // E4-fig7: error-free behaviour matches the unprotected accumulator; each
    // soft error costs a single replay cycle; the non-speculative design pays
    // the SECDED stage on every iteration.
    let clean = scenarios::run_resilient(0.0, 400, 33).unwrap();
    assert!(clean.unprotected_throughput > 0.95);
    assert!(
        (clean.speculative_throughput - clean.unprotected_throughput).abs() < 0.05,
        "no performance penalty during error-free behaviour: {} vs {}",
        clean.speculative_throughput,
        clean.unprotected_throughput
    );
    assert!(
        clean.nonspeculative_throughput < 0.6,
        "the non-speculative design pays the SECDED pipeline stage every cycle"
    );

    let noisy = scenarios::run_resilient(0.08, 400, 33).unwrap();
    assert!(noisy.replays > 0);
    let lost_cycles = (clean.speculative_throughput - noisy.speculative_throughput) * 400.0;
    assert!(
        lost_cycles < (noisy.replays as f64) * 2.5 + 20.0,
        "each detected error costs about one replay cycle (lost {lost_cycles:.0} cycles for {} replays)",
        noisy.replays
    );

    // Area: the protected stage costs extra (the paper reports 36% for the
    // SECDED adder stage); the speculative variant is larger than the
    // unprotected baseline but in the same ballpark as the non-speculative
    // protected design.
    let model = CostModel::default();
    let unprotected = model.netlist_area(&clean.designs.unprotected.netlist).total();
    let speculative = model.netlist_area(&clean.designs.speculative.netlist).total();
    let overhead = speculative / unprotected - 1.0;
    assert!(overhead > 0.1, "resilience is not free (overhead {overhead:.2})");
}

#[test]
fn zero_backward_buffers_remove_the_recovery_bottleneck() {
    // E6-ebs: with Lb=1 recovery buffers after the shared module the
    // anti-token needs an extra cycle to cancel the speculated token, which
    // shows up as lost throughput; the Lb=0 buffer of Figure 5 removes it.
    use elastic_core::library::{fig1a, Fig1Config};
    use elastic_core::transform::{speculate, SpeculateOptions};
    use elastic_core::BufferSpec;
    use elastic_sim::{SimConfig, Simulation};

    // A fully predictable select stream isolates the effect of the recovery
    // buffer's backward latency from prediction effects.
    let config = Fig1Config {
        src0_data: elastic_core::kind::DataStream::Const(0),
        src1_data: elastic_core::kind::DataStream::Const(0),
        scheduler: SchedulerKind::Static(0),
        ..Fig1Config::default()
    };
    let mut with_standard = fig1a(&config).netlist;
    let mux = fig1a(&config).mux;
    speculate(
        &mut with_standard,
        mux,
        &SpeculateOptions {
            scheduler: SchedulerKind::Static(0),
            recovery_buffer: Some(BufferSpec::standard(0)),
            ..SpeculateOptions::default()
        },
    )
    .unwrap();
    let mut with_zero_backward = fig1a(&config).netlist;
    speculate(
        &mut with_zero_backward,
        mux,
        &SpeculateOptions {
            scheduler: SchedulerKind::Static(0),
            recovery_buffer: Some(BufferSpec::zero_backward(0)),
            ..SpeculateOptions::default()
        },
    )
    .unwrap();

    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    let sink = |netlist: &elastic_core::Netlist| netlist.find_node("sink").unwrap().id;
    let standard_report = Simulation::new(&with_standard, &quiet).unwrap().run(400).unwrap();
    let zero_report = Simulation::new(&with_zero_backward, &quiet).unwrap().run(400).unwrap();
    let standard = standard_report.throughput(sink(&with_standard));
    let zero = zero_report.throughput(sink(&with_zero_backward));
    assert!(
        zero + 0.02 >= standard,
        "zero-backward-latency recovery buffers must not be slower: Lb=0 {zero} vs Lb=1 {standard}"
    );
    // The recovery buffer adds a pipeline stage to the select loop, so the
    // bound drops to 1/2 regardless of Lb; what matters is that the loop
    // keeps running and the Lb=0 variant is at least as fast.
    assert!(
        zero > 0.2,
        "the speculative loop keeps running with recovery buffers in place ({zero})"
    );
}
