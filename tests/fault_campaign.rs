//! The fault-injection campaign over the paper designs and the generated
//! presets: every seeded fault must be *detected* by a named runtime monitor
//! within a bounded window or *provably masked* (bit-identical reference
//! streams), and a seeded deadlock must come back with a wait-for-cycle
//! root-cause diagnosis naming the blocking channels.
//!
//! The per-design injection count defaults to a smoke-sized batch and scales
//! with the `ELASTIC_FAULT_INJECTIONS` environment variable for long runs:
//!
//! ```text
//! ELASTIC_FAULT_INJECTIONS=512 cargo test --release --test fault_campaign
//! ```

use elastic_core::library::{fig1d, resilient_speculative, Fig1Config, ResilientConfig};
use elastic_core::{BufferSpec, ForkSpec, FunctionSpec, Netlist, Op, Port, SinkSpec, SourceSpec};
use elastic_gen::{
    generate, run_fault_campaign, run_stall_storm_recovery, CampaignOptions, GenConfig,
};
use elastic_verify::liveness::{check_deadlock_freedom, LivenessOptions};

fn injections_per_design() -> usize {
    std::env::var("ELASTIC_FAULT_INJECTIONS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(16)
        .max(4)
}

/// Every fault class injected into the paper designs and one generated
/// netlist per preset is either detected with a `(channel, cycle,
/// invariant)` locus, trapped fail-stop, or provably masked — the campaign
/// itself fails the run otherwise, with the seeded reproducer.
#[test]
fn every_injected_fault_is_detected_or_provably_masked() {
    let injections = injections_per_design();
    let presets = [
        ("default", GenConfig::default(), 0x5EED_0000_0000u64),
        ("pipelines", GenConfig::pipelines(), 0x5EED_0001_0000),
        ("loops", GenConfig::loops(), 0x5EED_0002_0000),
        ("small", GenConfig::small(), 0x5EED_0003_0000),
    ];
    let mut designs: Vec<(String, Netlist)> = vec![
        ("fig1d".into(), fig1d(&Fig1Config::default()).netlist),
        ("fig7b".into(), resilient_speculative(&ResilientConfig::default()).netlist),
    ];
    for (name, config, base) in presets {
        designs.push((format!("gen-{name}"), generate(base + 7, &config).netlist));
    }

    let options = CampaignOptions { injections, ..CampaignOptions::default() };
    for (name, netlist) in &designs {
        let report = run_fault_campaign(netlist, 0xFA_0175 ^ injections as u64, &options)
            .unwrap_or_else(|failure| panic!("[{name}] {failure}"));
        assert_eq!(report.records.len(), injections, "[{name}] every injection classified");
        assert_eq!(
            report.detected() + report.trapped() + report.masked(),
            injections,
            "[{name}] the ledger is exhaustive: {}",
            report.summary()
        );
        // The ledger must not be trivial: across a whole campaign at least
        // one fault class must actually have been exercised non-vacuously.
        assert!(
            report.vacuous() < report.records.len(),
            "[{name}] every injection was vacuous: {}",
            report.summary()
        );
    }
}

/// The paper designs must *survive* transient stall storms: after the storm
/// drains, every sink has delivered the clean reference streams
/// bit-identically (`run_stall_storm_recovery` fails on any other outcome).
#[test]
fn paper_designs_survive_stall_storms_bit_identically() {
    let injections = injections_per_design();
    let options = CampaignOptions { injections, ..CampaignOptions::default() };
    for (name, netlist) in [
        ("fig1d", fig1d(&Fig1Config::default()).netlist),
        ("fig7b", resilient_speculative(&ResilientConfig::default()).netlist),
    ] {
        let report = run_stall_storm_recovery(&netlist, 0x57_0231, &options)
            .unwrap_or_else(|failure| panic!("[{name}] {failure}"));
        assert_eq!(report.records.len(), injections);
        assert!(
            report.records.iter().all(|record| record.outcome.is_masked()),
            "[{name}] a storm left a trace: {}",
            report.summary()
        );
    }
}

/// A seeded deadlock — a loop that can never fire because it holds no token
/// — is rejected with the wait-for root-cause analysis: the minimal blocking
/// cycle, naming the channels each node is blocked on.
#[test]
fn a_seeded_deadlock_yields_a_wait_for_cycle_diagnosis() {
    let mut n = Netlist::new("seeded_deadlock");
    let eb = n.add_buffer("loop_eb", BufferSpec::bubble());
    let f = n.add_function("combine", FunctionSpec::with_inputs(Op::Add, 2));
    let src = n.add_source("src", SourceSpec::always());
    let fork = n.add_fork("fork", ForkSpec::eager(2));
    let sink = n.add_sink("sink", SinkSpec::always_ready());
    n.connect(Port::output(src, 0), Port::input(f, 0), 8).unwrap();
    n.connect(Port::output(eb, 0), Port::input(f, 1), 8).unwrap();
    n.connect(Port::output(f, 0), Port::input(fork, 0), 8).unwrap();
    n.connect(Port::output(fork, 0), Port::input(eb, 0), 8).unwrap();
    n.connect(Port::output(fork, 1), Port::input(sink, 0), 8).unwrap();

    let verdict = check_deadlock_freedom(
        &n,
        &LivenessOptions { cycles: 80, progress_window: 32, ..LivenessOptions::default() },
    )
    .unwrap();
    assert!(!verdict.passed(), "the token-free loop deadlocks");
    let message = verdict.violations.join("; ");
    assert!(message.contains("wait-for analysis"), "diagnosis attached: {message}");
    assert!(message.contains("minimal blocking cycle"), "cyclic wait found: {message}");
    for name in ["loop_eb", "combine", "fork"] {
        assert!(message.contains(name), "the cycle names blocking node {name}: {message}");
    }
}
