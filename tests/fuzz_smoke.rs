//! The bounded differential fuzz smoke suite.
//!
//! Runs a fixed-seed batch of generated netlists through the full
//! `elastic-gen` gauntlet — engine differential against the FullSweep
//! oracle, transform equivalence, liveness, token conservation, scheduler
//! and environment injection — split across the generation-space presets.
//! The batch size defaults to 500 cases and scales with the
//! `ELASTIC_FUZZ_CASES` environment variable for long runs; setting
//! `ELASTIC_FUZZ_LANES` to a non-zero value arms the 64-lane bit-parallel
//! engine differential on every case (all broadcast lanes must match the
//! scalar trace bit-for-bit), setting `ELASTIC_FUZZ_COMPILED=1` arms
//! the compiled settle backend differential (the fused micro-op plan must
//! match the worklist engine bit-for-bit), and setting
//! `ELASTIC_FUZZ_EXPLORE=1` arms the explorer-soundness stage (the
//! design-space search runs on every case; every front config must re-apply
//! and pass the battery, and the report must be deterministic):
//!
//! ```text
//! ELASTIC_FUZZ_CASES=20000 ELASTIC_FUZZ_LANES=64 ELASTIC_FUZZ_COMPILED=1 \
//!     ELASTIC_FUZZ_EXPLORE=1 cargo test --release --test fuzz_smoke
//! ```
//!
//! On failure the offending case is shrunk to a minimal reproducer and the
//! test panics with a runnable Rust snippet rebuilding it — paste the
//! snippet into a unit test (or add the seed to `crates/gen/corpus/`) to
//! pin the regression.

use elastic_gen::{run_case, shrink_failure, GenConfig, HarnessOptions, ShrinkOptions};
use elastic_sim::sweep::parallel_map_with;

/// Per-worker scratch of the parallel sweep: counters aggregated after the
/// run (workers accumulate locally, no shared-state synchronization on the
/// hot path).
#[derive(Debug, Default, Clone, Copy)]
struct WorkerStats {
    cases: u64,
    transforms: u64,
    skips: u64,
}

fn fuzz_cases() -> usize {
    std::env::var("ELASTIC_FUZZ_CASES")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(500)
        .max(4)
}

/// `ELASTIC_FUZZ_LANES` set to a non-zero lane count arms the lane-engine
/// differential leg (the value is a switch, not a width — the engine is
/// always 64 lanes wide).
fn fuzz_lanes() -> bool {
    std::env::var("ELASTIC_FUZZ_LANES")
        .ok()
        .and_then(|value| value.parse::<usize>().ok())
        .is_some_and(|lanes| lanes > 0)
}

/// `ELASTIC_FUZZ_COMPILED` set to a non-zero value arms the compiled
/// settle backend differential leg on every case.
fn fuzz_compiled() -> bool {
    std::env::var("ELASTIC_FUZZ_COMPILED")
        .ok()
        .and_then(|value| value.parse::<usize>().ok())
        .is_some_and(|flag| flag > 0)
}

/// `ELASTIC_FUZZ_EXPLORE` set to a non-zero value arms the explorer
/// soundness stage on every case (four design-space searches per netlist —
/// the run itself plus the determinism and reproducibility replays — so the
/// leg also stretches the per-case watchdog).
fn fuzz_explore() -> bool {
    std::env::var("ELASTIC_FUZZ_EXPLORE")
        .ok()
        .and_then(|value| value.parse::<usize>().ok())
        .is_some_and(|flag| flag > 0)
}

#[test]
fn fuzz_smoke_differential_suite() {
    let total = fuzz_cases();
    let explore = fuzz_explore();
    let options = HarnessOptions {
        lane_differential: fuzz_lanes(),
        compiled_differential: fuzz_compiled(),
        explorer_soundness: explore,
        // The explorer leg runs the search four times per case on top of the
        // regular gauntlet; give such cases a proportionally longer leash.
        case_deadline: if explore {
            std::time::Duration::from_secs(120)
        } else {
            HarnessOptions::default().case_deadline
        },
        ..HarnessOptions::default()
    };
    // Split the budget across the generation-space presets; every preset
    // keeps a fixed seed base so a given ELASTIC_FUZZ_CASES value always
    // replays the same batch.
    let presets = [
        ("default", GenConfig::default(), 0x5EED_0000_0000u64),
        ("pipelines", GenConfig::pipelines(), 0x5EED_0001_0000),
        ("loops", GenConfig::loops(), 0x5EED_0002_0000),
        ("small", GenConfig::small(), 0x5EED_0003_0000),
    ];
    let per_preset = total.div_ceil(presets.len());

    for (name, config, base) in presets {
        let seeds: Vec<u64> = (0..per_preset as u64).map(|index| base + index).collect();
        // Per-worker scratch: each worker thread keeps its own counters (and
        // is where heavier reusable per-worker state — e.g. simulations kept
        // alive across same-netlist checks — rides in longer harness runs),
        // so the hot path shares nothing between threads.
        let failures: Vec<_> =
            parallel_map_with(&seeds, WorkerStats::default, |stats, _index, &seed| {
                stats.cases += 1;
                match run_case(seed, &config, &options) {
                    Ok(report) => {
                        stats.transforms += report.transforms.len() as u64;
                        stats.skips +=
                            report.notes.iter().filter(|note| note.starts_with("skipped ")).count()
                                as u64;
                        None
                    }
                    Err(failure) => Some(failure),
                }
            })
            .into_iter()
            .flatten()
            .collect();

        if let Some(failure) = failures.first() {
            let reproducer = shrink_failure(failure, &options, &ShrinkOptions { max_checks: 256 });
            // Long scheduled runs set ELASTIC_FUZZ_ARTIFACT_DIR so CI can
            // upload the shrunk reproducer as a build artifact instead of
            // leaving it buried in the log.
            if let Ok(dir) = std::env::var("ELASTIC_FUZZ_ARTIFACT_DIR") {
                let path = std::path::Path::new(&dir)
                    .join(format!("reproducer-{name}-{:016x}.rs", failure.seed));
                let body = format!(
                    "// fuzz preset `{name}`, seed {:#018x}\n// {failure}\n\n{}",
                    failure.seed, reproducer.snippet
                );
                if let Err(error) =
                    std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body))
                {
                    eprintln!("could not write reproducer artifact to {}: {error}", path.display());
                } else {
                    eprintln!("shrunk reproducer written to {}", path.display());
                }
            }
            panic!(
                "fuzz preset `{name}`: {} of {per_preset} cases failed.\nFirst failure: \
                 {failure}\nShrunk reproducer ({} nodes):\n{}",
                failures.len(),
                reproducer.netlist.node_count(),
                reproducer.snippet
            );
        }
    }
}

#[test]
fn fuzzed_transform_coverage_is_nontrivial() {
    // The smoke suite must actually exercise transforms — a batch where every
    // transform was skipped on preconditions would be a silent coverage
    // collapse. Checked on a small fixed slice so the assertion is cheap.
    let options = HarnessOptions::default();
    let config = GenConfig::loops();
    let mut transforms = 0usize;
    let mut speculations = 0usize;
    for seed in 0x5EED_0002_0000u64..0x5EED_0002_0010 {
        let report = run_case(seed, &config, &options).unwrap_or_else(|failure| {
            panic!("coverage slice must pass: {failure}");
        });
        speculations +=
            report.transforms.iter().filter(|name| name.starts_with("speculate")).count();
        transforms += report.transforms.len();
    }
    assert!(transforms >= 40, "only {transforms} transforms across 16 loop seeds");
    assert!(speculations >= 12, "only {speculations} speculations across 16 loop seeds");
}

#[test]
fn an_injected_broken_transform_is_caught_and_shrunk() {
    // Acceptance gate of the fuzzing subsystem: a transformation that
    // silently corrupts data — here, one that inserts an increment while
    // claiming bubble-equivalence — must be (a) detected by the equivalence
    // battery and (b) shrunk to a tiny, serializable reproducer.
    use elastic_core::transform::insert_buffer_on_channel;
    use elastic_core::{BufferSpec, FunctionSpec, Netlist, NodeKind, Op, Port};
    use elastic_gen::{generate, shrink_netlist, to_rust_snippet};
    use elastic_verify::transfer_equivalent;

    /// The sabotaged "bubble": a unit-capacity buffer plus a hidden `Inc`
    /// on the channel feeding the first sink.
    fn broken_bubble(netlist: &mut Netlist) -> bool {
        let Some(channel) = netlist
            .live_nodes()
            .find(|node| matches!(node.kind, NodeKind::Sink(_)))
            .and_then(|sink| netlist.channel_into(Port::input(sink.id, 0)))
            .map(|channel| channel.id)
        else {
            return false;
        };
        let width = netlist.channel(channel).map(|c| c.width).unwrap_or(8);
        let Ok(buffer) = insert_buffer_on_channel(netlist, channel, BufferSpec::bubble()) else {
            return false;
        };
        // Sneak an increment in behind the buffer.
        let out = netlist.channel_from(Port::output(buffer, 0)).map(|c| (c.id, c.to)).unwrap();
        let inc = netlist.add_function("not_a_bubble", FunctionSpec::with_inputs(Op::Inc, 1));
        netlist.set_channel_target(out.0, Port::input(inc, 0)).unwrap();
        netlist.connect(Port::output(inc, 0), out.1, width).unwrap();
        true
    }

    let caught = |netlist: &Netlist| -> bool {
        let mut transformed = netlist.clone();
        if !broken_bubble(&mut transformed) || transformed.validate().is_err() {
            return false;
        }
        match transfer_equivalent(netlist, &transformed, 128) {
            Ok(report) => !report.verdict.passed(),
            Err(_) => false,
        }
    };

    let generated = generate(0xB0B0_CAFE, &GenConfig::default());
    assert!(
        generated.netlist.node_count() >= 12,
        "the starting netlist must be non-trivial ({} nodes)",
        generated.netlist.node_count()
    );
    assert!(caught(&generated.netlist), "the broken transform must be detected on the full case");

    let shrunk = shrink_netlist(&generated.netlist, caught, &elastic_gen::ShrinkOptions::default());
    assert!(caught(&shrunk), "shrinking must preserve the failure");
    assert!(
        shrunk.node_count() <= 8,
        "the reproducer must shrink to at most 8 nodes, got {}:\n{}",
        shrunk.node_count(),
        to_rust_snippet(&shrunk)
    );
    let snippet = to_rust_snippet(&shrunk);
    assert!(snippet.contains("Netlist::new"));
    assert!(snippet.contains("n.validate().unwrap();"));
}
