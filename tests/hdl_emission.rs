//! HDL emission integration tests: every library design can be exported to
//! Verilog and BLIF, deterministically, with one instance per node.

use elastic_core::library::{
    fig1a, fig1d, resilient_speculative, table1, variable_latency_speculative, Fig1Config,
    ResilientConfig, VarLatencyConfig,
};
use elastic_hdl::{emit_blif, emit_verilog, primitive_library};

#[test]
fn every_flagship_design_exports_to_verilog_and_blif() {
    let designs = vec![
        ("fig1a", fig1a(&Fig1Config::default()).netlist),
        ("fig1d", fig1d(&Fig1Config::default()).netlist),
        ("table1", table1().netlist),
        ("fig6b", variable_latency_speculative(&VarLatencyConfig::default()).netlist),
        ("fig7b", resilient_speculative(&ResilientConfig::default()).netlist),
    ];
    for (name, netlist) in designs {
        let verilog = emit_verilog(&netlist);
        assert!(verilog.contains("module"), "{name}: missing module header");
        assert!(verilog.contains("endmodule"), "{name}: missing endmodule");
        assert_eq!(
            verilog.matches("  elastic_").count(),
            netlist.node_count(),
            "{name}: one instance per node"
        );
        let blif = emit_blif(&netlist);
        assert_eq!(
            blif.matches(".subckt").count(),
            netlist.node_count(),
            "{name}: one subckt per node"
        );
        // Emission is deterministic.
        assert_eq!(verilog, emit_verilog(&netlist), "{name}: verilog emission must be stable");
        assert_eq!(blif, emit_blif(&netlist), "{name}: blif emission must be stable");
    }
}

#[test]
fn speculative_designs_reference_the_speculation_primitives() {
    let verilog = emit_verilog(&fig1d(&Fig1Config::default()).netlist);
    assert!(verilog.contains("elastic_shared"));
    assert!(verilog.contains("elastic_mux_early"));
    assert!(verilog.contains("scheduler"));
    let library = primitive_library();
    assert!(library.contains("elastic_eb_lb0"));
}

/// Minimal structural parse of an emitted Verilog module: instance count and
/// the set of channel wire bundles (one `_vp` wire per channel).
fn parse_verilog_structure(verilog: &str) -> (usize, usize) {
    let instances = verilog.matches("  elastic_").count();
    let wire_bundles = verilog
        .lines()
        .filter(|line| line.trim_start().starts_with("wire ") && line.contains("_vp"))
        .count();
    (instances, wire_bundles)
}

/// Minimal structural parse of an emitted BLIF model: subckt count and the
/// set of distinct `_vp` nets referenced by the pin connections.
fn parse_blif_structure(blif: &str) -> (usize, usize) {
    let subckts = blif.matches(".subckt").count();
    let mut nets = std::collections::BTreeSet::new();
    for line in blif.lines().filter(|line| line.starts_with(".subckt")) {
        for pin in line.split_whitespace() {
            if let Some((_, net)) = pin.split_once('=') {
                if net.ends_with("_vp") {
                    nets.insert(net.to_string());
                }
            }
        }
    }
    (subckts, nets.len())
}

#[test]
fn generated_netlists_emit_parseable_verilog_and_blif() {
    // Fuzz the emitters: every generated netlist (loops, shared modules,
    // variable-latency units, mixed widths included) must emit without
    // panicking, and the emitted text must parse back to the generating
    // netlist's node and channel counts.
    use elastic_gen::{generate, GenConfig};

    for (config, seeds) in [
        (GenConfig::default(), 0..25u64),
        (GenConfig::loops(), 100..125),
        (GenConfig::pipelines(), 200..225),
    ] {
        for seed in seeds {
            let generated = generate(seed, &config);
            let netlist = &generated.netlist;

            let verilog = emit_verilog(netlist);
            let (instances, wire_bundles) = parse_verilog_structure(&verilog);
            assert_eq!(instances, netlist.node_count(), "seed {seed}: verilog instance count");
            assert_eq!(
                wire_bundles,
                netlist.channel_count(),
                "seed {seed}: one wire bundle per channel"
            );
            assert!(verilog.ends_with("endmodule\n"), "seed {seed}: well-terminated module");

            let blif = emit_blif(netlist);
            let (subckts, nets) = parse_blif_structure(&blif);
            assert_eq!(subckts, netlist.node_count(), "seed {seed}: blif subckt count");
            assert_eq!(
                nets,
                netlist.channel_count(),
                "seed {seed}: every channel contributes one V+ net"
            );
            assert!(blif.trim_end().ends_with(".end"), "seed {seed}: well-terminated model");

            assert_eq!(verilog, emit_verilog(netlist), "seed {seed}: verilog determinism");
            assert_eq!(blif, emit_blif(netlist), "seed {seed}: blif determinism");
        }
    }
}

#[test]
fn transformed_generated_netlists_still_emit_cleanly() {
    // Speculation rewrites the netlist heavily (shared module, early mux,
    // possibly recovery/isolation buffers); the emitters must keep up on
    // generated — not just library — designs.
    use elastic_core::transform::{find_select_cycles, speculate, SpeculateOptions};
    use elastic_gen::{generate, GenConfig};

    let mut speculated = 0;
    for seed in 0..15u64 {
        let generated = generate(seed, &GenConfig::loops());
        let mut netlist = generated.netlist.clone();
        for &mux in &generated.profile.select_loop_muxes {
            if find_select_cycles(&netlist, mux).map(|c| c.is_empty()).unwrap_or(true) {
                continue;
            }
            if speculate(&mut netlist, mux, &SpeculateOptions::default()).is_ok() {
                speculated += 1;
            }
        }
        let verilog = emit_verilog(&netlist);
        let (instances, wire_bundles) = parse_verilog_structure(&verilog);
        assert_eq!(instances, netlist.node_count(), "seed {seed}");
        assert_eq!(wire_bundles, netlist.channel_count(), "seed {seed}");
        let (subckts, nets) = parse_blif_structure(&emit_blif(&netlist));
        assert_eq!(subckts, netlist.node_count(), "seed {seed}");
        assert_eq!(nets, netlist.channel_count(), "seed {seed}");
    }
    assert!(speculated >= 10, "only {speculated} speculations across 15 loop seeds");
}

#[test]
fn transformations_only_change_the_affected_instances() {
    // Speculation rewires the F block into a shared module but leaves the
    // loop buffer, the fork, G and the environments untouched in the netlist
    // text.
    let before = emit_verilog(&fig1a(&Fig1Config::default()).netlist);
    let after = emit_verilog(&fig1d(&Fig1Config::default()).netlist);
    for instance in ["eb (", "fork (", "g (", "src0 (", "src1 (", "sink ("] {
        assert!(before.contains(instance), "baseline must instantiate {instance}");
        assert!(after.contains(instance), "speculative design must keep {instance}");
    }
    assert!(!after.contains(" f ("), "the original F block is gone after sharing");
}
