//! HDL emission integration tests: every library design can be exported to
//! Verilog and BLIF, deterministically, with one instance per node.

use elastic_core::library::{
    fig1a, fig1d, resilient_speculative, table1, variable_latency_speculative, Fig1Config,
    ResilientConfig, VarLatencyConfig,
};
use elastic_hdl::{emit_blif, emit_verilog, primitive_library};

#[test]
fn every_flagship_design_exports_to_verilog_and_blif() {
    let designs = vec![
        ("fig1a", fig1a(&Fig1Config::default()).netlist),
        ("fig1d", fig1d(&Fig1Config::default()).netlist),
        ("table1", table1().netlist),
        ("fig6b", variable_latency_speculative(&VarLatencyConfig::default()).netlist),
        ("fig7b", resilient_speculative(&ResilientConfig::default()).netlist),
    ];
    for (name, netlist) in designs {
        let verilog = emit_verilog(&netlist);
        assert!(verilog.contains("module"), "{name}: missing module header");
        assert!(verilog.contains("endmodule"), "{name}: missing endmodule");
        assert_eq!(
            verilog.matches("  elastic_").count(),
            netlist.node_count(),
            "{name}: one instance per node"
        );
        let blif = emit_blif(&netlist);
        assert_eq!(
            blif.matches(".subckt").count(),
            netlist.node_count(),
            "{name}: one subckt per node"
        );
        // Emission is deterministic.
        assert_eq!(verilog, emit_verilog(&netlist), "{name}: verilog emission must be stable");
        assert_eq!(blif, emit_blif(&netlist), "{name}: blif emission must be stable");
    }
}

#[test]
fn speculative_designs_reference_the_speculation_primitives() {
    let verilog = emit_verilog(&fig1d(&Fig1Config::default()).netlist);
    assert!(verilog.contains("elastic_shared"));
    assert!(verilog.contains("elastic_mux_early"));
    assert!(verilog.contains("scheduler"));
    let library = primitive_library();
    assert!(library.contains("elastic_eb_lb0"));
}

#[test]
fn transformations_only_change_the_affected_instances() {
    // Speculation rewires the F block into a shared module but leaves the
    // loop buffer, the fork, G and the environments untouched in the netlist
    // text.
    let before = emit_verilog(&fig1a(&Fig1Config::default()).netlist);
    let after = emit_verilog(&fig1d(&Fig1Config::default()).netlist);
    for instance in ["eb (", "fork (", "g (", "src0 (", "src1 (", "sink ("] {
        assert!(before.contains(instance), "baseline must instantiate {instance}");
        assert!(after.contains(instance), "speculative design must keep {instance}");
    }
    assert!(!after.contains(" f ("), "the original F block is gone after sharing");
}
