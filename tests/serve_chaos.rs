//! Chaos acceptance campaign for the design service: a large mixed job
//! batch with the self-test fault injectors armed (worker panics, wedged
//! attempts that blow the case deadline, genuine stall-storms), workers
//! killed mid-run, and a cold restart mid-campaign.
//!
//! The acceptance bar, from the service's contract:
//!
//! * every job reaches exactly one allowed outcome — completed (possibly
//!   retried first, possibly from cache, possibly degraded-and-flagged) or
//!   failed-permanent with a reason (liveness refusals ship a wait-graph
//!   diagnosis);
//! * **zero jobs lost** — journal replay shows no pending work after a
//!   drained shutdown, and no rejected (corrupt) lines;
//! * the result cache passes a checksum audit;
//! * a cold restart replays the journal and resumes only the unfinished
//!   jobs, never redoing work the journal saw complete.
//!
//! The batch defaults to 160 jobs and scales with `ELASTIC_SERVE_JOBS`
//! (CI runs 500 in release).

use std::path::PathBuf;
use std::time::Duration;

use elastic_gen::HarnessOptions;
use elastic_serve::{JobOutcome, JobSpec, PipelineKind, SelfTest, Service, ServiceConfig};
use elastic_verify::exploration::ExplorationOptions;

fn chaos_jobs() -> u64 {
    std::env::var("ELASTIC_SERVE_JOBS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(160)
        .max(40)
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("elastic-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.journal", std::process::id()))
}

/// Cheap pipeline settings so the campaign's cost is dominated by the job
/// *count*, not by per-job depth. The case deadline stays comfortably above
/// an honest job's runtime — only the self-test wedge is meant to blow it.
fn chaos_config(jobs: u64, journal: Option<PathBuf>, self_test: SelfTest) -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        queue_shards: 4,
        queue_capacity: jobs as usize,
        degrade_depth: (jobs as usize / 3).max(1),
        retry_budget: 3,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        case_deadline: Duration::from_secs(2),
        harness: HarnessOptions {
            cycles: 96,
            environment_variations: 1,
            structural_environment_variations: 1,
            max_structural_transforms: 2,
            max_commit_depth: 2,
            ..HarnessOptions::default()
        },
        verify: ExplorationOptions {
            max_runs: 12,
            random_scheduler_runs: 2,
            cycles_per_run: 32,
            ..ExplorationOptions::default()
        },
        degraded_verify: ExplorationOptions {
            max_runs: 4,
            random_scheduler_runs: 1,
            cycles_per_run: 32,
            ..ExplorationOptions::default()
        },
        sweep_scenarios: 2,
        sweep_cycles: 48,
        journal_path: journal,
        self_test,
        ..ServiceConfig::default()
    }
}

fn chaos_spec(index: u64, seed_pool: u64) -> JobSpec {
    // A seed pool a quarter the size of the batch keeps the duplicate
    // pressure high; every fifth job takes the (heavier) gauntlet pipeline.
    let seed = 0xc4a05 + (index % seed_pool) * 3;
    let pipeline =
        if index.is_multiple_of(5) { PipelineKind::Gauntlet } else { PipelineKind::Verify };
    JobSpec::seeded(seed, "small", pipeline)
}

#[test]
fn chaos_storm_every_job_is_accounted_for() {
    let jobs = chaos_jobs();
    let journal = temp_journal("chaos");
    let _ = std::fs::remove_file(&journal);
    // Fault periods are co-prime so the panic/wedge/storm injections spread
    // across both pipelines and across the duplicate groups.
    let self_test = SelfTest { panic_period: 13, wedge_period: 17, storm_period: 11 };
    let service = Service::start(chaos_config(jobs, Some(journal.clone()), self_test)).unwrap();

    let seed_pool = (jobs / 4).max(8);
    let mut ids = Vec::new();
    for index in 0..jobs {
        ids.push(service.submit(chaos_spec(index, seed_pool)));
        // Three worker kills while the backlog is deep.
        if index == jobs / 4 {
            assert!(service.kill_worker(0));
        } else if index == jobs / 2 {
            assert!(service.kill_worker(1));
        } else if index == jobs * 3 / 4 {
            assert!(service.kill_worker(2));
        }
    }

    assert!(service.drain(Duration::from_secs(600)), "chaos batch must drain");

    let mut completed = 0u64;
    let mut retried_then_succeeded = 0u64;
    let mut cache_hits = 0u64;
    let mut degraded_flagged = 0u64;
    let mut failed_permanent = 0u64;
    for &id in &ids {
        match service.outcome(id).expect("drained service has every outcome") {
            JobOutcome::Completed { report, cache_hit, attempts } => {
                completed += 1;
                if cache_hit {
                    cache_hits += 1;
                }
                if attempts > 1 {
                    retried_then_succeeded += 1;
                }
                if report.degraded {
                    degraded_flagged += 1;
                    assert!(!report.exhaustive, "degraded results must not claim exhaustiveness");
                }
            }
            JobOutcome::FailedPermanent { reason, diagnosis, .. } => {
                failed_permanent += 1;
                assert!(!reason.is_empty(), "permanent failures must carry a reason");
                if reason.contains("liveness refuted") {
                    assert!(
                        diagnosis.is_some(),
                        "liveness refusals must ship a wait-graph diagnosis: {reason}"
                    );
                }
            }
            JobOutcome::Shed => {
                panic!("queue capacity equals the batch size; job {id} must not be shed")
            }
        }
    }
    assert_eq!(completed + failed_permanent, jobs, "exactly one outcome per job");

    let stats = service.stats();
    assert_eq!(stats.submitted, jobs);
    assert_eq!(stats.shed, 0);
    assert!(
        retried_then_succeeded > 0 && stats.retries > 0,
        "the armed fault injectors guarantee retry traffic: {stats:?}"
    );
    assert!(cache_hits > 0, "the duplicate-heavy pool must produce cache hits: {stats:?}");
    assert!(
        degraded_flagged > 0,
        "a batch submitted faster than it drains must cross the degrade watermark: {stats:?}"
    );
    // At least one kill must land as a detected mid-job death. (Not all
    // three are guaranteed: a doomed worker that spends the rest of the
    // campaign wedged or starved never registers another job, so its kill
    // flag is legitimately never consumed. The exact-count accounting is
    // pinned in `serve_smoke.rs`.)
    assert!(stats.worker_deaths >= 1, "at least one kill must be detected: {stats:?}");

    let audit = service.cache().audit();
    assert_eq!(audit.corrupted, 0, "the checksum audit must come back clean");

    let final_stats = service.shutdown();
    let recovery = elastic_serve::replay(&journal).unwrap();
    assert_eq!(recovery.rejected_lines, 0, "no torn or corrupt journal lines");
    assert_eq!(recovery.lost_inline, 0);
    assert!(recovery.pending.is_empty(), "zero jobs lost: {:?}", recovery.pending);
    assert_eq!(
        recovery.completed.len() as u64,
        final_stats.completed + final_stats.permanent_failures,
        "one terminal journal record per accepted job"
    );
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn cold_restart_resumes_pending_work_without_redoing_completed_work() {
    let jobs = 60u64;
    let journal = temp_journal("restart");
    let _ = std::fs::remove_file(&journal);
    let seed_pool = jobs / 3;

    // Phase 1: submit the batch, let roughly a third finish, then crash.
    let service =
        Service::start(chaos_config(jobs, Some(journal.clone()), SelfTest::default())).unwrap();
    for index in 0..jobs {
        service.submit(chaos_spec(index, seed_pool));
    }
    let progress_deadline = std::time::Instant::now() + Duration::from_secs(300);
    loop {
        let stats = service.stats();
        if stats.completed + stats.permanent_failures >= jobs / 3 {
            break;
        }
        assert!(
            std::time::Instant::now() < progress_deadline,
            "the service must make progress before the simulated crash"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    service.halt(); // simulated crash: backlog abandoned, no farewell records

    // Phase 2: replay the journal and resume on a fresh service.
    let recovery = Service::recover(&journal).unwrap();
    assert_eq!(recovery.rejected_lines, 0, "the torn-tail guard keeps the prefix intact");
    assert!(
        !recovery.completed.is_empty() && !recovery.pending.is_empty(),
        "the crash must land mid-campaign (completed {}, pending {})",
        recovery.completed.len(),
        recovery.pending.len()
    );

    let resumed_service =
        Service::start(chaos_config(jobs, Some(journal.clone()), SelfTest::default())).unwrap();
    let resumed = resumed_service.resume(&recovery);

    // `resume` must resubmit exactly the pending jobs whose design+pipeline
    // the journal did NOT already see complete (at either fidelity) — the
    // skip set is recomputed here independently through the public key API.
    let completed: std::collections::HashSet<(u64, u64)> =
        recovery.completed.iter().copied().collect();
    let expected: Vec<u64> = recovery
        .pending
        .iter()
        .filter(|pending| {
            let kind = PipelineKind::from_name(&pending.kind).unwrap();
            let spec = JobSpec::seeded(pending.seed, &pending.preset, kind);
            ![false, true].iter().any(|&degraded| {
                let key = resumed_service.cache_key(&spec, degraded).unwrap();
                completed.contains(&(key.structural, key.pipeline))
            })
        })
        .map(|pending| pending.job)
        .collect();
    let resumed_old_ids: Vec<u64> = resumed.iter().map(|&(old, _)| old).collect();
    assert_eq!(resumed_old_ids, expected, "resume must skip exactly the already-completed designs");
    for &(old, new) in &resumed {
        assert!(
            new >= recovery.next_job_id,
            "resumed job {old} reused journalled id {new} (next fresh id {})",
            recovery.next_job_id
        );
    }

    // Phase 3: drain the resumed work; the journal must now close the book.
    assert!(resumed_service.drain(Duration::from_secs(600)), "resumed backlog must drain");
    for &(old, new) in &resumed {
        let outcome = resumed_service.outcome(new).unwrap();
        assert!(
            !matches!(outcome, JobOutcome::Shed),
            "recovered job {old} must be processed, not shed"
        );
    }
    let final_stats = resumed_service.shutdown();
    assert_eq!(final_stats.submitted, resumed.len() as u64);

    let closing = elastic_serve::replay(&journal).unwrap();
    assert_eq!(closing.rejected_lines, 0);
    if !closing.pending.is_empty() {
        let text = std::fs::read_to_string(&journal).unwrap();
        for pending in &closing.pending {
            let needle = format!(" {} ", pending.job);
            for line in text.lines().filter(|l| l.contains(&needle)) {
                eprintln!("journal line for leaked job {}: {line}", pending.job);
            }
        }
        panic!("no pending work may survive the resumed drain: {:?}", closing.pending);
    }
    // Every recovered pending entry ends with exactly one completed record:
    // skipped entries are closed from history, resubmitted ones complete
    // under their new id (the old id's `resumed` marker counts for neither).
    assert_eq!(
        closing.completed.len(),
        recovery.completed.len() + recovery.pending.len(),
        "the resumed run must close the book on every recovered job"
    );
    std::fs::remove_file(&journal).unwrap();
}
