//! Service smoke test: a duplicate-heavy job mix through a small worker
//! pool, with one worker killed mid-run and a cache entry corrupted on
//! purpose. Asserts the headline guarantees cheaply (the heavyweight storm
//! of faults lives in `serve_chaos.rs`):
//!
//! * every submitted job reaches an outcome — journal replay confirms zero
//!   lost and zero left pending;
//! * duplicates are served from the content-addressed cache;
//! * the killed worker's job is recovered (requeued, retried, completed);
//! * a corrupted cache entry is detected, evicted and recomputed — never
//!   served;
//! * the final cache audit is clean.

use std::path::PathBuf;
use std::time::Duration;

use elastic_serve::{JobOutcome, JobSpec, PipelineKind, Service, ServiceConfig};
use elastic_verify::exploration::ExplorationOptions;

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("elastic-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.journal", std::process::id()))
}

fn smoke_config(journal: PathBuf) -> ServiceConfig {
    ServiceConfig {
        workers: 3,
        queue_capacity: 128,
        degrade_depth: 128,
        case_deadline: Duration::from_secs(30),
        verify: ExplorationOptions {
            max_runs: 16,
            random_scheduler_runs: 2,
            cycles_per_run: 32,
            ..ExplorationOptions::default()
        },
        sweep_scenarios: 2,
        sweep_cycles: 48,
        journal_path: Some(journal),
        ..ServiceConfig::default()
    }
}

#[test]
fn duplicate_heavy_mix_with_a_worker_kill_loses_nothing() {
    let journal = temp_journal("smoke");
    let _ = std::fs::remove_file(&journal);
    let service = Service::start(smoke_config(journal.clone())).unwrap();

    // 8 distinct designs, submitted 5 times each, interleaved so duplicates
    // land while their originals are queued, running, or already cached.
    let seeds: Vec<u64> = (0..8).map(|i| 0x5e12e + i * 3).collect();
    let mut jobs = Vec::new();
    for _round in 0..5 {
        for &seed in &seeds {
            jobs.push(service.submit(JobSpec::seeded(seed, "small", PipelineKind::Verify)));
        }
    }
    // Kill a worker while the backlog is deep (the kill hook fires when the
    // worker registers its *next* job); the supervisor must requeue the
    // orphaned job and respawn the thread. A trailing batch of fresh designs
    // guarantees the doomed worker has something to pick up.
    assert!(service.kill_worker(0));
    for i in 0..8u64 {
        jobs.push(service.submit(JobSpec::seeded(0x7a11 + i * 5, "small", PipelineKind::Verify)));
    }

    assert!(service.drain(Duration::from_secs(300)), "service must drain the whole mix");

    // Every job has an outcome, and every outcome is a completion (this mix
    // has no invalid designs, no shedding pressure, and generous deadlines).
    for &job in &jobs {
        let outcome = service.outcome(job).expect("drained service has all outcomes");
        assert!(outcome.is_completed(), "job {job} should have completed, got {outcome:?}");
    }

    let stats = service.stats();
    assert_eq!(stats.submitted, jobs.len() as u64);
    assert_eq!(stats.completed, jobs.len() as u64);
    assert_eq!(stats.shed, 0);
    // 8 distinct designs, 40 submissions: the bulk of the 32 duplicates
    // must be cache hits (a duplicate popped while its original is still
    // in flight may legitimately recompute, so the bound leaves slack).
    assert!(
        stats.cache_hits >= 20,
        "duplicate-heavy mix should be served mostly from cache: {stats:?}"
    );
    assert_eq!(stats.worker_deaths, 1, "the killed worker must be detected: {stats:?}");

    // Integrity: corrupt a known entry, resubmit its design, and require a
    // recompute — the corruption must never be served.
    let spec = JobSpec::seeded(seeds[0], "small", PipelineKind::Verify);
    let key = service.cache_key(&spec, false).unwrap();
    assert!(service.cache().corrupt_entry(key), "seed {0:#x} must be cached", seeds[0]);
    let recompute = service.submit(spec);
    let outcome = service.wait(recompute, Duration::from_secs(120)).unwrap();
    match outcome {
        JobOutcome::Completed { cache_hit, .. } => {
            assert!(!cache_hit, "a corrupted entry must be recomputed, not served")
        }
        other => panic!("recompute after corruption failed: {other:?}"),
    }
    assert_eq!(service.cache().stats().integrity_evictions, 1);
    let audit = service.cache().audit();
    assert_eq!(audit.corrupted, 0, "the recompute must have replaced the corrupt entry");
    assert!(audit.clean >= seeds.len(), "all distinct designs should be resident");

    let final_stats = service.shutdown();

    // Journal accounting: replay must show zero pending (nothing lost, the
    // killed worker's job included) and one completed record per
    // non-cache-skipped completion.
    let recovery = elastic_serve::replay(&journal).unwrap();
    assert_eq!(recovery.rejected_lines, 0);
    assert!(recovery.pending.is_empty(), "zero jobs lost: {:?}", recovery.pending);
    assert_eq!(recovery.lost_inline, 0);
    assert_eq!(recovery.completed.len() as u64, final_stats.completed);
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn explore_jobs_complete_cache_and_report_the_front() {
    // The explore pipeline rides the same service machinery: jobs complete,
    // duplicates hit the content-addressed cache, and the report carries the
    // front through the strict v1 wire fields (transforms = front members,
    // throughput = best front member).
    let config = ServiceConfig {
        workers: 2,
        case_deadline: Duration::from_secs(60),
        explore: elastic_explore::ExploreOptions {
            cycles: 192,
            short_cycles: 64,
            environments: 2,
            verify_cycles: 96,
            ..elastic_explore::ExploreOptions::default()
        },
        journal_path: None,
        ..ServiceConfig::default()
    };
    let service = Service::start(config).unwrap();
    // A seed whose small-preset netlist carries speculation sites (the
    // corpus 0010 anchor), submitted twice to exercise the cache.
    let seed = 0x5eed_0003_0012u64;
    let first = service.submit(JobSpec::seeded(seed, "small", PipelineKind::Explore));
    let report = match service.wait(first, Duration::from_secs(300)).unwrap() {
        JobOutcome::Completed { report, cache_hit, .. } => {
            assert!(!cache_hit, "first submission must compute");
            report
        }
        other => panic!("explore job failed: {other:?}"),
    };
    assert_eq!(report.pipeline, "explore");
    assert!(report.exhaustive && !report.degraded);
    assert!(report.transforms > 0, "the search must return a non-empty front: {report:?}");
    assert!(report.throughput_milli > 0, "the best front member has a score: {report:?}");
    // The report survives the strict 8-field wire format.
    assert_eq!(elastic_serve::decode(&report.encode()), Some(report.clone()));

    let duplicate = service.submit(JobSpec::seeded(seed, "small", PipelineKind::Explore));
    match service.wait(duplicate, Duration::from_secs(300)).unwrap() {
        JobOutcome::Completed { report: cached, cache_hit, .. } => {
            assert!(cache_hit, "the duplicate must be served from the cache");
            assert_eq!(cached, report, "the cached search must be the computed one");
        }
        other => panic!("duplicate explore job failed: {other:?}"),
    }
    // The same design under a different pipeline must not collide.
    let verify = service.submit(JobSpec::seeded(seed, "small", PipelineKind::Verify));
    match service.wait(verify, Duration::from_secs(300)).unwrap() {
        JobOutcome::Completed { report: other, cache_hit, .. } => {
            assert!(!cache_hit, "pipelines must not share cache entries");
            assert_eq!(other.pipeline, "verify");
        }
        other => panic!("verify job failed: {other:?}"),
    }
    service.shutdown();
}

#[test]
fn overload_sheds_honestly_and_degrades_before_that() {
    // A one-worker service with a tiny queue: the burst must produce all
    // three admission classes — full-fidelity, degraded (soft watermark),
    // and shed (hard bound) — and every accepted job must still complete.
    let config = ServiceConfig {
        workers: 1,
        queue_capacity: 6,
        degrade_depth: 2,
        sweep_scenarios: 2,
        sweep_cycles: 48,
        verify: ExplorationOptions {
            max_runs: 16,
            random_scheduler_runs: 2,
            cycles_per_run: 32,
            ..ExplorationOptions::default()
        },
        degraded_verify: ExplorationOptions {
            max_runs: 4,
            random_scheduler_runs: 1,
            cycles_per_run: 32,
            ..ExplorationOptions::default()
        },
        case_deadline: Duration::from_secs(30),
        journal_path: None,
        ..ServiceConfig::default()
    };
    let service = Service::start(config).unwrap();
    let jobs: Vec<u64> = (0..24)
        .map(|i| service.submit(JobSpec::seeded(0xbeef + i * 7, "small", PipelineKind::Verify)))
        .collect();
    assert!(service.drain(Duration::from_secs(300)));

    let mut full = 0;
    let mut degraded = 0;
    let mut shed = 0;
    for &job in &jobs {
        match service.outcome(job).unwrap() {
            JobOutcome::Completed { report, .. } => {
                if report.degraded {
                    degraded += 1;
                    assert!(
                        !report.exhaustive,
                        "degraded completions must be flagged non-exhaustive"
                    );
                    assert!(report.notes > 0, "degraded completions must carry a coverage note");
                } else {
                    full += 1;
                }
            }
            JobOutcome::Shed => shed += 1,
            other => panic!("unexpected outcome under overload: {other:?}"),
        }
    }
    assert!(full > 0, "the first admissions run at full fidelity");
    assert!(degraded > 0, "the soft watermark must degrade someone");
    assert!(shed > 0, "the hard bound must shed someone");
    assert_eq!(full + degraded + shed, jobs.len());
    let stats = service.shutdown();
    assert_eq!(stats.shed, shed as u64);
}
