//! Reproduction of Table 1 of the paper (experiment `E2-table1` in DESIGN.md).
//!
//! Table 1 traces the speculative design of Figure 1(d) for seven cycles with
//! the per-cycle select values `0 1 1 1 0 0 0` and the schedule
//! `0 1 0 1 0 1 0`: correct predictions in cycles 0, 1, 3, 4 and 6,
//! mispredictions in cycles 2 and 5. The reproduced observables:
//!
//! * `Fout0` row: `A - C - E * F` (the speculated `C` is cancelled by an
//!   anti-token after the cycle-2 misprediction);
//! * `Fout1` row: `- B * D - G -`;
//! * `Sel` row: `0 1 1 1 0 0 0`;
//! * `EBin` row: tokens enter the output buffer in cycles 0, 1, 3, 4 and 6
//!   with bubbles in the two misprediction cycles (the paper prints `G` in
//!   the last cycle; with `Sel = 0` at cycle 6 the fired channel is input 0,
//!   so this reproduction delivers `F` there and cancels `G` — see the note
//!   in `EXPERIMENTS.md`);
//! * exactly two mispredictions are observed by the shared module.

use elastic_core::library::{self, TABLE1_SELECT, TABLE1_VALUES};
use elastic_sim::{SimConfig, Simulation, TraceSymbol};

fn value(letter: char) -> u64 {
    TABLE1_VALUES.iter().find(|(l, _)| *l == letter).map(|(_, v)| *v).expect("letter in table")
}

fn symbols_to_row(symbols: &[TraceSymbol]) -> Vec<String> {
    symbols
        .iter()
        .map(|symbol| match symbol {
            TraceSymbol::Token(v) => match TABLE1_VALUES.iter().find(|(_, value)| value == v) {
                Some((letter, _)) => letter.to_string(),
                None => format!("{v:#x}"),
            },
            TraceSymbol::AntiToken => "-".to_string(),
            TraceSymbol::Bubble => "*".to_string(),
        })
        .collect()
}

#[test]
fn table1_trace_matches_the_paper() {
    let handles = library::table1();
    let mut sim = Simulation::new(&handles.netlist, &SimConfig::default()).unwrap();
    // The paper traces exactly seven cycles.
    let report = sim.run(TABLE1_SELECT.len() as u64).unwrap();
    let trace = sim.trace();

    let channel = |name: &str| {
        handles
            .netlist
            .live_channels()
            .find(|c| c.name == name)
            .map(|c| c.id)
            .expect("table1 netlist declares this channel")
    };

    // Print the trace in the paper's format (visible with `--nocapture`).
    let table = trace.render_table(&[
        (channel("fin0"), "Fin0"),
        (channel("fout0"), "Fout0"),
        (channel("fin1"), "Fin1"),
        (channel("fout1"), "Fout1"),
        (channel("sel"), "Sel"),
        (channel("ebin"), "EBin"),
    ]);
    println!("{table}");

    // Fout0 row: A - C - E * F  (exactly as printed in the paper).
    let fout0 = symbols_to_row(&trace.symbol_row(channel("fout0")));
    assert_eq!(fout0, vec!["A", "-", "C", "-", "E", "*", "F"], "Fout0 row");

    // Fout1 row: - B * D - G -  (exactly as printed in the paper).
    let fout1 = symbols_to_row(&trace.symbol_row(channel("fout1")));
    assert_eq!(fout1, vec!["-", "B", "*", "D", "-", "G", "-"], "Fout1 row");

    // Sel row: 0 1 1 1 0 0 0 (the stalled select token repeats its value).
    let sel: Vec<u64> = trace
        .channel_iter(channel("sel"))
        .map(|state| if state.forward_valid { state.data } else { u64::MAX })
        .collect();
    assert_eq!(sel, TABLE1_SELECT.to_vec(), "Sel row");

    // EBin row: tokens in cycles 0, 1, 3, 4, 6 and bubbles in the two
    // misprediction cycles 2 and 5.
    let ebin = symbols_to_row(&trace.symbol_row(channel("ebin")));
    assert_eq!(ebin[..6].to_vec(), vec!["A", "B", "*", "D", "E", "*"], "EBin row, cycles 0-5");
    assert_eq!(
        trace.transfer_stream(channel("ebin")).collect::<Vec<_>>(),
        vec![value('A'), value('B'), value('D'), value('E'), value('F')],
        "the tokens entering the output EB over the seven traced cycles"
    );

    // Exactly the two mispredictions of the paper's trace (cycles 2 and 5).
    let shared_stats = report.shared_stats.get(&handles.shared).expect("shared module stats");
    assert_eq!(
        shared_stats.mispredictions, 2,
        "Table 1 contains exactly two mispredictions (cycles 2 and 5)"
    );
}

#[test]
fn table1_streams_are_lossless() {
    // Each value delivered to the sink comes from the Table-1 value set, in
    // order and without duplication; the values cancelled by anti-tokens (C
    // after the cycle-2 misprediction, G after the cycle-5 one) never appear.
    let handles = library::table1();
    let mut sim = Simulation::new(&handles.netlist, &SimConfig::default()).unwrap();
    let report = sim.run(TABLE1_SELECT.len() as u64 + 1).unwrap();
    let delivered: Vec<u64> = report.sink_values(handles.sink).into_iter().take(5).collect();
    assert_eq!(
        delivered,
        vec![value('A'), value('B'), value('D'), value('E'), value('F')],
        "the sink observes the used tokens in order"
    );
    assert!(!delivered.contains(&value('C')), "C was speculated away and cancelled");
    assert!(!delivered.contains(&value('G')), "G was speculated away and cancelled");
}
