//! Cross-crate property tests: every correct-by-construction transformation
//! preserves transfer equivalence, for randomized workloads and schedulers.

use elastic_core::kind::DataStream;
use elastic_core::library::{fig1a, Fig1Config};
use elastic_core::transform::{
    enable_early_evaluation, insert_bubble, shannon_decompose, share_mux_inputs, speculate,
    ShareOptions, SpeculateOptions,
};
use elastic_core::{Port, SchedulerKind};
use elastic_verify::transfer_equivalent;
use proptest::prelude::*;

fn workload_config(values0: Vec<u64>, values1: Vec<u64>) -> Fig1Config {
    Fig1Config {
        src0_data: DataStream::List(values0),
        src1_data: DataStream::List(values1),
        ..Fig1Config::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn speculation_is_transfer_equivalent_for_random_workloads(
        values0 in proptest::collection::vec(0u64..256, 8..24),
        values1 in proptest::collection::vec(0u64..256, 8..24),
        scheduler_choice in 0usize..4,
    ) {
        let config = workload_config(values0, values1);
        let original = fig1a(&config);
        let scheduler = match scheduler_choice {
            0 => SchedulerKind::Static(0),
            1 => SchedulerKind::Static(1),
            2 => SchedulerKind::LastTaken,
            _ => SchedulerKind::TwoBit,
        };
        let mut speculative = original.netlist.clone();
        speculate(
            &mut speculative,
            original.mux,
            &SpeculateOptions { scheduler, ..SpeculateOptions::default() },
        )
        .unwrap();
        let report = transfer_equivalent(&original.netlist, &speculative, 200).unwrap();
        prop_assert!(report.verdict.passed(), "{}", report.verdict);
    }

    #[test]
    fn bubble_insertion_is_transfer_equivalent_on_any_channel(
        values0 in proptest::collection::vec(0u64..256, 8..16),
        values1 in proptest::collection::vec(0u64..256, 8..16),
        channel_choice in 0usize..8,
    ) {
        let config = workload_config(values0, values1);
        let original = fig1a(&config);
        let channels: Vec<_> = original.netlist.live_channels().map(|c| c.id).collect();
        let channel = channels[channel_choice % channels.len()];
        let mut transformed = original.netlist.clone();
        insert_bubble(&mut transformed, channel).unwrap();
        let report = transfer_equivalent(&original.netlist, &transformed, 150).unwrap();
        prop_assert!(report.verdict.passed(), "{}", report.verdict);
    }
}

#[test]
fn step_by_step_recipe_equals_composite_speculation() {
    // Applying the paper's four steps by hand produces a design that is
    // transfer-equivalent to the one produced by the composite pass.
    let config = workload_config(vec![7, 2, 9, 4, 1, 8], vec![3, 6, 5, 0, 2, 9]);
    let original = fig1a(&config);

    let mut manual = original.netlist.clone();
    shannon_decompose(&mut manual, original.mux).unwrap();
    enable_early_evaluation(&mut manual, original.mux).unwrap();
    share_mux_inputs(&mut manual, original.mux, &ShareOptions::default()).unwrap();

    let mut composite = original.netlist.clone();
    speculate(&mut composite, original.mux, &SpeculateOptions::default()).unwrap();

    let manual_vs_original = transfer_equivalent(&original.netlist, &manual, 150).unwrap();
    assert!(manual_vs_original.verdict.passed(), "{}", manual_vs_original.verdict);
    let manual_vs_composite = transfer_equivalent(&manual, &composite, 150).unwrap();
    assert!(manual_vs_composite.verdict.passed(), "{}", manual_vs_composite.verdict);
}

#[test]
fn shannon_decomposition_alone_is_transfer_equivalent() {
    let config = workload_config(vec![11, 4, 13, 2, 7], vec![8, 1, 14, 3, 6]);
    let original = fig1a(&config);
    let mut transformed = original.netlist.clone();
    shannon_decompose(&mut transformed, original.mux).unwrap();
    let report = transfer_equivalent(&original.netlist, &transformed, 150).unwrap();
    assert!(report.verdict.passed(), "{}", report.verdict);
}

#[test]
fn zero_backward_recovery_buffers_preserve_equivalence() {
    // Speculation with Lb=0 recovery buffers (Section 4.3) is still
    // functionally equivalent to the original design.
    let config = workload_config(vec![5, 12, 3, 9, 1, 15], vec![2, 8, 6, 0, 13, 4]);
    let original = fig1a(&config);
    let mut transformed = original.netlist.clone();
    speculate(
        &mut transformed,
        original.mux,
        &SpeculateOptions {
            recovery_buffer: Some(elastic_core::BufferSpec::zero_backward(0)),
            ..SpeculateOptions::default()
        },
    )
    .unwrap();
    let report = transfer_equivalent(&original.netlist, &transformed, 200).unwrap();
    assert!(report.verdict.passed(), "{}", report.verdict);
}

#[test]
fn resilient_speculation_matches_the_unprotected_accumulator_values() {
    // The speculative SECDED design computes the same running sums as the
    // unprotected baseline when no soft errors are injected.
    use elastic_core::library::{resilient_speculative, resilient_unprotected, ResilientConfig};
    use elastic_sim::{SimConfig, Simulation};

    let config =
        ResilientConfig { data_width: 32, operands: (1..40).collect(), error_masks: vec![0] };
    let unprotected = resilient_unprotected(&config);
    let speculative = resilient_speculative(&config);
    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    let base = Simulation::new(&unprotected.netlist, &quiet).unwrap().run(60).unwrap();
    let spec = Simulation::new(&speculative.netlist, &quiet).unwrap().run(60).unwrap();
    let base_values = base.sink_values(unprotected.sink);
    let spec_values: Vec<u64> = spec
        .sink_values(speculative.sink)
        .iter()
        // The speculative design observes encoded codewords; strip the parity
        // bits to compare the accumulator contents.
        .map(|codeword| codeword & 0xFFFF_FFFF)
        .collect();
    let common = base_values.len().min(spec_values.len());
    assert!(common > 20, "both designs must make progress");
    assert_eq!(base_values[..common], spec_values[..common]);
}

#[test]
fn speculation_report_documents_what_changed() {
    let original = fig1a(&Fig1Config::default());
    let mut transformed = original.netlist.clone();
    let report = speculate(&mut transformed, original.mux, &SpeculateOptions::default()).unwrap();
    assert_eq!(report.mux, original.mux);
    assert_eq!(report.moved_block, original.f.unwrap());
    assert!(!report.select_cycles.is_empty());
    // The shared module's inputs are now fed by the original sources.
    let shared_inputs = transformed.input_channels(report.shared_module);
    assert!(shared_inputs.iter().any(|c| c.from == Port::output(original.src0, 0)));
    assert!(shared_inputs.iter().any(|c| c.from == Port::output(original.src1, 0)));
}
