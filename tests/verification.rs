//! Experiment `E7-verify`: the verification campaign of Section 4.2, applied
//! to every design in the library — SELF protocol compliance, deadlock
//! freedom, the scheduler leads-to property, token conservation through
//! shared modules, and bounded exploration of environment behaviour.

use elastic_core::library::{
    fig1a, fig1b, fig1c, fig1d, resilient_nonspeculative, resilient_speculative,
    resilient_unprotected, table1, variable_latency_speculative, variable_latency_stalling,
    Fig1Config, ResilientConfig, VarLatencyConfig,
};
use elastic_core::{Netlist, SchedulerKind};
use elastic_datapath::workload;
use elastic_verify::conservation::check_shared_module_conservation;
use elastic_verify::exploration::{explore, ExplorationOptions};
use elastic_verify::liveness::{check_deadlock_freedom, check_leads_to, LivenessOptions};
use elastic_verify::properties::{check_netlist_protocol, ProtocolOptions};

fn all_designs() -> Vec<(String, Netlist)> {
    let fig1 = Fig1Config::default();
    let (operands_a, operands_b) = workload::approx_error_operands(8, 4, 0.15, 400, 11);
    let var = VarLatencyConfig { operands_a, operands_b, ..VarLatencyConfig::default() };
    let resilient = ResilientConfig {
        data_width: 32,
        operands: workload::uniform_operands(32, 400, 3),
        error_masks: workload::soft_error_masks(39, 0.05, 400, 5),
    };
    vec![
        ("fig1a".into(), fig1a(&fig1).netlist),
        ("fig1b".into(), fig1b(&fig1).netlist),
        ("fig1c".into(), fig1c(&fig1).netlist),
        ("fig1d".into(), fig1d(&fig1).netlist),
        ("table1".into(), table1().netlist),
        ("fig6a".into(), variable_latency_stalling(&var).netlist),
        ("fig6b".into(), variable_latency_speculative(&var).netlist),
        ("fig7-baseline".into(), resilient_unprotected(&resilient).netlist),
        ("fig7a".into(), resilient_nonspeculative(&resilient).netlist),
        ("fig7b".into(), resilient_speculative(&resilient).netlist),
    ]
}

#[test]
fn every_library_design_respects_the_self_protocol() {
    for (name, netlist) in all_designs() {
        let verdict = check_netlist_protocol(
            &netlist,
            256,
            &ProtocolOptions { starvation_window: 128, check_liveness: true },
        )
        .unwrap_or_else(|e| panic!("{name}: simulation failed: {e}"));
        assert!(verdict.passed(), "{name}: {verdict}");
    }
}

#[test]
fn every_library_design_is_deadlock_free() {
    for (name, netlist) in all_designs() {
        let verdict = check_deadlock_freedom(
            &netlist,
            &LivenessOptions { cycles: 300, progress_window: 128, leads_to_horizon: 128 },
        )
        .unwrap_or_else(|e| panic!("{name}: simulation failed: {e}"));
        assert!(verdict.passed(), "{name}: {verdict}");
    }
}

#[test]
fn every_speculative_design_satisfies_leads_to_and_conserves_tokens() {
    for (name, netlist) in all_designs() {
        let leads_to = check_leads_to(
            &netlist,
            &LivenessOptions { cycles: 300, progress_window: 128, leads_to_horizon: 128 },
        )
        .unwrap_or_else(|e| panic!("{name}: simulation failed: {e}"));
        assert!(leads_to.passed(), "{name}: {leads_to}");

        let conservation = check_shared_module_conservation(&netlist, 300)
            .unwrap_or_else(|e| panic!("{name}: simulation failed: {e}"));
        assert!(conservation.passed(), "{name}: {conservation}");
    }
}

#[test]
fn speculation_survives_bounded_environment_and_scheduler_exploration() {
    // The heavy-weight check of Section 4.2, applied to the flagship
    // speculative design: every sink back-pressure pattern up to the bound
    // plus adversarial random schedulers.
    let handles = fig1d(&Fig1Config::default());
    let options = ExplorationOptions {
        pattern_depth: 3,
        cycles_per_run: 48,
        max_runs: 64,
        random_scheduler_runs: 6,
        seed: 0xDAC2009,
    };
    let verdict = explore(&handles.netlist, &options).unwrap();
    assert!(verdict.passed(), "{verdict}");
}

#[test]
fn leads_to_holds_for_every_builtin_scheduler_kind() {
    for scheduler in [
        SchedulerKind::Static(0),
        SchedulerKind::Static(1),
        SchedulerKind::RoundRobin,
        SchedulerKind::LastTaken,
        SchedulerKind::TwoBit,
        SchedulerKind::Correlating { history_bits: 4 },
        SchedulerKind::ErrorReplay,
    ] {
        let handles = fig1d(&Fig1Config { scheduler: scheduler.clone(), ..Fig1Config::default() });
        let verdict = check_leads_to(
            &handles.netlist,
            &LivenessOptions { cycles: 300, progress_window: 128, leads_to_horizon: 128 },
        )
        .unwrap();
        assert!(verdict.passed(), "{scheduler:?}: {verdict}");
    }
}
