//! A small, dependency-free stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build container for this repository has no network access, so the real
//! criterion crate cannot be fetched. This shim implements the subset of the
//! API the workspace's benches use — `Criterion`, `BenchmarkGroup`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple warm-up + timed-samples measurement loop. Reported
//! numbers are wall-clock medians; they are stable enough to catch large
//! simulator regressions, which is all the harness promises.
//!
//! Swap this path dependency for the real crate when a registry is available;
//! no bench source changes are required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Per-iteration throughput annotation (elements or bytes processed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// The measurement configuration and entry point, mirroring
/// `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// No-op (the shim never plots).
    #[must_use]
    pub fn without_plots(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_benchmark(&config, id, None, f);
        self
    }

    /// Mirrors `Criterion::final_summary` (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates the group's per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.sample_size = samples.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.criterion.measurement_time = duration;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        let config = self.criterion.clone();
        run_benchmark(&config, &full_id, self.throughput, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let iterations = self.iterations.max(1);
        let start = Instant::now();
        for _ in 0..iterations {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(config: &Criterion, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run single iterations until the warm-up budget is spent, and
    // estimate the per-iteration cost along the way.
    let warm_up_start = Instant::now();
    let mut per_iteration = Duration::from_nanos(1);
    let mut warm_up_runs = 0u32;
    while warm_up_start.elapsed() < config.warm_up_time || warm_up_runs == 0 {
        let mut bencher = Bencher { iterations: 1, ..Bencher::default() };
        f(&mut bencher);
        per_iteration = bencher.elapsed.max(Duration::from_nanos(1));
        warm_up_runs += 1;
        if warm_up_runs >= 1000 {
            break;
        }
    }

    // Size each sample so that sample_size samples fit the measurement budget.
    let budget_per_sample = config.measurement_time / config.sample_size.max(1) as u32;
    let iterations_per_sample =
        (budget_per_sample.as_nanos() / per_iteration.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut bencher = Bencher { iterations: iterations_per_sample, ..Bencher::default() };
        f(&mut bencher);
        samples.push(bencher.elapsed / iterations_per_sample as u32);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let fastest = samples[0];
    let slowest = samples[samples.len() - 1];

    let rate = match throughput {
        Some(Throughput::Elements(elements)) => {
            let per_second = elements as f64 / median.as_secs_f64();
            format!("  thrpt: {} elem/s", format_rate(per_second))
        }
        Some(Throughput::Bytes(bytes)) => {
            let per_second = bytes as f64 / median.as_secs_f64();
            format!("  thrpt: {} B/s", format_rate(per_second))
        }
        None => String::new(),
    };
    println!(
        "{id:<40} time: [{} {} {}]{rate}",
        format_duration(fastest),
        format_duration(median),
        format_duration(slowest),
    );
}

fn format_duration(duration: Duration) -> String {
    let nanos = duration.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", duration.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn format_rate(per_second: f64) -> String {
    if per_second >= 1e9 {
        format!("{:.3}G", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.3}M", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.3}K", per_second / 1e3)
    } else {
        format!("{per_second:.3}")
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let criterion = Criterion::default().sample_size(2).warm_up_time(Duration::from_millis(1));
        let mut criterion = criterion.measurement_time(Duration::from_millis(2));
        let mut runs = 0u64;
        criterion.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_apply_throughput_annotations() {
        let mut criterion = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = criterion.benchmark_group("group");
        group.throughput(Throughput::Elements(8));
        group.bench_function("case", |b| b.iter(|| black_box(21) * 2));
        group.finish();
    }

    #[test]
    fn formatting_covers_all_magnitudes() {
        assert!(format_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with(" s"));
        assert_eq!(format_rate(2_000_000_000.0), "2.000G");
        assert_eq!(format_rate(2_000_000.0), "2.000M");
        assert_eq!(format_rate(2_000.0), "2.000K");
        assert_eq!(format_rate(2.0), "2.000");
    }
}
