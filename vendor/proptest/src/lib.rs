//! A small, dependency-free stand-in for the [proptest](https://docs.rs/proptest)
//! property-testing crate.
//!
//! The build container for this repository has no network access, so the real
//! proptest crate cannot be fetched. This shim implements the subset of the
//! API the workspace's tests use — the `proptest!` macro, `any::<T>()`,
//! integer range strategies, `collection::vec`, `ProptestConfig::with_cases`
//! and the `prop_assert*` macros — on top of a deterministic splitmix64
//! generator. There is no shrinking: a failing case panics with the sampled
//! inputs in the message instead.
//!
//! Swap this path dependency for the real crate when a registry is available;
//! no test source changes are required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction is unbiased enough for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced by the strategy.
    type Value: std::fmt::Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }

            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty range strategy");
                    self.start + rng.below(span) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let span = (*self.end() - *self.start()) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    *self.start() + rng.below(span + 1) as $ty
                }
            }
        )*
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `lengths` and elements
    /// drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lengths: Range<usize>,
    }

    /// Builds a [`VecStrategy`], mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, lengths: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lengths }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.lengths.end - self.lengths.start).max(1) as u64;
            let length = self.lengths.start + rng.below(span) as usize;
            (0..length).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each declared function becomes a `#[test]` that samples its inputs from
/// the given strategies `cases` times (deterministically, seeded from the
/// property name) and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = {
                    // Stable per-property seed: FNV-1a over the name.
                    let mut hash = 0xCBF2_9CE4_8422_2325u64;
                    for byte in stringify!($name).bytes() {
                        hash ^= u64::from(byte);
                        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    hash
                };
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::sample(&$strategy, &mut rng);
                    )*
                    let describe = || {
                        let mut parts: Vec<String> = Vec::new();
                        $( parts.push(format!("{} = {:?}", stringify!($arg), $arg)); )*
                        parts.join(", ")
                    };
                    let inputs = describe();
                    let run = || -> () { $body };
                    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)).is_err() {
                        panic!(
                            "property {} failed on case {case} with inputs: {inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_their_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let value = Strategy::sample(&(1u8..=64), &mut rng);
            assert!((1..=64).contains(&value));
            let value = Strategy::sample(&(0u64..8), &mut rng);
            assert!(value < 8);
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::TestRng::new(11);
        for _ in 0..200 {
            let values = Strategy::sample(&crate::collection::vec(0u64..256, 8..24), &mut rng);
            assert!((8..24).contains(&values.len()));
            assert!(values.iter().all(|&v| v < 256));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = crate::TestRng::new(3);
        let mut b = crate::TestRng::new(3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(a in any::<u64>(), b in 0u64..10) {
            prop_assert!(b < 10);
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
            prop_assert_ne!(b, 10);
        }
    }
}
